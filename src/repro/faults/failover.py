"""Failover under chaos: replication, verified end to end.

:class:`FailoverChaosSimulation` extends the chaos harness with a
*replicated* home broker service: the primary journals every mutation
and ships the WAL to ranked standbys via a
:class:`~repro.replication.group.ReplicatedBrokerGroup` riding the
same fault-injected packet network as the workload.  The adversary is
sharper than the crash-recovery harness's: a
:class:`~repro.faults.plan.BrokerKill` is *permanent* — the primary
never comes back, so the only road to availability is a standby
takeover — and partition windows can isolate a perfectly healthy
primary, manufacturing the zombie that epoch fencing exists for.

The event-outcome ledger closes the accounting loop.  Every published
event ends in exactly one bucket:

- **delivered** — a live primary serviced it (matched, routed, and the
  reliable protocol carried it to every interested subscriber);
- **shed** — it arrived while no primary was serviceable and the
  bounded defer queue was full;
- **expired** — it waited in the defer queue longer than its TTL (or
  the run ended with no primary ever taking over).

``delivered + shed + expired == published`` must hold, the delivery
ledger must show **zero duplicates** across every takeover (receiver
dedup + epoch fencing), and a post-takeover write probe at the
ex-primary must be rejected — the three acceptance criteria of the
replication design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..durability.recovery import RecoveredState
from ..overload.breaker import BreakerBoard, BreakerConfig
from ..replication.detector import HeartbeatConfig
from ..replication.group import ReplicatedBrokerGroup, ReplicationStats
from ..replication.shipping import ShippingConfig, ShippingStats
from ..telemetry.base import Telemetry
from .plan import FaultPlan, LinkOutage, BrokerKill
from .reliable import RetryConfig
from .verifier import ChaosReport, ChaosSimulation

__all__ = [
    "FailoverStats",
    "FailoverReport",
    "FailoverChaosSimulation",
    "build_failover_plan",
]


@dataclass
class FailoverStats:
    """Per-event outcome accounting plus takeover bookkeeping."""

    published: int = 0
    delivered_events: int = 0
    shed_events: int = 0
    expired_events: int = 0
    #: Events that spent time in the defer queue (any outcome).
    deferred_events: int = 0
    #: In-flight (event, target) deliveries wiped at primary loss.
    wiped_inflight: int = 0
    #: (event, target) deliveries re-handed after a takeover.
    redelivered: int = 0
    #: Post-takeover write probes rejected at the ex-primary.
    probe_rejections: int = 0
    #: Post-takeover write probes admitted at the new primary.
    probe_admissions: int = 0

    @property
    def accounted(self) -> bool:
        """The conservation law: every event in exactly one bucket."""
        return (
            self.delivered_events + self.shed_events + self.expired_events
            == self.published
        )


@dataclass
class FailoverReport(ChaosReport):
    """A chaos report plus the replication ledger of the run."""

    replication: ReplicationStats = field(default_factory=ReplicationStats)
    shipping: ShippingStats = field(default_factory=ShippingStats)
    failover: FailoverStats = field(default_factory=FailoverStats)

    def summary_rows(self) -> List[Tuple[str, object]]:
        rows = super().summary_rows()
        r, s, f = self.replication, self.shipping, self.failover
        rows.extend(
            [
                ("failovers", r.failovers),
                ("final epoch", r.final_epoch),
                ("stale-epoch rejections", r.stale_rejections),
                ("fenced writes rejected", r.fenced_writes),
                ("shipping batches", s.batches),
                ("ops shipped", s.ops_shipped),
                ("catch-up transfers", s.catchups),
                ("shipping backpressure skips", s.backpressure_skips),
                ("events delivered", f.delivered_events),
                ("events shed", f.shed_events),
                ("events expired", f.expired_events),
                ("outcome ledger balanced", "yes" if f.accounted else "NO"),
                ("in-flight wiped at failover", f.wiped_inflight),
                ("redelivered after takeover", f.redelivered),
            ]
        )
        return rows


class FailoverChaosSimulation(ChaosSimulation):
    """A chaos run whose home broker survives *permanent* loss.

    ``broker`` must be churn-capable (a :class:`~repro.core.dynamic.
    DynamicPubSubBroker`): takeover rebuilds its engine through the
    same dynamic machinery recovery uses.  ``primary`` defaults to the
    node of the plan's first :class:`~repro.faults.plan.BrokerKill`;
    ``standbys`` is the ranked candidate list (see
    :meth:`~repro.network.topology.Topology.replica_candidates`).
    """

    def __init__(
        self,
        broker,
        plan: FaultPlan,
        standbys: Sequence[int],
        primary: Optional[int] = None,
        shipping: Optional[ShippingConfig] = None,
        heartbeat: Optional[HeartbeatConfig] = None,
        checkpoint_every: int = 64,
        defer_capacity: int = 256,
        defer_ttl: float = 250.0,
        settle: float = 250.0,
        retry: Optional[RetryConfig] = None,
        transmission_time: float = 0.25,
        propagation_scale: float = 1.0,
        hop_retries: int = 4,
        telemetry: Optional[Telemetry] = None,
    ):
        if not hasattr(broker, "attach_journal"):
            raise TypeError(
                "FailoverChaosSimulation needs a churn-capable broker "
                "(DynamicPubSubBroker); got "
                f"{type(broker).__name__}"
            )
        if defer_capacity < 0:
            raise ValueError(
                f"defer_capacity must be >= 0 (got {defer_capacity})"
            )
        if defer_ttl <= 0.0:
            raise ValueError(f"defer_ttl must be positive (got {defer_ttl})")
        super().__init__(
            broker,
            plan,
            reliable=True,
            retry=retry,
            transmission_time=transmission_time,
            propagation_scale=propagation_scale,
            hop_retries=hop_retries,
            telemetry=telemetry,
        )
        if primary is None:
            if not plan.broker_kills:
                raise ValueError(
                    "no broker kills in the plan and no primary given; "
                    "nothing to fail over from"
                )
            primary = plan.broker_kills[0].node
        self.defer_capacity = int(defer_capacity)
        self.defer_ttl = float(defer_ttl)
        self.settle = float(settle)
        self.fstats = FailoverStats()
        self._outcomes: Dict[int, str] = {}
        self._deferred: List[
            Tuple[float, int, np.ndarray, Sequence[int], Dict]
        ] = []
        self.shipping_breakers = BreakerBoard(
            BreakerConfig(failure_threshold=3, reset_timeout=120.0)
        )
        self.group = ReplicatedBrokerGroup(
            broker,
            int(primary),
            standbys,
            self.simulator,
            send=self._ship,
            shipping=shipping,
            heartbeat=heartbeat,
            alive=lambda node, time: not self.injector.node_down(node, time),
            checkpoint_every=checkpoint_every,
            breakers=self.shipping_breakers,
            telemetry=telemetry,
            on_takeover=self._taken_over,
        )
        # The reliable transport learns about takeovers through the
        # epoch directory: retries addressed to a deposed primary
        # migrate to its successor instead of burning their budget.
        self.transport.directory = self.group.directory
        # Delivery completions journal at whichever journal is current
        # — it swaps at takeover, so resolve it per ack, not at bind.
        self.transport.on_ack = lambda target, key, time: (
            self.group.journal.log_delivery(key, target)
        )
        # Bootstrap checkpoint: the preprocessed state becomes snapshot
        # 0 and ships to every standby eagerly, so takeover is possible
        # from the first tick onward.
        self.group.journal.checkpoint()

    # -- replication transport over the chaos network ------------------------

    def _ship(self, source: int, target: int, payload: Dict) -> None:
        """One replication message over the fault-injected network.

        The payload rides a closure (the packet network carries no
        bytes); injected loss, outages, kills and partitions apply to
        every hop, which is exactly how a zombie primary gets starved
        of the acks that would have told it the truth.
        """
        self.network.send_unicast(
            source,
            target,
            lambda node, time, p=payload: self.group.deliver(node, p, time),
        )

    # -- outcome ledger ------------------------------------------------------

    def _finish(self, sequence: int, outcome: str) -> None:
        if sequence in self._outcomes:
            raise RuntimeError(
                f"event {sequence} accounted twice: "
                f"{self._outcomes[sequence]} then {outcome}"
            )
        self._outcomes[sequence] = outcome
        if outcome == "delivered":
            self.fstats.delivered_events += 1
        elif outcome == "shed":
            self.fstats.shed_events += 1
        elif outcome == "expired":
            self.fstats.expired_events += 1
        else:
            raise ValueError(f"unknown outcome {outcome!r}")
        if self.telemetry.enabled:
            self.telemetry.counter(
                "failover.outcomes",
                help="per-event outcomes under failover chaos",
                outcome=outcome,
            ).inc()

    def _unserviceable(self, now: float) -> bool:
        """No live, reachable primary right now?"""
        home = self.group.primary
        if self.injector.node_down(home, now):
            return True
        state = self.injector.state_at(now)
        if state.clear:
            return False
        neighbors = list(self.broker.topology.graph.neighbors(home))
        return bool(neighbors) and all(
            state.link_dead(home, n) for n in neighbors
        )

    # -- hook overrides ------------------------------------------------------

    def _arm(self, arrival_times: Sequence[float]) -> None:
        # Scheduled before the workload, so at equal times kills take
        # effect before an event arriving at the same instant.
        for kill in self.plan.broker_kills:
            self.simulator.schedule_at(
                float(kill.at), lambda k=kill: self._kill(k.node)
            )
        horizon = float(arrival_times[-1]) + self.settle
        self.group.start(horizon)

    def _record_intent(
        self,
        sequence: int,
        publisher: int,
        recipients: Sequence[int],
        method: str,
        group: int,
    ) -> None:
        self.group.journal.log_publish(
            sequence, publisher, recipients, method=method, group=group
        )

    def _publish_event(
        self,
        sequence: int,
        points: np.ndarray,
        publishers: Sequence[int],
        counters: Dict[str, int],
    ) -> None:
        now = self.simulator.now
        if self._unserviceable(now):
            if len(self._deferred) >= self.defer_capacity:
                self._finish(sequence, "shed")
                return
            self._deferred.append(
                (now, sequence, points, publishers, counters)
            )
            self.fstats.deferred_events += 1
            return
        self._finish(sequence, "delivered")
        super()._publish_event(sequence, points, publishers, counters)

    # -- failover plumbing ---------------------------------------------------

    def _kill(self, node: int) -> None:
        node = int(node)
        self.group.mark_dead(node)
        if node == self.group.primary:
            # The service's volatile sender-side state dies with its
            # host; what survives is the journal — on the standbys.
            wiped = self.transport.wipe_pending()
            self.fstats.wiped_inflight += len(wiped)
        if self.telemetry.enabled:
            self.telemetry.event("broker-kill", node=node)

    def _taken_over(
        self, state: RecoveredState, old: int, new: int, now: float
    ) -> None:
        # Partition takeover: the deposed primary may still hold
        # sender-side retry state it has no authority to finish.
        wiped = self.transport.wipe_pending()
        self.fstats.wiped_inflight += len(wiped)
        # Unacked in-flight deliveries, reconstructed from the shipped
        # WAL, go back out with the new primary as the sender.
        # Receivers that got the data before the failover dedup and
        # re-ack, so the exactly-once ledger holds across the takeover.
        for entry in state.inflight.values():
            if entry.targets:
                self.transport.publish(
                    entry.sequence, new, list(entry.targets)
                )
                self.fstats.redelivered += len(entry.targets)
        # The split-brain probe: a write stamped with the new epoch
        # must be admitted by the new primary and rejected by the old
        # one, alive or not.
        if self.group.write_allowed(new):
            self.fstats.probe_admissions += 1
        if not self.group.write_allowed(old):
            self.fstats.probe_rejections += 1
        deferred, self._deferred = self._deferred, []
        for at, sequence, points, publishers, counters in deferred:
            if now - at > self.defer_ttl:
                self._finish(sequence, "expired")
                continue
            self._finish(sequence, "delivered")
            ChaosSimulation._publish_event(
                self, sequence, points, publishers, counters
            )

    # -- reporting -----------------------------------------------------------

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        inter_arrival: float = 1.0,
        arrival_times: Optional[Sequence[float]] = None,
    ) -> FailoverReport:
        base = super().run(points, publishers, inter_arrival, arrival_times)
        # Events still deferred at the end never found a primary.
        leftover, self._deferred = self._deferred, []
        for _, sequence, *_rest in leftover:
            self._finish(sequence, "expired")
        self.fstats.published = len(points)
        return FailoverReport(
            **vars(base),
            replication=self.group.finalize_stats(),
            shipping=self.group.shipping_stats(),
            failover=self.fstats,
        )


def build_failover_plan(
    topology,
    seed: int = 2003,
    loss: float = 0.05,
    duplicate: float = 0.0,
    delay: float = 0.0,
    scenario: str = "kill",
    horizon: float = 500.0,
    standby_count: int = 2,
) -> Tuple[FaultPlan, int, List[int]]:
    """A plan plus replica placement for one failover scenario.

    The primary is a transit node drawn deterministically from
    ``seed``; ``standby_count`` ranked standbys come from
    :meth:`~repro.network.topology.Topology.replica_candidates`.

    ``scenario``:

    - ``"kill"`` — the primary is permanently killed at 40% of the
      horizon; the clean takeover path.
    - ``"partition"`` — every link incident to the primary is dead
      during ``[0.35, 0.7) * horizon``.  The primary survives as a
      zombie: standbys take over behind its back, and when the
      partition heals its stale traffic gets it fenced.
    - ``"catchup"`` — the top-ranked standby is isolated during
      ``[0.2, 0.5) * horizon`` (falling behind the shipping stream),
      then the primary is killed at 60%.  Pair with a small
      ``ShippingConfig.retain_ops`` so the takeover must come from an
      anti-entropy snapshot catch-up, not the incremental stream.

    Returns ``(plan, primary, standbys)``.
    """
    if scenario not in ("kill", "partition", "catchup"):
        raise ValueError(
            "scenario must be 'kill', 'partition' or 'catchup' "
            f"(got {scenario!r})"
        )
    rng = np.random.default_rng(seed + 41)
    transit = topology.all_transit_nodes()
    primary = int(transit[int(rng.integers(len(transit)))])
    standbys = topology.replica_candidates(primary, standby_count)
    kills: Tuple[BrokerKill, ...] = ()
    outages: Tuple[LinkOutage, ...] = ()
    if scenario == "kill":
        kills = (BrokerKill(node=primary, at=0.4 * horizon),)
    elif scenario == "partition":
        outages = tuple(
            LinkOutage(
                u=primary,
                v=int(neighbor),
                start=0.35 * horizon,
                end=0.7 * horizon,
            )
            for neighbor in topology.graph.neighbors(primary)
        )
    else:  # catchup
        laggard = standbys[0]
        outages = tuple(
            LinkOutage(
                u=laggard,
                v=int(neighbor),
                start=0.2 * horizon,
                end=0.5 * horizon,
            )
            for neighbor in topology.graph.neighbors(laggard)
        )
        kills = (BrokerKill(node=primary, at=0.6 * horizon),)
    plan = FaultPlan(
        seed=seed,
        default_loss=loss,
        default_duplicate=duplicate,
        default_delay=delay,
        outages=outages,
        broker_kills=kills,
    )
    return plan, primary, standbys
