"""Chaos harness for durable subscriber sessions.

:class:`SessionChaosSimulation` is the session-layer counterpart of
:class:`~repro.faults.verifier.ChaosSimulation`: one home broker
serving a handful of **durable sessions** at deterministic stub
subscriber nodes, publishing a workload while the scenario abuses the
subscriber side — crashes, connection flaps, a slow consumer shedding
its outbound queue, or a poison consumer rejecting every offer of
certain events.

The ledger this harness verifies is per-(event, session): every event
a *durable* session matched must end in **exactly one** of three
terminal buckets —

- ``delivered``: acked by the subscriber application (live or via
  catch-up replay after a reconnect);
- ``deadlettered``: quarantined to the
  :class:`~repro.sessions.dlq.DeadLetterQueue` after retry exhaustion,
  with a structured reason code;
- ``expired``: owed to a session whose lease ran out while detached
  (the *expired-ephemeral* leg — the one case where the guarantee is
  deliberately released, and loudly).

so ``delivered + deadlettered + expired == matched`` with **zero**
application-level duplicates, on every run, byte-identically per seed.

Delivery is per-session unicast from the home broker through the
ordinary :class:`~repro.faults.reliable.ReliableTransport` (acks,
retries, dedup, breakers); catch-up replay rides the same transport
under a token-bucket budget.  A timed-out delivery self-heals: the
session demotes to CATCHING_UP and the replayer re-derives it from
the retained log — after ``max_replay_requeues`` such cycles the
event is declared poison and dead-lettered with a ``timeout`` reason,
so nothing retries forever.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.broker import PubSubBroker
from ..core.event import Event
from ..overload import BoundedQueue, BreakerBoard, TokenBucket
from ..sessions import (
    DeadLetterQueue,
    RetainedEventLog,
    RetentionPolicy,
    SessionManager,
    SessionState,
    SubscriberSession,
)
from ..sessions.replay import CatchupReplayer
from ..simulation.delivery import LatencyStats
from ..simulation.engine import DiscreteEventSimulator
from ..simulation.packet_network import PacketNetwork
from ..telemetry.base import Telemetry, or_null
from ..workload import PublicationGenerator
from .plan import BrokerCrash, FaultInjector, FaultPlan, FaultStats
from .reliable import ReliabilityStats, ReliableTransport, RetryConfig
from .verifier import build_chaos_testbed

__all__ = [
    "SESSION_SCENARIOS",
    "SessionOutcome",
    "SessionReport",
    "SessionChaosSimulation",
    "select_session_nodes",
    "build_session_chaos",
]

#: The scripted subscriber-abuse scenarios the harness understands.
SESSION_SCENARIOS = ("crash", "flap", "slow-consumer", "poison")

#: Terminal buckets of the per-(event, session) ledger.
SessionOutcome = str  # "delivered" | "deadlettered" | "expired"


@dataclass
class SessionReport:
    """Everything one session-chaos run proved about the guarantee."""

    scenario: str
    events: int
    #: Total (event, session) obligations charged to durable sessions.
    matched: int
    delivered: int
    deadlettered: int
    expired_ephemeral: int
    #: Application-level deliveries of an already-settled obligation.
    duplicates: int
    #: Obligations with no terminal bucket at simulation end.
    unsettled: List[Tuple[int, str]]
    replay_sends: int
    replay_throttled: int
    convergences: int
    demotions: int
    #: Slow-consumer events shed from the outbound queue but retained
    #: (they must reappear via replay, never be lost).
    shed_retained: int
    lease_expirations: int
    cancelled: int
    dlq_size: int
    dlq_by_reason: Dict[str, int]
    retained_events: int
    retention_truncated_bytes: int
    #: (session_id, state, durability, cursor, matched, delivered,
    #: deadlettered, expired) per session, sorted by id.
    sessions: List[Tuple[str, str, str, int, int, int, int, int]]
    latency: LatencyStats
    finished_at: float
    fault_stats: FaultStats
    #: BLAKE2b over the full outcome map + cursor table: two runs of
    #: the same seed must produce the same digest.
    digest: str
    reliability: Optional[ReliabilityStats] = None

    @property
    def accounted(self) -> bool:
        """The ledger invariant every run must satisfy."""
        return (
            not self.unsettled
            and self.delivered + self.deadlettered + self.expired_ephemeral
            == self.matched
        )

    @property
    def at_least_once(self) -> bool:
        """Accounted, and nobody saw the same event twice."""
        return self.accounted and self.duplicates == 0

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(metric, value) rows for the CLI report table."""
        rows: List[Tuple[str, object]] = [
            ("scenario", self.scenario),
            ("events", self.events),
            ("matched obligations", self.matched),
            ("delivered", self.delivered),
            ("dead-lettered", self.deadlettered),
            ("expired (ephemeral demotion)", self.expired_ephemeral),
            ("unsettled", len(self.unsettled)),
            ("ledger accounted", "yes" if self.accounted else "NO"),
            ("app-level duplicates", self.duplicates),
            ("at-least-once", "yes" if self.at_least_once else "NO"),
            ("replay sends", self.replay_sends),
            ("replay throttled", self.replay_throttled),
            ("replay convergences", self.convergences),
            ("session demotions", self.demotions),
            ("shed but retained", self.shed_retained),
            ("lease expirations", self.lease_expirations),
            ("deliveries cancelled on detach", self.cancelled),
            ("dead-letter entries", self.dlq_size),
        ]
        for code in sorted(self.dlq_by_reason):
            rows.append((f"dlq: {code}", self.dlq_by_reason[code]))
        rows.extend(
            [
                ("retained events (end)", self.retained_events),
                (
                    "retention reclaimed (bytes)",
                    self.retention_truncated_bytes,
                ),
            ]
        )
        if self.reliability is not None:
            rows.extend(
                [
                    ("retries", self.reliability.retries),
                    ("gave up", self.reliability.gave_up),
                    ("nacks received", self.reliability.nacks_received),
                ]
            )
        rows.append(("p95 latency", f"{self.latency.p95:.2f}"))
        rows.append(("finished at", f"{self.finished_at:.2f}"))
        rows.append(("digest", self.digest))
        return rows


class SessionChaosSimulation:
    """Scripted subscriber abuse against the durable-session stack.

    ``session_nodes`` are the stub nodes that hold durable sessions;
    the **first** is the scenario victim (crashed / flapped / slowed /
    poisoned) and the **last** is the *ghost* — it detaches early,
    never resumes, and must be demoted to ephemeral by lease expiry
    (the ledger's ``expired`` leg).  Every other session is a control:
    it must see exactly its matched set, exactly once, as if nothing
    happened.
    """

    def __init__(
        self,
        broker: PubSubBroker,
        plan: FaultPlan,
        scenario: str = "crash",
        session_nodes: Optional[Sequence[int]] = None,
        lease: float = 150.0,
        journal=None,
        retention: Optional[RetentionPolicy] = None,
        retention_interval: int = 25,
        replay_rate: float = 2.0,
        replay_burst: float = 4.0,
        replay_batch: int = 4,
        max_replay_requeues: int = 3,
        slow_queue_capacity: int = 4,
        slow_service_time: float = 10.0,
        slow_ttl: float = 15.0,
        poison_every: int = 5,
        retry: Optional[RetryConfig] = None,
        transmission_time: float = 0.25,
        propagation_scale: float = 1.0,
        hop_retries: int = 4,
        telemetry: Optional[Telemetry] = None,
    ):
        if scenario not in SESSION_SCENARIOS:
            raise ValueError(
                f"unknown session scenario {scenario!r}; "
                f"expected one of {', '.join(SESSION_SCENARIOS)}"
            )
        if max_replay_requeues < 1:
            raise ValueError(
                f"max_replay_requeues must be >= 1 "
                f"(got {max_replay_requeues})"
            )
        if poison_every < 2:
            raise ValueError(
                f"poison_every must be >= 2 (got {poison_every})"
            )
        self.broker = broker
        self.plan = plan
        self.scenario = scenario
        self.simulator = DiscreteEventSimulator()
        self.injector = FaultInjector(plan)
        self.telemetry = or_null(telemetry)
        self.telemetry.bind_clock(lambda: self.simulator.now)
        self.network = PacketNetwork(
            broker.topology,
            self.simulator,
            transmission_time=transmission_time,
            propagation_scale=propagation_scale,
            injector=self.injector,
            hop_retries=hop_retries,
            telemetry=telemetry,
        )
        self.home = int(broker.topology.all_transit_nodes()[0])
        clock = lambda: self.simulator.now
        self.log = RetainedEventLog(
            clock=clock,
            policy=retention or RetentionPolicy(max_events=192),
            telemetry=telemetry,
        )
        self.manager = SessionManager(
            self.log,
            journal=journal,
            clock=clock,
            default_lease=lease,
            telemetry=telemetry,
        )
        self.dlq = DeadLetterQueue(clock=clock, telemetry=telemetry)
        self.breakers = BreakerBoard()
        self.transport = ReliableTransport(
            self.network,
            config=retry
            or RetryConfig.for_network(self.network, max_attempts=4),
            seed=plan.seed + 1,
            detector=self.injector,
            on_deliver=self._on_deliver,
            on_give_up=self._on_give_up,
            breakers=self.breakers,
            acceptor=self._accept,
            telemetry=telemetry,
        )
        self.replayer = CatchupReplayer(
            self.manager,
            self.transport,
            self.home,
            self.simulator,
            rematch=self._rematch,
            bucket=TokenBucket(replay_rate, replay_burst),
            batch=replay_batch,
            pump_interval=2.0,
            telemetry=telemetry,
        )
        if session_nodes is None:
            session_nodes = select_session_nodes(broker, 6)
        if len(session_nodes) < 2:
            raise ValueError(
                "need at least 2 session nodes (a victim and a ghost); "
                f"got {len(session_nodes)}"
            )
        sids_by_node = _subscriptions_by_node(broker)
        self._session_by_node: Dict[int, SubscriberSession] = {}
        for node in session_nodes:
            node = int(node)
            if node not in sids_by_node:
                raise ValueError(
                    f"node {node} holds no subscriptions; it cannot "
                    "anchor a durable session"
                )
            session = self.manager.register(
                f"sess-{node}", node, sids_by_node[node]
            )
            self._session_by_node[node] = session
        self.victim = self._session_by_node[int(session_nodes[0])]
        self.ghost = self._session_by_node[int(session_nodes[-1])]
        self.max_replay_requeues = int(max_replay_requeues)
        self.retention_interval = int(retention_interval)
        self.poison_every = int(poison_every)
        self.slow_ttl = float(slow_ttl)
        self.slow_service_time = float(slow_service_time)
        self._victim_queue: Optional[BoundedQueue] = None
        self._victim_serving = False
        if scenario == "slow-consumer":
            self._victim_queue = BoundedQueue(
                slow_queue_capacity, policy="ttl-priority"
            )
        # -- the ledger ------------------------------------------------------
        #: (sequence, session_id) -> terminal bucket, exactly once.
        self.outcomes: Dict[Tuple[int, str], SessionOutcome] = {}
        self.matched_at: Dict[Tuple[int, str], float] = {}
        self.matched_seqs: Dict[str, Set[int]] = {
            s.session_id: set() for s in self._session_by_node.values()
        }
        self.delivered_seqs: Dict[str, Set[int]] = {
            s.session_id: set() for s in self._session_by_node.values()
        }
        self.session_latencies: Dict[str, List[float]] = {
            s.session_id: [] for s in self._session_by_node.values()
        }
        self._expired_counts: Dict[str, int] = {}
        self._timeout_giveups: Dict[Tuple[int, str], int] = {}
        self._poison: Set[int] = set()
        self._victim_charges = 0
        self.duplicates = 0
        self.demotions = 0
        self.shed_retained = 0
        self._published = 0

    # -- accounting ----------------------------------------------------------

    def _finish(
        self, pair: Tuple[int, str], outcome: SessionOutcome
    ) -> None:
        """Assign one obligation its terminal bucket, exactly once."""
        if pair in self.outcomes:
            raise RuntimeError(
                f"obligation {pair} already accounted as "
                f"{self.outcomes[pair]!r}"
            )
        self.outcomes[pair] = outcome

    # -- matching helpers ----------------------------------------------------

    def _rematch(self, retained) -> Set[int]:
        """Replay-side re-match: same engine, current table."""
        event = Event.create(
            retained.sequence, retained.publisher, retained.point
        )
        return set(self.broker.engine.match(event).subscription_ids)

    def _accept(self, target: int, key: int, time: float) -> bool:
        """The receiver-side application: is anyone there to consume?

        A detached (or lease-expired) session has no application
        behind it, so late network stragglers addressed to it are
        *nacked*, not consumed — crucially, a nack does not mark the
        event seen, so the catch-up replayer's re-send after resume is
        still accepted (rejecting via dedup instead would silently
        swallow the redelivery).  The poison scenario's victim
        additionally rejects its poison events forever.
        """
        session = self._session_by_node.get(target)
        if session is None:
            return True
        if session.state is SessionState.DETACHED or not session.durable:
            return False
        if session is self.victim and key in self._poison:
            return False
        return True

    # -- the publish path ----------------------------------------------------

    def _publish_event(self, sequence: int) -> None:
        event = Event.create(
            sequence,
            int(self._publishers[sequence]),
            self._points[sequence],
        )
        match = self.broker.engine.match(event)
        now = self.simulator.now
        _lsn, charged, live = self.manager.on_publish(event, match)
        for session in charged:
            pair = (sequence, session.session_id)
            self.matched_at[pair] = now
            self.matched_seqs[session.session_id].add(sequence)
            if (
                self.scenario == "poison"
                and session is self.victim
            ):
                self._victim_charges += 1
                if self._victim_charges % self.poison_every == 0:
                    self._poison.add(sequence)
        for session in live:
            self._dispatch(session, sequence)
        self._published += 1
        if self._published % self.retention_interval == 0:
            self.log.enforce_retention(now, self.manager.low_water())

    def _dispatch(self, session: SubscriberSession, sequence: int) -> None:
        """Send one live-path delivery (through the victim's queue if slow)."""
        if (
            self._victim_queue is not None
            and session is self.victim
        ):
            now = self.simulator.now
            victims = self._victim_queue.offer(
                sequence, now, now + self.slow_ttl
            )
            for seq in self._victim_queue.expired_in_last_offer():
                self._shed_retained(seq)
            for seq in victims:
                self._shed_retained(seq)
                if seq == sequence:
                    return
            self._ensure_victim_serving()
            return
        self.transport.publish(sequence, self.home, [session.subscriber])

    # -- the slow consumer ---------------------------------------------------

    def _ensure_victim_serving(self) -> None:
        if (
            self._victim_serving
            or self._victim_queue is None
            or self._victim_queue.depth == 0
        ):
            return
        self._victim_serving = True
        self.simulator.schedule(self.slow_service_time, self._serve_victim)

    def _serve_victim(self) -> None:
        """Drain the slow consumer's outbound queue, one event at a time."""
        now = self.simulator.now
        sequence, expired = self._victim_queue.poll(now)
        for seq in expired:
            self._shed_retained(seq)
        if sequence is not None:
            session = self.victim
            if (
                session.state is SessionState.LIVE
                and session.is_outstanding(sequence)
            ):
                self.transport.publish(
                    sequence, self.home, [session.subscriber]
                )
            # Demoted mid-queue: the replayer owns the backlog now.
        if self._victim_queue.depth > 0:
            self.simulator.schedule(
                self.slow_service_time, self._serve_victim
            )
        else:
            self._victim_serving = False

    def _shed_retained(self, sequence: int) -> None:
        """One queued delivery was shed — but the event stays retained.

        The obligation survives in the session's outstanding set, so
        demoting the session to CATCHING_UP makes the replayer
        re-derive it from the retained log: shed-but-retained events
        *reappear*, they are never lost.
        """
        if not self.victim.is_outstanding(sequence):
            return
        self.shed_retained += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "sessions.shed_retained",
                help="slow-consumer sheds recovered via replay",
            ).inc()
        self._demote(self.victim, sequence)

    # -- session lifecycle hooks ---------------------------------------------

    def _demote(
        self, session: SubscriberSession, sequence: Optional[int] = None
    ) -> None:
        """Drop a session out of the live path and let replay heal it."""
        if not session.durable or session.state is SessionState.DETACHED:
            return
        if session.state is SessionState.LIVE:
            session.state = SessionState.CATCHING_UP
            session.replay_pos = session.cursor
            self.demotions += 1
        elif sequence is not None:
            session.rewind_to(sequence)
        self.replayer.start(session)

    def _detach(self, session: SubscriberSession) -> None:
        self.manager.detach(session.session_id)
        self.transport.cancel_target(session.subscriber)

    def _resume(self, session: SubscriberSession) -> None:
        if not session.durable:
            return
        self.manager.resume(session.session_id)
        self.replayer.start(session)

    def _expire_leases(self) -> None:
        now = self.simulator.now
        for session, sequences in self.manager.expire_leases(now):
            self._expired_counts[session.session_id] = len(sequences)
            for sequence in sequences:
                self._finish((sequence, session.session_id), "expired")

    # -- transport callbacks -------------------------------------------------

    def _on_deliver(self, target: int, key: int, time: float) -> None:
        session = self._session_by_node.get(target)
        if session is None:
            return
        pair = (key, session.session_id)
        if pair not in self.matched_at:
            return
        if pair in self.outcomes:
            self.duplicates += 1
            return
        self._finish(pair, "delivered")
        self.delivered_seqs[session.session_id].add(key)
        latency = time - self.matched_at[pair]
        self.session_latencies[session.session_id].append(latency)
        self.manager.ack(session.session_id, key)

    def _on_give_up(self, target: int, key: int, reason) -> None:
        session = self._session_by_node.get(target)
        if session is None:
            return
        pair = (key, session.session_id)
        if pair in self.outcomes or not session.is_outstanding(key):
            return
        code = str(getattr(reason, "code", "timeout"))
        if code == "timeout":
            # Transient failure: self-heal through the retained log.
            # Only a delivery that keeps dying across several full
            # replay cycles is declared poison.
            cycles = self._timeout_giveups.get(pair, 0) + 1
            self._timeout_giveups[pair] = cycles
            if cycles < self.max_replay_requeues:
                self._demote(session, key)
                return
        self.dlq.quarantine(key, session.session_id, target, reason)
        self.manager.discard(session.session_id, key)
        self._finish(pair, "deadlettered")

    # -- the scenario script -------------------------------------------------

    def _scenario_schedule(
        self, horizon: float
    ) -> List[Tuple[float, object]]:
        """The scripted abuse, as (time, action) pairs.

        Scheduled before the publishes so same-time actions win the
        engine's FIFO tie (a detach at ``t`` precedes an event
        published at ``t``).  Every scenario includes the ghost leg:
        detach at ``0.2·horizon``, never resume, demote by lease.
        """
        schedule: List[Tuple[float, object]] = [
            (0.2 * horizon, lambda: self._detach(self.ghost)),
        ]
        ghost_deadline = 0.2 * horizon + self.ghost.lease
        schedule.append((ghost_deadline + 1.0, self._expire_leases))
        if self.scenario == "crash":
            schedule.append(
                (0.35 * horizon, lambda: self._detach(self.victim))
            )
            schedule.append(
                (0.65 * horizon, lambda: self._resume(self.victim))
            )
        elif self.scenario == "flap":
            for start, end in (
                (0.2, 0.3),
                (0.45, 0.55),
                (0.7, 0.78),
            ):
                schedule.append(
                    (start * horizon, lambda: self._detach(self.victim))
                )
                schedule.append(
                    (end * horizon, lambda: self._resume(self.victim))
                )
        # slow-consumer and poison leave the victim attached; their
        # abuse lives in the dispatch queue / acceptor instead.
        return sorted(schedule, key=lambda entry: entry[0])

    # -- the run -------------------------------------------------------------

    def _digest(self) -> str:
        body = {
            "scenario": self.scenario,
            "outcomes": sorted(
                [seq, sid, outcome]
                for (seq, sid), outcome in self.outcomes.items()
            ),
            "cursors": {
                session.session_id: session.cursor
                for session in self._session_by_node.values()
            },
            "dlq": [
                [entry.sequence, entry.session_id, entry.reason_code]
                for entry in self.dlq.entries()
            ],
        }
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=16
        ).hexdigest()

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        arrival_times: Optional[Sequence[float]] = None,
        inter_arrival: float = 1.0,
    ) -> SessionReport:
        """Publish the workload under the scenario; verify the ledger."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] != len(publishers):
            raise ValueError(
                "points must be (m, N) with one publisher per row"
            )
        if arrival_times is None:
            arrival_times = [
                i * inter_arrival for i in range(len(points))
            ]
        if len(arrival_times) != len(points):
            raise ValueError("one arrival time per event required")
        self._points = points
        self._publishers = [int(p) for p in publishers]
        horizon = float(arrival_times[-1]) if len(arrival_times) else 0.0
        for time, action in self._scenario_schedule(horizon):
            self.simulator.schedule_at(float(time), action)
        for sequence, time in enumerate(arrival_times):
            self.simulator.schedule_at(
                float(time),
                lambda s=sequence: self._publish_event(s),
            )
        finished_at = self.simulator.run()
        # One final retention pass with the end-state low-water mark,
        # so the report's retained count reflects steady state.
        self.log.enforce_retention(finished_at, self.manager.low_water())

        counts = {"delivered": 0, "deadlettered": 0, "expired": 0}
        for outcome in self.outcomes.values():
            counts[outcome] += 1
        unsettled = sorted(
            pair for pair in self.matched_at if pair not in self.outcomes
        )
        session_rows = []
        for session_id in sorted(self.matched_seqs):
            session = self.manager.sessions[session_id]
            session_rows.append(
                (
                    session_id,
                    session.state.value,
                    "durable" if session.durable else "ephemeral",
                    session.cursor,
                    len(self.matched_seqs[session_id]),
                    session.delivered,
                    session.deadlettered,
                    self._expired_counts.get(session_id, 0),
                )
            )
        latencies = [
            sample
            for samples in self.session_latencies.values()
            for sample in samples
        ]
        return SessionReport(
            scenario=self.scenario,
            events=len(points),
            matched=len(self.matched_at),
            delivered=counts["delivered"],
            deadlettered=counts["deadlettered"],
            expired_ephemeral=counts["expired"],
            duplicates=self.duplicates,
            unsettled=unsettled,
            replay_sends=self.replayer.replay_sends,
            replay_throttled=self.replayer.throttled,
            convergences=self.replayer.convergences,
            demotions=self.demotions,
            shed_retained=self.shed_retained,
            lease_expirations=self.manager.lease_expirations,
            cancelled=self.transport.stats.cancelled,
            dlq_size=len(self.dlq),
            dlq_by_reason=self.dlq.by_reason(),
            retained_events=self.log.retained(),
            retention_truncated_bytes=self.log.truncated_bytes,
            sessions=session_rows,
            latency=LatencyStats.from_samples(sorted(latencies)),
            finished_at=finished_at,
            fault_stats=self.injector.stats,
            digest=self._digest(),
            reliability=self.transport.stats,
        )


# -- canned builders (shared by the CLI and tests) ---------------------------


def _subscriptions_by_node(broker: PubSubBroker) -> Dict[int, List[int]]:
    out: Dict[int, List[int]] = {}
    for subscription_id in range(len(broker.table)):
        subscriber = int(broker.table[subscription_id].subscriber)
        out.setdefault(subscriber, []).append(subscription_id)
    return out


def select_session_nodes(
    broker: PubSubBroker, count: int = 6
) -> List[int]:
    """The ``count`` stub nodes holding the most subscriptions.

    Deterministic (ties broken by node id), so the victim (first) and
    ghost (last) are stable per testbed seed — and every chosen node
    matches enough traffic for the scenario to bite.
    """
    by_node = _subscriptions_by_node(broker)
    if count > len(by_node):
        raise ValueError(
            f"cannot place {count} sessions; only {len(by_node)} nodes "
            "hold subscriptions"
        )
    ranked = sorted(by_node, key=lambda node: (-len(by_node[node]), node))
    return [int(node) for node in ranked[:count]]


def build_session_chaos(
    scenario: str,
    seed: int = 2003,
    events: int = 160,
    inter_arrival: float = 1.0,
    subscriptions: int = 300,
    num_sessions: int = 6,
    loss: float = 0.05,
    telemetry: Optional[Telemetry] = None,
    **overrides,
):
    """Assemble a ready-to-run session chaos scenario.

    Returns ``(simulation, points, publishers, arrival_times)`` — call
    ``simulation.run(points, publishers, arrival_times)`` for the
    report.  The crash scenario's fault plan crashes the victim *node*
    for the same window the session is detached, so in-flight packets
    at the moment of the crash die realistically.
    """
    broker, density = build_chaos_testbed(
        seed=seed, subscriptions=subscriptions
    )
    nodes = select_session_nodes(broker, num_sessions)
    horizon = events * inter_arrival
    crashes = ()
    if scenario == "crash":
        crashes = (
            BrokerCrash(
                node=nodes[0],
                start=0.35 * horizon,
                end=0.65 * horizon,
            ),
        )
    plan = FaultPlan(seed=seed, default_loss=loss, crashes=crashes)
    simulation = SessionChaosSimulation(
        broker,
        plan,
        scenario=scenario,
        session_nodes=nodes,
        lease=overrides.pop("lease", 0.35 * horizon),
        telemetry=telemetry,
        **overrides,
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=seed + 7
    ).generate(events)
    arrival_times = [i * inter_arrival for i in range(events)]
    return simulation, points, publishers, arrival_times
