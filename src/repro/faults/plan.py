"""Deterministic, seedable fault injection for the delivery substrate.

The paper's cost model assumes every link delivers and every broker
stays up.  This module supplies the adversary: a declarative
:class:`FaultPlan` describing *what can go wrong* — per-link loss,
duplication and delay rates, link outage windows, broker crash/restart
windows — and a :class:`FaultInjector` that plays the plan out against
individual transmissions.

Determinism is the design constraint everything here bends around:

- probabilistic decisions (drop / duplicate / delay draws) come from a
  single ``numpy`` generator seeded from the plan, consumed in
  transmission order — and the discrete-event engine guarantees the
  transmission order itself is reproducible;
- windowed faults (outages, crashes) are pure functions of simulation
  time, using half-open ``[start, end)`` windows;
- no wall clock, no global RNG, anywhere.

A default-constructed plan injects nothing, and the injector hook in
:class:`~repro.simulation.packet_network.PacketNetwork` is skipped
entirely when no injector is attached, so the fault machinery is
zero-cost when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Tuple

import numpy as np

__all__ = [
    "LinkFault",
    "LinkOutage",
    "BrokerCrash",
    "BrokerKill",
    "WalCorruption",
    "FaultPlan",
    "FaultState",
    "FaultStats",
    "TransmissionFate",
    "FaultInjector",
]


def _link_key(u: int, v: int) -> Tuple[int, int]:
    """Canonical undirected link identity."""
    u, v = int(u), int(v)
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class LinkFault:
    """Stochastic misbehaviour of one (undirected) link.

    ``loss``/``duplicate`` are per-transmission probabilities; ``delay``
    is the maximum extra latency, drawn uniformly per transmission.  A
    ``loss`` of 1.0 makes the link effectively dead — the failure
    detector (:meth:`FaultInjector.state_at`) reports it as such.
    """

    u: int
    v: int
    loss: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(
                f"LinkFault: loss must lie in [0, 1] (got {self.loss})"
            )
        if not 0.0 <= self.duplicate <= 1.0:
            raise ValueError(
                f"LinkFault: duplicate must lie in [0, 1] "
                f"(got {self.duplicate})"
            )
        if self.delay < 0.0:
            raise ValueError(
                f"LinkFault: delay must be non-negative (got {self.delay})"
            )


@dataclass(frozen=True)
class LinkOutage:
    """A link is completely dead during ``[start, end)``."""

    u: int
    v: int
    start: float
    end: float

    def __post_init__(self) -> None:
        # A plain raise, not an assert: the validation must survive
        # ``python -O``, where asserts are stripped.
        if not self.start < self.end:
            detail = (
                "a zero-length window never activates"
                if self.start == self.end
                else "the window is inverted"
            )
            raise ValueError(
                f"LinkOutage: window must satisfy start < end "
                f"(got [{self.start}, {self.end}): {detail})"
            )

    def active(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class BrokerCrash:
    """A node (broker/relay) is down during ``[start, end)``.

    While down it neither sends, forwards nor receives; at ``end`` it
    restarts.  Receiver-side protocol state (the dedup ledger) is
    modelled as durable across restarts, as a store-and-forward broker
    would journal it.
    """

    node: int
    start: float
    end: float

    def __post_init__(self) -> None:
        # A plain raise, not an assert: the validation must survive
        # ``python -O``, where asserts are stripped.
        if not self.start < self.end:
            detail = (
                "a zero-length window never activates"
                if self.start == self.end
                else "the window is inverted"
            )
            raise ValueError(
                f"BrokerCrash: window must satisfy start < end "
                f"(got [{self.start}, {self.end}): {detail})"
            )

    def active(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class BrokerKill:
    """A node is *permanently* dead from ``at`` onwards (fail-stop).

    Unlike :class:`BrokerCrash` there is no restart: the node never
    sends, forwards or receives again.  This is the fault class that
    motivates replication — a crashed broker recovers itself from its
    own WAL, a killed broker can only be succeeded by a standby
    holding a shipped copy of that WAL.
    """

    node: int
    at: float

    def __post_init__(self) -> None:
        # A plain raise, not an assert: the validation must survive
        # ``python -O``, where asserts are stripped.
        if self.at < 0.0:
            raise ValueError(
                f"BrokerKill: at must be non-negative (got {self.at})"
            )

    def active(self, time: float) -> bool:
        return time >= self.at


@dataclass(frozen=True)
class WalCorruption:
    """Storage damage applied to a broker's WAL when it crashes.

    ``crash_index`` selects which crash window (in plan order, per the
    crash-recovery harness) the damage rides on — the crash *is* the
    corruption moment: a torn tail models an append cut short by the
    power loss, a bit flip models media rot discovered on restart.

    ``kind``:

    - ``"torn-tail"`` — the last ``tail_bytes`` bytes never hit disk;
    - ``"bit-flip"`` — flip bit ``flip_bit`` of the byte
      ``flip_offset`` positions back from the physical end.

    Either way, recovery must truncate at the last CRC-valid record
    and replay the rest deterministically — that is what
    :mod:`repro.durability` exists to guarantee and what the chaos
    verifier checks.
    """

    crash_index: int = 0
    kind: str = "torn-tail"
    tail_bytes: int = 5
    flip_offset: int = 3
    flip_bit: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("torn-tail", "bit-flip"):
            raise ValueError(
                f"WalCorruption: kind must be 'torn-tail' or 'bit-flip' "
                f"(got {self.kind!r})"
            )
        if self.crash_index < 0:
            raise ValueError(
                f"WalCorruption: crash_index must be >= 0 "
                f"(got {self.crash_index})"
            )
        if self.tail_bytes < 1:
            raise ValueError(
                f"WalCorruption: tail_bytes must be >= 1 "
                f"(got {self.tail_bytes})"
            )
        if self.flip_offset < 1:
            raise ValueError(
                f"WalCorruption: flip_offset must be >= 1 "
                f"(got {self.flip_offset})"
            )
        if not 0 <= self.flip_bit <= 7:
            raise ValueError(
                f"WalCorruption: flip_bit must lie in 0..7 "
                f"(got {self.flip_bit})"
            )

    def apply(self, wal) -> bool:
        """Damage ``wal`` in place; True if anything actually changed."""
        if self.kind == "torn-tail":
            return wal.tear_tail(self.tail_bytes) > 0
        return wal.flip_bit(self.flip_offset, self.flip_bit)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, declaratively.

    The default plan is empty: no loss, no outages, no crashes.
    ``default_loss``/``default_duplicate``/``default_delay`` apply to
    every link; per-link :class:`LinkFault` entries override the
    defaults for their link entirely.
    """

    seed: int = 0
    default_loss: float = 0.0
    default_duplicate: float = 0.0
    default_delay: float = 0.0
    link_faults: Tuple[LinkFault, ...] = ()
    outages: Tuple[LinkOutage, ...] = ()
    crashes: Tuple[BrokerCrash, ...] = ()
    #: Permanent fail-stop kills (replication/failover harness).
    broker_kills: Tuple[BrokerKill, ...] = ()
    #: Storage damage riding on crash windows (crash-recovery harness).
    wal_corruptions: Tuple[WalCorruption, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.default_loss <= 1.0:
            raise ValueError(
                f"FaultPlan: default_loss must lie in [0, 1] "
                f"(got {self.default_loss})"
            )
        if not 0.0 <= self.default_duplicate <= 1.0:
            raise ValueError(
                f"FaultPlan: default_duplicate must lie in [0, 1] "
                f"(got {self.default_duplicate})"
            )
        if self.default_delay < 0.0:
            raise ValueError(
                f"FaultPlan: default_delay must be non-negative "
                f"(got {self.default_delay})"
            )
        object.__setattr__(self, "link_faults", tuple(self.link_faults))
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "broker_kills", tuple(self.broker_kills))
        object.__setattr__(
            self, "wal_corruptions", tuple(self.wal_corruptions)
        )

    @property
    def enabled(self) -> bool:
        """Whether the plan injects any fault at all."""
        return bool(
            self.default_loss
            or self.default_duplicate
            or self.default_delay
            or self.link_faults
            or self.outages
            or self.crashes
            or self.broker_kills
            or self.wal_corruptions
        )

    @classmethod
    def uniform_loss(cls, rate: float, seed: int = 0) -> FaultPlan:
        """Every link drops each transmission with probability ``rate``."""
        return cls(seed=seed, default_loss=rate)


@dataclass(frozen=True)
class FaultState:
    """The deterministic fault picture at one instant.

    ``dead_links`` holds canonical ``(min, max)`` node pairs: links in
    an active outage window plus permanently-lossy (``loss >= 1``)
    links.  This is what an omniscient failure detector would report;
    the reliable transport uses it to reroute around known-dead parts.
    """

    time: float
    dead_nodes: FrozenSet[int]
    dead_links: FrozenSet[Tuple[int, int]]

    def node_dead(self, node: int) -> bool:
        return int(node) in self.dead_nodes

    def link_dead(self, u: int, v: int) -> bool:
        return (
            _link_key(u, v) in self.dead_links
            or int(u) in self.dead_nodes
            or int(v) in self.dead_nodes
        )

    @property
    def clear(self) -> bool:
        return not self.dead_nodes and not self.dead_links

    @classmethod
    def none(cls, time: float = 0.0) -> FaultState:
        """A fault-free snapshot (useful as a neutral default)."""
        return cls(time=time, dead_nodes=frozenset(), dead_links=frozenset())


@dataclass
class FaultStats:
    """What the injector actually did during one run."""

    transmissions_seen: int = 0
    random_drops: int = 0
    outage_drops: int = 0
    sender_down_drops: int = 0
    receiver_down_drops: int = 0
    duplicates_injected: int = 0
    delays_injected: int = 0

    @property
    def total_drops(self) -> int:
        return (
            self.random_drops
            + self.outage_drops
            + self.sender_down_drops
            + self.receiver_down_drops
        )


@dataclass(frozen=True)
class TransmissionFate:
    """What the injector decided for one link transmission.

    ``sent`` is False when the sending node was down (nothing entered
    the link); ``copies`` is 0 for any lost transmission, 1 normally,
    2 when duplicated.
    """

    sent: bool = True
    copies: int = 1
    extra_delay: float = 0.0

    @property
    def lost(self) -> bool:
        return self.copies == 0


_DELIVER = TransmissionFate()
_SENDER_DOWN = TransmissionFate(sent=False, copies=0)
_LOST = TransmissionFate(sent=True, copies=0)


class FaultInjector:
    """Executes a :class:`FaultPlan` against individual transmissions.

    One injector instance is bound to one simulation run; call
    :meth:`reset` (or build a fresh injector) before replaying, so the
    probabilistic stream restarts from the plan's seed.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._faults: Dict[Tuple[int, int], LinkFault] = {
            _link_key(f.u, f.v): f for f in plan.link_faults
        }
        self._permanently_dead: FrozenSet[Tuple[int, int]] = frozenset(
            key for key, f in self._faults.items() if f.loss >= 1.0
        )
        self._outages: Dict[Tuple[int, int], list] = {}
        for outage in plan.outages:
            self._outages.setdefault(_link_key(outage.u, outage.v), []).append(
                outage
            )
        self._crashes: Dict[int, list] = {}
        for crash in plan.crashes:
            self._crashes.setdefault(int(crash.node), []).append(crash)
        # Earliest kill per node; from that instant the node is dead for
        # good, so only the minimum matters.
        self._kills: Dict[int, float] = {}
        for kill in plan.broker_kills:
            node = int(kill.node)
            at = float(kill.at)
            if node not in self._kills or at < self._kills[node]:
                self._kills[node] = at
        self._rng = np.random.default_rng(plan.seed)
        self.stats = FaultStats()

    def reset(self) -> None:
        """Restart the probabilistic stream and zero the stats."""
        self._rng = np.random.default_rng(self.plan.seed)
        self.stats = FaultStats()

    # -- windowed faults -----------------------------------------------------

    def node_down(self, node: int, time: float) -> bool:
        """Whether a node is inside a crash window or permanently killed."""
        node = int(node)
        kill = self._kills.get(node)
        if kill is not None and time >= kill:
            return True
        windows = self._crashes.get(node)
        if not windows:
            return False
        return any(w.active(time) for w in windows)

    def node_killed(self, node: int, time: float) -> bool:
        """Whether a node is *permanently* dead at ``time`` (no restart)."""
        kill = self._kills.get(int(node))
        return kill is not None and time >= kill

    def link_down(self, u: int, v: int, time: float) -> bool:
        """Whether a link is inside one of its outage windows."""
        windows = self._outages.get(_link_key(u, v))
        if not windows:
            return False
        return any(w.active(time) for w in windows)

    def arrival_blocked(self, node: int, time: float) -> bool:
        """Receiver-side check: a down node swallows arriving copies."""
        if self.node_down(node, time):
            self.stats.receiver_down_drops += 1
            return True
        return False

    def state_at(self, time: float) -> FaultState:
        """The failure detector's view: dead nodes and links at ``time``.

        Includes permanently-lossy links (``loss >= 1``) — an oracle
        simplification standing in for a real link-state detector,
        which would learn the same fact from repeated timeouts.
        """
        dead_nodes = frozenset(
            node
            for node, windows in self._crashes.items()
            if any(w.active(time) for w in windows)
        ) | frozenset(
            node for node, at in self._kills.items() if time >= at
        )
        dead_links = frozenset(
            key
            for key, windows in self._outages.items()
            if any(w.active(time) for w in windows)
        ) | self._permanently_dead
        return FaultState(
            time=time, dead_nodes=dead_nodes, dead_links=dead_links
        )

    # -- the per-transmission decision -------------------------------------

    def filter_transmission(
        self, u: int, v: int, time: float
    ) -> TransmissionFate:
        """Decide the fate of one copy entering link ``(u, v)`` at ``time``."""
        self.stats.transmissions_seen += 1
        if self.node_down(u, time):
            self.stats.sender_down_drops += 1
            return _SENDER_DOWN
        if self.link_down(u, v, time):
            self.stats.outage_drops += 1
            return _LOST
        fault = self._faults.get(_link_key(u, v))
        if fault is not None:
            loss, duplicate, delay = fault.loss, fault.duplicate, fault.delay
        else:
            plan = self.plan
            loss = plan.default_loss
            duplicate = plan.default_duplicate
            delay = plan.default_delay
        if loss > 0.0 and (loss >= 1.0 or self._rng.random() < loss):
            self.stats.random_drops += 1
            return _LOST
        copies = 1
        if duplicate > 0.0 and self._rng.random() < duplicate:
            self.stats.duplicates_injected += 1
            copies = 2
        extra_delay = 0.0
        if delay > 0.0:
            extra_delay = float(self._rng.random() * delay)
            self.stats.delays_injected += 1
        if copies == 1 and extra_delay == 0.0:
            return _DELIVER
        return TransmissionFate(copies=copies, extra_delay=extra_delay)
