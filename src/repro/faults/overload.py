"""Chaos harness for saturation: the overload-protected event pipeline.

:class:`OverloadChaosSimulation` is the saturated-broker counterpart
of :class:`~repro.faults.verifier.ChaosSimulation`.  Where the plain
chaos harness feeds every published event straight into match → decide
→ route, this one interposes the full overload-protection stack from
:mod:`repro.overload` at the publisher edge:

    publish burst ──▶ token bucket ──▶ bounded ingress queue ──▶ serve loop
                      (admission)       (shed per policy,          │
                                         TTL purge)               ▼
                                                    HealthMonitor decides:
                                                    HEALTHY    exact match + threshold rule
                                                    DEGRADED   flood ``M_q`` (no S-tree query)
                                                    OVERLOADED shed new arrivals outright

and the reliable transport runs with per-subscriber circuit breakers,
so a dead subscriber stops consuming retry budget after its failure
budget trips.

Accounting is strict: every published event lands in **exactly one**
of three buckets — *delivered* (fully processed by the broker, even
if it matched nobody), *shed* (refused by admission control, the
health governor, or the queue policy) or *expired* (its TTL lapsed
inside the broker) — so ``delivered + shed + expired == published``
holds for every run.  Per-(event, subscriber) delivery truth is still
tracked by a :class:`~repro.faults.verifier.DeliveryLedger`; expired
copies are additionally dropped at the *receiver* (counted as late
drops) rather than delivered past their deadline.

Everything — timers, shedding, breaker trips, health transitions —
runs off the simulator clock, so a seeded scenario produces a
byte-identical :class:`OverloadReport` on every rerun.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core.broker import PubSubBroker
from ..core.distribution import DeliveryMethod, record_decision
from ..core.event import Event
from ..overload import BrokerHealth, OverloadConfig
from ..simulation.delivery import LatencyStats
from ..simulation.engine import DiscreteEventSimulator
from ..simulation.packet_network import PacketNetwork
from ..telemetry.base import Telemetry, or_null
from .plan import FaultInjector, FaultPlan, FaultStats
from .reliable import ReliabilityStats, ReliableTransport, RetryConfig
from .verifier import DeliveryLedger

__all__ = ["EventOutcome", "OverloadReport", "OverloadChaosSimulation"]


#: The per-event terminal buckets of the overload ledger.
EventOutcome = str  # "delivered" | "shed" | "expired"


@dataclass
class OverloadReport:
    """Everything one saturated run proved about the protection stack."""

    # -- the per-event ledger (delivered + shed + expired == published) --
    published: int
    delivered_events: int
    shed_events: int
    expired_events: int
    shed_reasons: Dict[str, int]
    degraded_events: int          # delivered via group flood, match skipped
    # -- load machinery ---------------------------------------------------
    peak_queue_depth: int
    queue_capacity: int
    health_transitions: List[Tuple[float, str]]
    health_samples: Dict[str, int]
    admission_rejected: int
    breaker_opens: int
    breaker_closes: int
    short_circuited: int
    open_targets: List[int]
    # -- per-delivery truth ----------------------------------------------
    expected: int
    delivered: int
    duplicate_deliveries: int
    late_drops: int               # receiver-side deadline drops
    missing: List[Tuple[int, int, str]]
    latency: LatencyStats
    finished_at: float
    fault_stats: FaultStats
    reliability: Optional[ReliabilityStats] = None

    @property
    def accounted(self) -> bool:
        """The ledger invariant every run must satisfy."""
        return (
            self.delivered_events + self.shed_events + self.expired_events
            == self.published
        )

    @property
    def within_capacity(self) -> bool:
        """Whether the ingress queue ever burst its configured bound."""
        return self.peak_queue_depth <= self.queue_capacity

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(metric, value) rows for the CLI report table."""
        rows: List[Tuple[str, object]] = [
            ("published", self.published),
            ("delivered (events)", self.delivered_events),
            ("shed (events)", self.shed_events),
            ("expired (events)", self.expired_events),
            ("ledger accounted", "yes" if self.accounted else "NO"),
            ("degraded (group flood)", self.degraded_events),
            (
                "peak queue depth",
                f"{self.peak_queue_depth}/{self.queue_capacity}",
            ),
            ("within capacity", "yes" if self.within_capacity else "NO"),
            ("admission rejected", self.admission_rejected),
        ]
        for reason in sorted(self.shed_reasons):
            rows.append((f"shed: {reason}", self.shed_reasons[reason]))
        for state in BrokerHealth:
            rows.append(
                (
                    f"health samples: {state.value}",
                    self.health_samples.get(state.value, 0),
                )
            )
        rows.append(
            (
                "health transitions",
                " -> ".join(
                    f"{state}@{time:.1f}"
                    for time, state in self.health_transitions
                )
                or "(none)",
            )
        )
        rows.extend(
            [
                ("breaker opens", self.breaker_opens),
                ("breaker closes", self.breaker_closes),
                ("short-circuited", self.short_circuited),
                (
                    "isolated targets",
                    ",".join(map(str, self.open_targets)) or "(none)",
                ),
                ("expected deliveries", self.expected),
                ("delivered", self.delivered),
                ("app-level duplicates", self.duplicate_deliveries),
                ("late drops (expired at receiver)", self.late_drops),
                ("missing", len(self.missing)),
            ]
        )
        if self.reliability is not None:
            rows.extend(
                [
                    ("retries", self.reliability.retries),
                    ("gave up", self.reliability.gave_up),
                ]
            )
        rows.append(("p95 latency", f"{self.latency.p95:.2f}"))
        rows.append(("finished at", f"{self.finished_at:.2f}"))
        return rows


class OverloadChaosSimulation:
    """Packet-level replay of a publish storm behind overload protection.

    Parameters mirror :class:`~repro.faults.verifier.ChaosSimulation`
    plus an :class:`~repro.overload.OverloadConfig` describing the
    protection stack.  ``churn`` optionally schedules subscription
    churn mid-run (the thundering-resubscribe scenario): a sequence of
    ``(time, callable)`` pairs executed on the simulator clock.
    """

    def __init__(
        self,
        broker: PubSubBroker,
        plan: FaultPlan,
        config: Optional[OverloadConfig] = None,
        reliable: bool = True,
        retry: Optional[RetryConfig] = None,
        transmission_time: float = 0.25,
        propagation_scale: float = 1.0,
        hop_retries: int = 4,
        telemetry: Optional[Telemetry] = None,
    ):
        self.broker = broker
        self.plan = plan
        self.config = config or OverloadConfig()
        self.reliable = reliable
        self.simulator = DiscreteEventSimulator()
        self.injector = FaultInjector(plan)
        self.telemetry = or_null(telemetry)
        self.telemetry.bind_clock(lambda: self.simulator.now)
        self.network = PacketNetwork(
            broker.topology,
            self.simulator,
            transmission_time=transmission_time,
            propagation_scale=propagation_scale,
            injector=self.injector,
            hop_retries=hop_retries if reliable else 0,
            telemetry=telemetry,
        )
        self.queue = self.config.build_queue()
        self.bucket = self.config.build_bucket()
        self.monitor = self.config.build_monitor()
        self.breakers = self.config.build_breakers()
        self.ledger = DeliveryLedger()
        #: sequence -> terminal bucket ("delivered" / "shed" / "expired").
        self.outcomes: Dict[int, EventOutcome] = {}
        self.shed_reasons: Dict[str, int] = {}
        self.degraded_events = 0
        self.late_drops = 0
        self._interested: Dict[int, frozenset] = {}
        self._deadlines: Dict[int, Optional[float]] = {}
        self._serving = False
        self.transport: Optional[ReliableTransport] = None
        if reliable:
            self.transport = ReliableTransport(
                self.network,
                config=retry or RetryConfig.for_network(self.network),
                seed=plan.seed + 1,
                detector=self.injector,
                on_deliver=self._on_deliver,
                on_give_up=lambda target, key, reason: (
                    self.ledger.fail_reasons.__setitem__(
                        (key, target), reason
                    )
                ),
                telemetry=telemetry,
                breakers=self.breakers,
            )

    # -- accounting helpers --------------------------------------------------

    def _finish(self, sequence: int, outcome: EventOutcome) -> None:
        """Assign the event its terminal bucket, exactly once."""
        if sequence in self.outcomes:
            raise RuntimeError(
                f"event {sequence} already accounted as "
                f"{self.outcomes[sequence]!r}"
            )
        self.outcomes[sequence] = outcome

    def _shed(self, sequence: int, reason: str) -> None:
        self._finish(sequence, "shed")
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "overload.shed",
                help="events shed at the broker edge, by reason",
                reason=reason,
            ).inc()

    def _expire(self, sequence: int) -> None:
        self._finish(sequence, "expired")
        if self.telemetry.enabled:
            self.telemetry.counter(
                "overload.expired",
                help="events dropped past their deadline inside the broker",
            ).inc()

    def _on_deliver(self, target: int, key: int, time: float) -> None:
        """Application arrival: filter interest + deadline, then record."""
        deadline = self._deadlines.get(key)
        if deadline is not None and time >= deadline:
            self.late_drops += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "overload.late_drops",
                    help="arrivals discarded at the receiver past deadline",
                ).inc()
            return
        if target in self._interested.get(key, ()):
            self.ledger.record(key, target, time)

    # -- the protected pipeline ----------------------------------------------

    def _load_signal(self, now: float) -> float:
        """The monitor's scalar: worst of queue-fill and head latency."""
        fill = self.queue.fill_fraction
        wait = self.queue.head_wait(now)
        return max(fill, wait / self.config.effective_latency_budget)

    def _observe(self, now: float) -> BrokerHealth:
        """Feed the monitor one sample, metering any state change."""
        before = self.monitor.state
        state = self.monitor.observe(now, self._load_signal(now))
        if state is not before and self.telemetry.enabled:
            self.telemetry.counter(
                "overload.health_transitions",
                help="health state entries, by state",
                state=state.value,
            ).inc()
            self.telemetry.event("health-transition", state=state.value)
        return state

    def _ingress(self, sequence: int) -> None:
        """The publisher edge: admission control + bounded queueing."""
        now = self.simulator.now
        config = self.config
        deadline = now + config.ttl if config.ttl is not None else None
        self._deadlines[sequence] = deadline
        state = self._observe(now)
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "overload.queue_depth", help="ingress queue depth"
            ).set(self.queue.depth)
        if state is BrokerHealth.OVERLOADED:
            self._shed(sequence, "overloaded")
            return
        if self.bucket is not None and not self.bucket.try_acquire(now):
            self._shed(sequence, "admission")
            return
        victims = self.queue.offer(sequence, now, deadline)
        for victim in self.queue.expired_in_last_offer():
            self._expire(victim)
        for victim in victims:
            self._shed(
                victim,
                "queue-full"
                if victim == sequence
                else f"evicted ({self.queue.policy})",
            )
            if victim == sequence:
                return
        self._ensure_serving()

    def _ensure_serving(self) -> None:
        if self._serving or self.queue.depth == 0:
            return
        self._serving = True
        self.simulator.schedule(self.config.service_time, self._serve)

    def _serve(self) -> None:
        """Drain one event from the ingress queue and publish it."""
        now = self.simulator.now
        sequence, expired = self.queue.poll(now)
        for victim in expired:
            self._expire(victim)
        if sequence is None:
            self._serving = False
            return
        deadline = self._deadlines.get(sequence)
        if deadline is not None and now >= deadline:
            self._expire(sequence)
        else:
            state = self._observe(now)
            self._publish(sequence, degraded=state is not BrokerHealth.HEALTHY)
        if self.queue.depth > 0:
            self.simulator.schedule(self.config.service_time, self._serve)
        else:
            self._serving = False

    def _publish(self, sequence: int, degraded: bool) -> None:
        """Match (unless degraded), decide, and hand off to the network."""
        broker = self.broker
        telemetry = self.telemetry
        now = self.simulator.now
        event = Event.create(
            sequence,
            int(self._publishers[sequence]),
            self._points[sequence],
            deadline=self._deadlines.get(sequence),
        )
        instrumented = telemetry.enabled
        root = match_span = None
        match_started = 0.0
        if instrumented:
            telemetry.counter("broker.events").inc()
            root = telemetry.start_span(
                "event",
                trace_id=sequence,
                publisher=event.publisher,
                degraded=degraded,
            )
            if not degraded:
                # Degraded mode skips the match as *broker work*; the
                # exact set below is verifier ground truth only, so
                # its cost must not pollute the latency histogram.
                match_span = telemetry.start_span("match", parent=root)
                match_started = perf_counter()
        # Ground truth for the delivery ledger (and the receivers'
        # local subscription filter) is always the exact interested
        # set; in degraded mode the *broker's decision* ignores it.
        match = broker.engine.match(event)
        q = broker.partition.locate(event.point)
        if match_span is not None:
            telemetry.histogram(
                "broker.match_latency_us",
                help="wall time of one match+locate, microseconds",
            ).observe((perf_counter() - match_started) * 1e6)
            match_span.set_attribute(
                "subscribers", match.num_subscribers
            ).finish()
        recipients = [
            node for node in match.subscribers if node != event.publisher
        ]
        self._interested[sequence] = frozenset(recipients)
        self._finish(sequence, "delivered")

        if degraded and q > 0:
            # The paper's S_q fallback: flood the precomputed group,
            # skip the threshold rule entirely.
            self.degraded_events += 1
            members = broker.partition.group(q).members
            targets = [n for n in members if n != event.publisher]
            self.ledger.expect(sequence, recipients, now)
            if instrumented:
                telemetry.counter(
                    "broker.degraded_events",
                    help="events delivered by group flood (match skipped)",
                ).inc()
            if targets:
                # The broker does not know who is interested, so the
                # whole group enters the reliable protocol; receivers
                # run the subscription filter at the application layer.
                self._dispatch_multicast(
                    sequence, event, members, targets, root, restrict=None
                )
            if instrumented:
                root.set_attribute("method", "degraded-multicast").finish()
            return

        group_size = broker.partition.group(q).size if q > 0 else 0
        decision = broker.policy.decide(
            interested=match.num_subscribers,
            group_size=group_size,
            group=q,
        )
        record_decision(telemetry, decision)
        if decision.method is DeliveryMethod.NOT_SENT:
            if instrumented:
                root.set_attribute("method", "not_sent").finish()
            return
        self.ledger.expect(sequence, recipients, now)
        if not recipients:
            if instrumented:
                root.set_attribute("method", "self_only").finish()
            return
        if decision.method is DeliveryMethod.UNICAST:
            if self.transport is not None:
                self.transport.publish(
                    sequence, event.publisher, recipients, parent_span=root
                )
            else:
                for node in recipients:
                    self.network.send_unicast(
                        event.publisher,
                        node,
                        lambda n, t, s=sequence: self._on_deliver(n, s, t),
                    )
            if instrumented:
                root.set_attribute("method", "unicast").finish()
            return
        members = broker.partition.group(q).members
        self._dispatch_multicast(
            sequence,
            event,
            members,
            recipients,
            root,
            restrict=self._interested[sequence],
        )
        if instrumented:
            root.set_attribute("method", "multicast").finish()

    def _dispatch_multicast(
        self,
        sequence: int,
        event: Event,
        members: Sequence[int],
        targets: List[int],
        root,
        restrict: Optional[FrozenSet[int]],
    ) -> None:
        """One tree flood to ``members``, reliably tracking ``targets``.

        ``restrict`` keeps non-interested group members out of the
        reliable protocol (the healthy-mode behaviour); ``None`` lets
        every member ack — degraded mode, where the broker cannot
        tell who is interested.
        """
        via = None
        if self.broker.costs.multicast_mode == "sparse":
            via = self.broker.costs.rendezvous_point(members)
        if self.transport is not None:
            def first_pass(receive, m=members, v=via, allow=restrict):
                self.network.send_multicast(
                    event.publisher,
                    m,
                    receive
                    if allow is None
                    else (
                        lambda node, time: (
                            receive(node, time) if node in allow else None
                        )
                    ),
                    via=v,
                )

            self.transport.publish(
                sequence,
                event.publisher,
                targets,
                first_pass,
                parent_span=root,
            )
        else:
            self.network.send_multicast(
                event.publisher,
                members,
                lambda node, time, s=sequence: self._on_deliver(node, s, time),
                via=via,
            )

    # -- the run -------------------------------------------------------------

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        arrival_times: Sequence[float],
        churn: Sequence[Tuple[float, Callable[[], None]]] = (),
    ) -> OverloadReport:
        """Replay the storm and report what the protection stack did."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] != len(publishers):
            raise ValueError(
                "points must be (m, N) with one publisher per row"
            )
        if len(arrival_times) != len(points):
            raise ValueError("one arrival time per event required")
        self._points = points
        self._publishers = [int(p) for p in publishers]
        for sequence, time in enumerate(arrival_times):
            self.simulator.schedule_at(
                float(time), lambda s=sequence: self._ingress(s)
            )
        for time, action in churn:
            self.simulator.schedule_at(float(time), action)
        finished_at = self.simulator.run()

        # Anything still queued at simulation end was never served:
        # account it so the ledger closes.
        while True:
            sequence, expired = self.queue.poll(finished_at)
            for victim in expired:
                self._expire(victim)
            if sequence is None:
                break
            self._shed(sequence, "unserved at simulation end")

        counts = {"delivered": 0, "shed": 0, "expired": 0}
        for outcome in self.outcomes.values():
            counts[outcome] += 1
        default_reason = (
            "unacknowledged at simulation end"
            if self.reliable
            else "lost (no retransmission)"
        )
        return OverloadReport(
            published=len(points),
            delivered_events=counts["delivered"],
            shed_events=counts["shed"],
            expired_events=counts["expired"],
            shed_reasons=dict(sorted(self.shed_reasons.items())),
            degraded_events=self.degraded_events,
            peak_queue_depth=self.queue.stats.peak_depth,
            queue_capacity=self.queue.capacity,
            health_transitions=[
                (time, state.value) for time, state in self.monitor.transitions
            ],
            health_samples={
                state.value: count
                for state, count in self.monitor.samples.items()
            },
            admission_rejected=(
                self.bucket.stats.rejected if self.bucket is not None else 0
            ),
            breaker_opens=self.breakers.stats.opens,
            breaker_closes=self.breakers.stats.closes,
            short_circuited=self.breakers.stats.short_circuits,
            open_targets=self.breakers.open_targets(),
            expected=self.ledger.expected_total,
            delivered=self.ledger.delivered_distinct,
            duplicate_deliveries=self.ledger.duplicate_deliveries,
            late_drops=self.late_drops,
            missing=self.ledger.missing(default_reason),
            latency=LatencyStats.from_samples(self.ledger.latencies),
            finished_at=finished_at,
            fault_stats=self.injector.stats,
            reliability=(
                self.transport.stats if self.transport is not None else None
            ),
        )
