"""Crash recovery under chaos: the durability stack, verified end to end.

:class:`CrashRecoverySimulation` extends the chaos harness with one
*home* broker — the node running the matching/routing service — whose
durable state lives in a :class:`~repro.durability.wal.WriteAheadLog`
and a :class:`~repro.durability.snapshot.SnapshotStore` via a
:class:`~repro.durability.journal.BrokerJournal`.  The harness models
a logically centralized broker service: subscription churn, publish
intents and delivery completions are journaled service-side, and the
home node's :class:`~repro.faults.plan.BrokerCrash` windows crash the
*service*:

- at window **start** the service loses its volatile state — every
  in-flight delivery is wiped from the reliable transport (no
  give-ups fire; the sender simply ceased to exist) and any
  :class:`~repro.faults.plan.WalCorruption` riding on the crash
  damages the log, modelling a torn final write or media rot;
- while **down**, arriving events cannot be matched or routed; they
  are deferred at the edge (and the fault injector keeps dropping
  traffic through the dead node, as before);
- at window **end** the service restarts *from storage*:
  :func:`~repro.durability.recovery.recover` loads the newest valid
  snapshot, truncates the damaged WAL tail, replays the rest;
  :func:`~repro.durability.recovery.restore_broker` rebuilds the
  S-tree and the partition; unacked in-flight deliveries are re-handed
  to the transport (receiver dedup makes redelivery exactly-once);
  deferred events are then published.

The :class:`~repro.faults.verifier.DeliveryLedger` closes the loop: a
clean (uncorrupted) run must come out **exactly-once** across every
crash/restart, and a corrupted run must recover deterministically —
truncating at the last CRC-valid record, never raising, never
delivering anything twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..durability.journal import BrokerJournal
from ..durability.recovery import recover, restore_broker
from ..durability.snapshot import MemorySnapshotStore, SnapshotStore
from ..durability.wal import MemoryWAL, WriteAheadLog
from ..telemetry.base import Telemetry
from .plan import BrokerCrash, FaultPlan, WalCorruption
from .reliable import RetryConfig
from .verifier import ChaosReport, ChaosSimulation

__all__ = [
    "DurabilityStats",
    "CrashRecoveryReport",
    "CrashRecoverySimulation",
    "build_crash_recovery_plan",
]


@dataclass
class DurabilityStats:
    """What the durability stack did during one crash-recovery run."""

    recoveries: int = 0
    wal_appends: int = 0
    checkpoints: int = 0
    replayed_records: int = 0
    truncated_bytes: int = 0
    wiped_inflight: int = 0
    #: (event, target) deliveries re-handed to the transport on restart.
    redelivered: int = 0
    #: Events that arrived while the service was down.
    deferred_events: int = 0
    #: One entry per corruption the fault plan actually applied.
    corruptions: List[str] = field(default_factory=list)
    #: Per-recovery state digests — the determinism witnesses.
    recovery_digests: List[str] = field(default_factory=list)


@dataclass
class CrashRecoveryReport(ChaosReport):
    """A chaos report plus the durability ledger of the run."""

    durability: DurabilityStats = field(default_factory=DurabilityStats)

    def summary_rows(self) -> List[Tuple[str, object]]:
        rows = super().summary_rows()
        d = self.durability
        rows.extend(
            [
                ("recoveries", d.recoveries),
                ("wal appends", d.wal_appends),
                ("checkpoints", d.checkpoints),
                ("records replayed", d.replayed_records),
                ("wal bytes truncated", d.truncated_bytes),
                ("wal corruptions applied", len(d.corruptions)),
                ("in-flight wiped by crash", d.wiped_inflight),
                ("redelivered after recovery", d.redelivered),
                ("events deferred while down", d.deferred_events),
            ]
        )
        return rows


class CrashRecoverySimulation(ChaosSimulation):
    """A chaos run whose home broker survives crashes via the WAL.

    ``broker`` must be churn-capable (a :class:`~repro.core.dynamic.
    DynamicPubSubBroker`): recovery rebuilds its engine through the
    same dynamic machinery.  ``home`` defaults to the node of the
    plan's first crash window; every crash window on that node drives
    one crash/recover cycle (windows on other nodes behave as in the
    plain chaos harness — dead routers, no durability semantics).
    """

    def __init__(
        self,
        broker,
        plan: FaultPlan,
        home: Optional[int] = None,
        wal: Optional[WriteAheadLog] = None,
        snapshots: Optional[SnapshotStore] = None,
        checkpoint_every: int = 64,
        retry: Optional[RetryConfig] = None,
        transmission_time: float = 0.25,
        propagation_scale: float = 1.0,
        hop_retries: int = 4,
        telemetry: Optional[Telemetry] = None,
    ):
        if not hasattr(broker, "attach_journal"):
            raise TypeError(
                "CrashRecoverySimulation needs a churn-capable broker "
                "(DynamicPubSubBroker); got "
                f"{type(broker).__name__}"
            )
        super().__init__(
            broker,
            plan,
            reliable=True,
            retry=retry,
            transmission_time=transmission_time,
            propagation_scale=propagation_scale,
            hop_retries=hop_retries,
            telemetry=telemetry,
        )
        if home is None:
            if not plan.crashes:
                raise ValueError(
                    "no crash windows in the plan and no home broker "
                    "given; nothing to recover"
                )
            home = plan.crashes[0].node
        self.home = int(home)
        self.wal = wal if wal is not None else MemoryWAL(
            clock=lambda: self.simulator.now
        )
        self.snapshots = (
            snapshots if snapshots is not None else MemorySnapshotStore()
        )
        self.journal = BrokerJournal(
            broker,
            self.wal,
            self.snapshots,
            checkpoint_every=checkpoint_every,
            telemetry=telemetry,
        )
        broker.attach_journal(self.journal)
        self.transport.on_ack = self._delivery_acked
        self.windows: List[BrokerCrash] = sorted(
            (c for c in plan.crashes if int(c.node) == self.home),
            key=lambda c: c.start,
        )
        self.dstats = DurabilityStats()
        self._down = False
        self._deferred: List[Tuple[int, np.ndarray, Sequence[int], Dict]] = []
        # Bootstrap checkpoint: the preprocessed state (table, groups,
        # partition) becomes snapshot 0, so even a crash before any
        # journaled traffic recovers the full subscription set.
        self.journal.checkpoint()

    # -- hook overrides ------------------------------------------------------

    def _arm(self, arrival_times: Sequence[float]) -> None:
        # Scheduled before the workload, so at equal times the crash /
        # recovery callbacks run first (half-open windows: an event at
        # t == start finds the service down, one at t == end finds it
        # freshly recovered).
        for index, window in enumerate(self.windows):
            self.simulator.schedule_at(
                float(window.start), lambda i=index: self._crash(i)
            )
            self.simulator.schedule_at(
                float(window.end), lambda i=index: self._recover(i)
            )

    def _record_intent(
        self,
        sequence: int,
        publisher: int,
        recipients: Sequence[int],
        method: str,
        group: int,
    ) -> None:
        self.journal.log_publish(
            sequence, publisher, recipients, method=method, group=group
        )

    def _publish_event(
        self,
        sequence: int,
        points: np.ndarray,
        publishers: Sequence[int],
        counters: Dict[str, int],
    ) -> None:
        if self._down:
            self._deferred.append((sequence, points, publishers, counters))
            self.dstats.deferred_events += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "broker.deferred",
                    help="events deferred while the home broker was down",
                ).inc()
            return
        super()._publish_event(sequence, points, publishers, counters)

    # -- durability plumbing -------------------------------------------------

    def _delivery_acked(self, target: int, key: int, time: float) -> None:
        # The sender-side ack is the durable completion: journal it so
        # recovery stops redelivering this (event, target).
        self.journal.log_delivery(key, target)

    def _crash(self, index: int) -> None:
        self._down = True
        wiped = self.transport.wipe_pending()
        self.dstats.wiped_inflight += len(wiped)
        for corruption in self.plan.wal_corruptions:
            if corruption.crash_index == index and corruption.apply(
                self.wal
            ):
                self.dstats.corruptions.append(
                    f"crash {index}: {corruption.kind}"
                )
        if self.telemetry.enabled:
            self.telemetry.event(
                "broker-crash", node=self.home, wiped=len(wiped)
            )

    def _recover(self, index: int) -> None:
        state = recover(self.wal, self.snapshots, telemetry=self.telemetry)
        restore_broker(self.broker, state)
        self.journal.rearm(state)
        self._down = False
        self.dstats.recoveries += 1
        self.dstats.replayed_records += state.replayed
        self.dstats.truncated_bytes += state.truncated_bytes
        self.dstats.recovery_digests.append(state.digest())
        # Unacked in-flight deliveries go back to the transport as
        # per-target unicasts.  Targets that received the data before
        # the crash (ack lost) dedup at the application layer and
        # re-ack, so the exactly-once ledger holds across the restart.
        for entry in state.inflight.values():
            if entry.targets:
                self.transport.publish(
                    entry.sequence, entry.publisher, list(entry.targets)
                )
                self.dstats.redelivered += len(entry.targets)
        deferred, self._deferred = self._deferred, []
        for sequence, points, publishers, counters in deferred:
            self._publish_event(sequence, points, publishers, counters)

    # -- reporting -----------------------------------------------------------

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        inter_arrival: float = 1.0,
        arrival_times: Optional[Sequence[float]] = None,
    ) -> CrashRecoveryReport:
        base = super().run(
            points, publishers, inter_arrival, arrival_times
        )
        self.dstats.wal_appends = self.wal.appends
        self.dstats.checkpoints = self.journal.checkpoints
        return CrashRecoveryReport(**vars(base), durability=self.dstats)


def build_crash_recovery_plan(
    topology,
    seed: int = 2003,
    loss: float = 0.05,
    duplicate: float = 0.0,
    delay: float = 0.0,
    crashes: int = 2,
    crash_length: float = 100.0,
    horizon: float = 500.0,
    corrupt: Optional[str] = None,
    corrupt_tail_bytes: int = 5,
) -> Tuple[FaultPlan, int]:
    """A plan whose crash windows all hit one deterministic home broker.

    The home is a transit node drawn from ``seed``; ``crashes``
    windows of ``crash_length`` are spread evenly across ``horizon``.
    ``corrupt`` (``"torn-tail"`` or ``"bit-flip"``) attaches a
    :class:`~repro.faults.plan.WalCorruption` to every crash, so each
    restart must also repair the log.  Returns ``(plan, home)``.
    """
    if crashes < 1:
        raise ValueError(f"crashes must be >= 1 (got {crashes})")
    span = horizon / (crashes + 1)
    if crash_length >= span:
        raise ValueError(
            f"crash_length {crash_length} leaves no up-time between "
            f"windows spaced {span:.1f} apart; shorten the crashes or "
            "stretch the horizon"
        )
    rng = np.random.default_rng(seed + 41)
    transit = topology.all_transit_nodes()
    home = int(transit[int(rng.integers(len(transit)))])
    windows = tuple(
        BrokerCrash(
            node=home,
            start=float(span * (index + 1)),
            end=float(span * (index + 1) + crash_length),
        )
        for index in range(crashes)
    )
    corruptions: Tuple[WalCorruption, ...] = ()
    if corrupt is not None:
        corruptions = tuple(
            WalCorruption(
                crash_index=index,
                kind=corrupt,
                tail_bytes=corrupt_tail_bytes,
            )
            for index in range(crashes)
        )
    plan = FaultPlan(
        seed=seed,
        default_loss=loss,
        default_duplicate=duplicate,
        default_delay=delay,
        crashes=windows,
        wal_corruptions=corruptions,
    )
    return plan, home
