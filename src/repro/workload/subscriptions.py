"""Subscription workload generation (paper Section 5).

Generated subscriptions take the form ``{bst, name, quote, volume}``:

- ``bst`` selects B / S / T with probabilities 0.4 / 0.4 / 0.2;
- the ``name`` interval's center is normal around a per-transit-block
  anchor (3, 10 and 17 for the three blocks) with standard deviation 4,
  and its length follows a Zipf-like distribution;
- the ``quote`` (price) and ``volume`` intervals follow the paper's
  four-branch parametric distribution::

      *                    with probability q0            (wildcard)
      [n, +inf),  n~N(mu1, sigma1)   with probability q1
      (-inf, n],  n~N(mu2, sigma2)   with probability q2
      [n1, n2]    otherwise: center ~ N(mu3, sigma3),
                  length ~ Pareto(c, alpha)

  with the parameter table::

              q0    q1   q2   mu1,s1  mu2,s2  mu3,s3  c,alpha
      price   0.15  0.1  0.1  9, 1    9, 1    9, 2    4, 1
      volume  0.35  0.1  0.1  9, 1    9, 1    9, 2    4, 1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.interval import FULL_LINE, Interval
from ..geometry.rectangle import Rectangle
from ..network.topology import Topology
from .pareto import ParetoSampler
from .placement import DEFAULT_BLOCK_SHARES, SubscriberPlacement
from .schema import BST_PROBABILITIES, bst_interval
from .zipf import ZipfSampler

__all__ = [
    "IntervalDistributionParams",
    "PRICE_PARAMS",
    "VOLUME_PARAMS",
    "NameFieldParams",
    "PlacedSubscription",
    "StockSubscriptionGenerator",
]


@dataclass(frozen=True)
class IntervalDistributionParams:
    """Parameters of the paper's four-branch interval distribution."""

    q0: float  # wildcard probability
    q1: float  # lower-bounded-ray probability
    q2: float  # upper-bounded-ray probability
    mu1: float
    sigma1: float
    mu2: float
    sigma2: float
    mu3: float
    sigma3: float
    pareto_c: float
    pareto_alpha: float

    def __post_init__(self) -> None:
        for name in ("q0", "q1", "q2"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.q0 + self.q1 + self.q2 > 1.0 + 1e-12:
            raise ValueError("q0 + q1 + q2 must not exceed 1")
        if self.sigma1 <= 0 or self.sigma2 <= 0 or self.sigma3 <= 0:
            raise ValueError("standard deviations must be positive")

    @property
    def bounded_probability(self) -> float:
        """Probability of the bounded ``[n1, n2]`` branch."""
        return 1.0 - self.q0 - self.q1 - self.q2


#: Paper parameter table, "price" row.
PRICE_PARAMS = IntervalDistributionParams(
    q0=0.15, q1=0.1, q2=0.1,
    mu1=9.0, sigma1=1.0,
    mu2=9.0, sigma2=1.0,
    mu3=9.0, sigma3=2.0,
    pareto_c=4.0, pareto_alpha=1.0,
)

#: Paper parameter table, "volume" row.
VOLUME_PARAMS = IntervalDistributionParams(
    q0=0.35, q1=0.1, q2=0.1,
    mu1=9.0, sigma1=1.0,
    mu2=9.0, sigma2=1.0,
    mu3=9.0, sigma3=2.0,
    pareto_c=4.0, pareto_alpha=1.0,
)


@dataclass(frozen=True)
class NameFieldParams:
    """Distribution of the ``name`` interval.

    ``block_centers`` anchor interest per transit block ("mean centered
    around the points specific to transit block number (3, 10 and
    17)"); blocks beyond the list reuse the last anchor.
    """

    block_centers: tuple[float, ...] = (3.0, 10.0, 17.0)
    center_sigma: float = 4.0
    max_length: int = 8
    length_theta: float = 1.0

    def center_for_block(self, block: int) -> float:
        if block < len(self.block_centers):
            return self.block_centers[block]
        return self.block_centers[-1]


@dataclass(frozen=True)
class PlacedSubscription:
    """One generated subscription, bound to its subscriber node."""

    subscription_id: int
    node: int
    block: int
    stub: int
    rectangle: Rectangle

    @property
    def subscriber(self) -> int:
        """Alias: the subscriber is identified by its network node."""
        return self.node


class StockSubscriptionGenerator:
    """Generates placed stock subscriptions per the paper's recipe."""

    def __init__(
        self,
        topology: Topology,
        price_params: IntervalDistributionParams = PRICE_PARAMS,
        volume_params: IntervalDistributionParams = VOLUME_PARAMS,
        name_params: NameFieldParams = NameFieldParams(),
        block_shares: Sequence[float] = DEFAULT_BLOCK_SHARES,
        pareto_cap: Optional[float] = 100.0,
        seed: Optional[int] = None,
    ):
        self._rng = np.random.default_rng(seed)
        self.topology = topology
        self.price_params = price_params
        self.volume_params = volume_params
        self.name_params = name_params
        self.placement = SubscriberPlacement(
            topology, block_shares=block_shares, rng=self._rng
        )
        self._price_length = ParetoSampler(
            price_params.pareto_c,
            price_params.pareto_alpha,
            cap=pareto_cap,
            rng=self._rng,
        )
        self._volume_length = ParetoSampler(
            volume_params.pareto_c,
            volume_params.pareto_alpha,
            cap=pareto_cap,
            rng=self._rng,
        )
        self._name_length = ZipfSampler(
            name_params.max_length, name_params.length_theta, self._rng
        )
        self._bst_symbols = sorted(BST_PROBABILITIES)
        self._bst_probs = np.asarray(
            [BST_PROBABILITIES[s] for s in self._bst_symbols]
        )

    # -- per-field draws -----------------------------------------------------

    def _draw_bst(self) -> Interval:
        symbol = self._bst_symbols[
            int(self._rng.choice(len(self._bst_symbols), p=self._bst_probs))
        ]
        return bst_interval(symbol)

    def _draw_name(self, block: int) -> Interval:
        center = self._rng.normal(
            self.name_params.center_for_block(block),
            self.name_params.center_sigma,
        )
        # Zipf ranks are zero-based; length ranks 1..max_length.
        length = float(self._name_length.sample()) + 1.0
        return Interval(center - length / 2.0, center + length / 2.0)

    def _draw_parametric(
        self, params: IntervalDistributionParams, length_sampler: ParetoSampler
    ) -> Interval:
        u = self._rng.random()
        if u < params.q0:
            return FULL_LINE
        if u < params.q0 + params.q1:
            n = self._rng.normal(params.mu1, params.sigma1)
            return Interval(n, np.inf)
        if u < params.q0 + params.q1 + params.q2:
            n = self._rng.normal(params.mu2, params.sigma2)
            return Interval(-np.inf, n)
        center = self._rng.normal(params.mu3, params.sigma3)
        length = float(length_sampler.sample())
        return Interval(center - length / 2.0, center + length / 2.0)

    # -- public API ------------------------------------------------------------

    def generate_one(self, subscription_id: int) -> PlacedSubscription:
        """Generate and place a single subscription."""
        block, stub, node = self.placement.place_one()
        rectangle = Rectangle.from_intervals(
            [
                self._draw_bst(),
                self._draw_name(block),
                self._draw_parametric(self.price_params, self._price_length),
                self._draw_parametric(self.volume_params, self._volume_length),
            ]
        )
        return PlacedSubscription(
            subscription_id=subscription_id,
            node=node,
            block=block,
            stub=stub,
            rectangle=rectangle,
        )

    def generate(self, count: int) -> List[PlacedSubscription]:
        """Generate ``count`` placed subscriptions (paper uses 1000)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate_one(i) for i in range(count)]
