"""Publication (event) workload generation (paper Section 5).

Publications are points in the 4-dimensional stock space, drawn from
mixtures of multivariate normal distributions; the mixture's peaks are
"hot spots where events are published more frequently".  The paper
studies one-, four- and nine-mode scenarios built from *independent*
per-dimension mixtures:

- **1 mode**: ``N(1,1), N(10,6), N(9,2), N(9,6)`` in the four dims.
- **4 modes** (2x2): dims 1 and 4 keep ``N(1,1)`` and ``N(9,6)``;
  dim 2 is ``N(12,3)`` or ``N(6,2)`` with probability 0.5 each; dim 3
  is ``N(4,2)`` or ``N(16,2)`` with probability 0.5 each.
- **9 modes** (3x3): dims 1 and 4 unchanged; the two middle dimensions
  become 3-component mixtures — ``0.3 N(4,3) + 0.4 N(11,3) +
  0.3 N(18,3)`` and ``0.3 N(4,3) + 0.4 N(9,3) + 0.3 N(16,3)``.

  (The paper's text here contains an evident typo: it describes
  3-component mixtures for "the third dimension" and "the fourth
  dimension" immediately after stating dims 1 and 4 are unchanged.
  Since the 4-mode case varies dims 2 and 3 and the mode count is a
  2-dimensional product — 2x2 = 4, 3x3 = 9 — we place the 3-component
  mixtures on dims 2 and 3.)

Because the per-dimension mixtures are independent, the probability a
publication lands in an axis-aligned cell factorizes into per-dimension
CDF differences — exactly the publication-density function ``p_p(.)``
the clustering framework needs (Appendix A.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import norm

__all__ = [
    "GaussianMixture1D",
    "ProductMixtureDistribution",
    "single_mode_distribution",
    "four_mode_distribution",
    "nine_mode_distribution",
    "publication_distribution",
    "PublicationGenerator",
]


@dataclass(frozen=True)
class GaussianMixture1D:
    """A one-dimensional Gaussian mixture ``sum_i w_i N(mu_i, sigma_i)``."""

    weights: Tuple[float, ...]
    means: Tuple[float, ...]
    sigmas: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not (len(self.weights) == len(self.means) == len(self.sigmas)):
            raise ValueError("weights, means and sigmas must align")
        if not self.weights:
            raise ValueError("mixture needs at least one component")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {sum(self.weights)}")
        if any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative")
        if any(s <= 0 for s in self.sigmas):
            raise ValueError("sigmas must be positive")

    @classmethod
    def single(cls, mean: float, sigma: float) -> GaussianMixture1D:
        return cls((1.0,), (mean,), (sigma,))

    @property
    def num_components(self) -> int:
        return len(self.weights)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` samples."""
        components = rng.choice(
            self.num_components, size=size, p=self.weights
        )
        means = np.asarray(self.means)[components]
        sigmas = np.asarray(self.sigmas)[components]
        return rng.normal(means, sigmas)

    def cdf(self, x: float) -> float:
        """Mixture CDF at ``x`` (handles ±inf)."""
        if np.isposinf(x):
            return 1.0
        if np.isneginf(x):
            return 0.0
        return float(
            sum(
                w * norm.cdf(x, loc=m, scale=s)
                for w, m, s in zip(self.weights, self.means, self.sigmas)
            )
        )

    def pdf(self, x: float) -> float:
        """Mixture density at ``x``."""
        return float(
            sum(
                w * norm.pdf(x, loc=m, scale=s)
                for w, m, s in zip(self.weights, self.means, self.sigmas)
            )
        )

    def interval_probability(self, lo: float, hi: float) -> float:
        """``P(lo < X <= hi)``."""
        if hi <= lo:
            return 0.0
        return max(0.0, self.cdf(hi) - self.cdf(lo))

    def cdf_array(self, x: np.ndarray) -> np.ndarray:
        """Vectorized mixture CDF (±inf handled)."""
        x = np.asarray(x, dtype=np.float64)
        result = np.zeros_like(x)
        finite = np.isfinite(x)
        for w, m, s in zip(self.weights, self.means, self.sigmas):
            result[finite] += w * norm.cdf(x[finite], loc=m, scale=s)
        result[np.isposinf(x)] = 1.0
        return result


@dataclass(frozen=True)
class ProductMixtureDistribution:
    """Independent per-dimension mixtures: the paper's event density.

    The number of *modes* of the joint density is the product of the
    per-dimension component counts.
    """

    dimensions: Tuple[GaussianMixture1D, ...]

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ValueError("need at least one dimension")

    @property
    def ndim(self) -> int:
        return len(self.dimensions)

    @property
    def num_modes(self) -> int:
        modes = 1
        for mixture in self.dimensions:
            modes *= mixture.num_components
        return modes

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw a ``(size, ndim)`` array of event points."""
        columns = [m.sample(rng, size) for m in self.dimensions]
        return np.column_stack(columns)

    def cell_probability(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> float:
        """Probability mass of the half-open box ``(lows, highs]``.

        This is the publication-density integral ``p_p(g)`` used by the
        expected-waste distance (Appendix A.2); independence makes it a
        product of per-dimension CDF differences.
        """
        if len(lows) != self.ndim or len(highs) != self.ndim:
            raise ValueError("bounds must have one value per dimension")
        mass = 1.0
        for mixture, lo, hi in zip(self.dimensions, lows, highs):
            mass *= mixture.interval_probability(float(lo), float(hi))
            if mass == 0.0:
                return 0.0
        return mass

    def pdf(self, point: Sequence[float]) -> float:
        """Joint density at a point."""
        if len(point) != self.ndim:
            raise ValueError("point must have one value per dimension")
        density = 1.0
        for mixture, x in zip(self.dimensions, point):
            density *= mixture.pdf(float(x))
        return density

    def per_dimension_masses(
        self, edges: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Per-dimension interval masses over grid edge arrays.

        ``edges[d]`` holds the ``C+1`` cell boundaries of dimension
        ``d``; the returned arrays hold the ``C`` interval masses.
        Because the joint density is a product over dimensions, a grid
        cell's probability is the product of its per-dimension masses —
        the fast path :class:`repro.clustering.grid.EventGrid` uses.
        """
        if len(edges) != self.ndim:
            raise ValueError("one edge array per dimension required")
        return [
            np.clip(np.diff(mixture.cdf_array(np.asarray(e))), 0.0, None)
            for mixture, e in zip(self.dimensions, edges)
        ]


def single_mode_distribution() -> ProductMixtureDistribution:
    """The paper's 1-mode scenario: N(1,1), N(10,6), N(9,2), N(9,6)."""
    return ProductMixtureDistribution(
        (
            GaussianMixture1D.single(1.0, 1.0),
            GaussianMixture1D.single(10.0, 6.0),
            GaussianMixture1D.single(9.0, 2.0),
            GaussianMixture1D.single(9.0, 6.0),
        )
    )


def four_mode_distribution() -> ProductMixtureDistribution:
    """The paper's 4-mode (2x2) scenario."""
    return ProductMixtureDistribution(
        (
            GaussianMixture1D.single(1.0, 1.0),
            GaussianMixture1D((0.5, 0.5), (12.0, 6.0), (3.0, 2.0)),
            GaussianMixture1D((0.5, 0.5), (4.0, 16.0), (2.0, 2.0)),
            GaussianMixture1D.single(9.0, 6.0),
        )
    )


def nine_mode_distribution() -> ProductMixtureDistribution:
    """The paper's 9-mode (3x3) scenario (typo resolved; see module doc)."""
    return ProductMixtureDistribution(
        (
            GaussianMixture1D.single(1.0, 1.0),
            GaussianMixture1D(
                (0.3, 0.4, 0.3), (4.0, 11.0, 18.0), (3.0, 3.0, 3.0)
            ),
            GaussianMixture1D(
                (0.3, 0.4, 0.3), (4.0, 9.0, 16.0), (3.0, 3.0, 3.0)
            ),
            GaussianMixture1D.single(9.0, 6.0),
        )
    )


def publication_distribution(modes: int) -> ProductMixtureDistribution:
    """Look up one of the paper's three scenarios by mode count."""
    factories = {
        1: single_mode_distribution,
        4: four_mode_distribution,
        9: nine_mode_distribution,
    }
    try:
        return factories[modes]()
    except KeyError:
        raise ValueError(
            f"the paper studies 1, 4 and 9 modes; got {modes}"
        ) from None


class PublicationGenerator:
    """Draws publication events and assigns publisher nodes.

    The paper does not pin publishers to specific nodes; by default
    each event is published from a uniformly random stub node of the
    topology (pass ``publisher_nodes`` to restrict this, e.g. to model
    a small dedicated publisher set ``V_P``).
    """

    def __init__(
        self,
        distribution: ProductMixtureDistribution,
        publisher_nodes: Sequence[int],
        seed: Optional[int] = None,
    ):
        if len(publisher_nodes) == 0:
            raise ValueError("need at least one publisher node")
        self.distribution = distribution
        self.publisher_nodes = [int(n) for n in publisher_nodes]
        self._rng = np.random.default_rng(seed)

    def generate(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(points, publishers)``.

        ``points`` is a ``(count, N)`` float array of events;
        ``publishers`` the corresponding ``(count,)`` node ids.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        points = self.distribution.sample(self._rng, count)
        publishers = self._rng.choice(self.publisher_nodes, size=count)
        return points, publishers.astype(np.int64)
