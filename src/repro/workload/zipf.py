"""Zipf-like distributions over finite ranked sets.

The paper leans on Zipf-like laws in three places (all Section 5):
subscription counts across the stubs of a transit block, subscription
counts across the nodes of a stub, and the empirical popularity of
stocks in the NYSE data study (Figure 4(b), citing Knuth [9]).

A *Zipf-like* distribution over ranks ``1..n`` assigns
``P(rank = i) ∝ 1 / i**theta``; the classic Zipf law is ``theta = 1``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["zipf_weights", "ZipfSampler"]


def zipf_weights(n: int, theta: float = 1.0) -> np.ndarray:
    """Normalized Zipf-like probabilities for ranks ``1..n``."""
    if n < 1:
        raise ValueError("n must be positive")
    if theta < 0:
        raise ValueError("theta must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-theta)
    return weights / weights.sum()


class ZipfSampler:
    """Draws ranks ``0..n-1`` with Zipf-like probabilities.

    Ranks are returned zero-based so they can index Python sequences
    directly; rank 0 is the most popular.
    """

    def __init__(
        self,
        n: int,
        theta: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ):
        self.n = n
        self.theta = theta
        self.probabilities = zipf_weights(n, theta)
        # No ambient entropy: without an explicit generator the sampler
        # is seeded (deterministically) rather than drawn from the OS.
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def sample(self, size: Optional[int] = None):
        """One rank (``size=None``) or an array of ranks."""
        return self._rng.choice(self.n, size=size, p=self.probabilities)

    def sample_shuffled(
        self, items: Sequence, size: int
    ) -> list:
        """Draw ``size`` items Zipf-weighted by their position.

        Convenience for "popularity follows a Zipf-like distribution":
        ``items[0]`` is the most popular.
        """
        ranks = self.sample(size)
        if len(items) != self.n:
            raise ValueError(
                f"items has {len(items)} entries but sampler covers {self.n}"
            )
        return [items[int(r)] for r in np.atleast_1d(ranks)]

    def expected_counts(self, total: int) -> np.ndarray:
        """Expected number of draws per rank out of ``total`` draws."""
        return self.probabilities * total
