"""Placement of subscriptions onto network nodes.

Section 5 of the paper distributes 1000 subscriptions over the 600-node
topology in three stages:

1. a fixed ``{40%, 30%, 30%}`` split across the three transit blocks,
2. within each block, a Zipf-like distribution across its stubs,
3. within each stub, another (common) Zipf-like distribution across
   the stub's nodes.

This module reproduces that exact scheme for arbitrary transit-stub
topologies (blocks beyond the configured shares, if any, get weight 0).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..network.topology import Topology
from .zipf import ZipfSampler

__all__ = ["SubscriberPlacement", "DEFAULT_BLOCK_SHARES"]

#: Paper Section 5: "{40%, 30%, 30%} breakdown for the three transit blocks".
DEFAULT_BLOCK_SHARES = (0.4, 0.3, 0.3)


class SubscriberPlacement:
    """Assigns each new subscription to a stub node of the topology."""

    def __init__(
        self,
        topology: Topology,
        block_shares: Sequence[float] = DEFAULT_BLOCK_SHARES,
        zipf_theta: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ):
        self.topology = topology
        # No ambient entropy: without an explicit generator the sampler
        # is seeded (deterministically) rather than drawn from the OS.
        self._rng = rng if rng is not None else np.random.default_rng(seed)

        shares = np.asarray(block_shares, dtype=np.float64)
        if np.any(shares < 0) or shares.sum() <= 0:
            raise ValueError("block shares must be non-negative, not all zero")
        if len(shares) < topology.num_blocks:
            shares = np.pad(shares, (0, topology.num_blocks - len(shares)))
        elif len(shares) > topology.num_blocks:
            shares = shares[: topology.num_blocks]
            if shares.sum() <= 0:
                raise ValueError(
                    "block shares for the available blocks sum to zero"
                )
        self.block_probabilities = shares / shares.sum()

        # One Zipf sampler per block over that block's stubs; the stub
        # order is randomly permuted once so "popularity" is not tied to
        # stub index.
        self._block_stub_choices: List[List[int]] = []
        self._block_stub_samplers: List[ZipfSampler] = []
        for block in range(topology.num_blocks):
            stubs = topology.stubs_in_block(block)
            if not stubs:
                raise ValueError(f"transit block {block} has no stubs")
            order = list(self._rng.permutation(stubs))
            self._block_stub_choices.append([int(s) for s in order])
            self._block_stub_samplers.append(
                ZipfSampler(len(stubs), zipf_theta, self._rng)
            )

        # A common Zipf shape across nodes of every stub (the paper
        # says the within-stub distribution is common), but again with
        # per-stub random popularity order.
        self._stub_node_choices: List[List[int]] = []
        self._stub_node_samplers: List[ZipfSampler] = []
        for members in topology.stub_members:
            order = list(self._rng.permutation(members))
            self._stub_node_choices.append([int(n) for n in order])
            self._stub_node_samplers.append(
                ZipfSampler(len(members), zipf_theta, self._rng)
            )

    def place_one(self) -> tuple[int, int, int]:
        """Draw ``(block, stub, node)`` for one subscription."""
        block = int(
            self._rng.choice(
                self.topology.num_blocks, p=self.block_probabilities
            )
        )
        stub_rank = int(self._block_stub_samplers[block].sample())
        stub = self._block_stub_choices[block][stub_rank]
        node_rank = int(self._stub_node_samplers[stub].sample())
        node = self._stub_node_choices[stub][node_rank]
        return block, stub, node

    def place(self, count: int) -> List[tuple[int, int, int]]:
        """Draw placements for ``count`` subscriptions."""
        return [self.place_one() for _ in range(count)]
