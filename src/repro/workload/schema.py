"""The stock-event schema used throughout the paper's experiments.

Events are points in a 4-dimensional space (Section 5):

===========  ===  =======================================================
dimension    idx  meaning
===========  ===  =======================================================
``bst``      0    buy / sell / transaction, linearized to codes 1 / 2 / 3
``name``     1    stock name, indexed ("linearized in some fashion", §1)
``quote``    2    trade price
``volume``   3    trade volume
===========  ===  =======================================================

The categorical ``bst`` attribute illustrates the paper's point that
even non-numeric attributes can be indexed and therefore treated as
ranges: code ``v`` becomes the half-open unit interval ``(v-1, v]``.
"""

from __future__ import annotations

from ..geometry.interval import Interval

__all__ = [
    "STOCK_DIMENSIONS",
    "DIM_BST",
    "DIM_NAME",
    "DIM_QUOTE",
    "DIM_VOLUME",
    "BST_CODES",
    "BST_PROBABILITIES",
    "bst_interval",
]

#: Attribute names in dimension order.
STOCK_DIMENSIONS = ("bst", "name", "quote", "volume")

DIM_BST = 0
DIM_NAME = 1
DIM_QUOTE = 2
DIM_VOLUME = 3

#: Linearized codes for the categorical attribute.
BST_CODES = {"B": 1, "S": 2, "T": 3}

#: Paper Section 5: "took value B, S and T with probabilities
#: 0.4, 0.4, and 0.2".
BST_PROBABILITIES = {"B": 0.4, "S": 0.4, "T": 0.2}


def bst_interval(symbol: str) -> Interval:
    """The unit interval selecting one bst category."""
    try:
        code = BST_CODES[symbol]
    except KeyError:
        raise ValueError(
            f"bst symbol must be one of {sorted(BST_CODES)}, got {symbol!r}"
        ) from None
    return Interval(code - 1.0, float(code))
