"""Pareto distributions for heavy-tailed interval lengths and amounts.

The paper's subscription model draws bounded-interval lengths from a
``Pareto(c, alpha)`` distribution (Section 5's parameter table uses
``c = 4, alpha = 1`` for both price and volume), and the NYSE data
study finds trade amounts approximately Pareto (Figure 5).

We use the classic (Type I) parameterization: support ``[c, inf)``,
``P(X > x) = (c / x)**alpha``.  With ``alpha <= 1`` the mean is
infinite, so generators that need sane workloads may cap samples.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["ParetoSampler"]


class ParetoSampler:
    """Type-I Pareto sampler with optional truncation.

    Parameters
    ----------
    scale:
        ``c`` — the minimum possible value.
    shape:
        ``alpha`` — tail index; smaller means heavier tail.
    cap:
        Optional upper truncation (samples above are redrawn by
        inverse-CDF restriction, preserving the shape below the cap).
    """

    def __init__(
        self,
        scale: float,
        shape: float,
        cap: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ):
        if scale <= 0:
            raise ValueError("scale must be positive")
        if shape <= 0:
            raise ValueError("shape must be positive")
        if cap is not None and cap <= scale:
            raise ValueError("cap must exceed scale")
        self.scale = scale
        self.shape = shape
        self.cap = cap
        # No ambient entropy: without an explicit generator the sampler
        # is seeded (deterministically) rather than drawn from the OS.
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def sample(self, size: Optional[int] = None):
        """Draw one value or an array of values."""
        u = self._rng.random(size)
        if self.cap is None:
            return self.scale / u ** (1.0 / self.shape)
        # Inverse CDF restricted to [scale, cap]: scale U into the CDF
        # range attained on that window.
        max_cdf = 1.0 - (self.scale / self.cap) ** self.shape
        u = u * max_cdf
        return self.scale / (1.0 - u) ** (1.0 / self.shape)

    def survival(self, x: float) -> float:
        """``P(X > x)`` of the *untruncated* distribution."""
        if x <= self.scale:
            return 1.0
        return (self.scale / x) ** self.shape

    def pdf(self, x: float) -> float:
        """Density of the untruncated distribution."""
        if x < self.scale:
            return 0.0
        return self.shape * self.scale**self.shape / x ** (self.shape + 1)

    @property
    def mean(self) -> float:
        """Mean of the untruncated distribution (inf when alpha <= 1)."""
        if self.shape <= 1.0:
            return math.inf
        return self.shape * self.scale / (self.shape - 1.0)
