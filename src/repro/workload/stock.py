"""Synthetic stock-trading day: the NYSE data-study substitute.

The paper's Section 5.1 analyzes one day of (proprietary) New York
Stock Exchange trades — 1999-09-24 — and extracts three empirical
facts used to justify the experiment's workload distributions:

- normalized trade prices (price / opening price) are approximately
  normal (Figure 4(a), and per-stock in Figure 5);
- stock popularity (trades per stock, rank ordered) is approximately
  Zipf-like (Figure 4(b));
- trade dollar amounts are heavy tailed — Zipf/Pareto-like
  (Figure 4(c), and per-stock in Figure 5).

We cannot ship the NYSE tape, so this module generates a synthetic
trading day *from* those three laws; the analysis pipeline in
:mod:`repro.analysis` then recovers them, regenerating the shapes of
Figures 4 and 5.  The substitution is faithful because the paper uses
the data study only as motivation for the workload generators — no
algorithm consumes the raw tape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .pareto import ParetoSampler
from .zipf import ZipfSampler

__all__ = ["StockMarketParams", "TradingDay", "StockMarketModel"]


@dataclass(frozen=True)
class StockMarketParams:
    """Shape parameters of the synthetic trading day.

    Defaults give an NYSE-like day: a few thousand listed stocks,
    Zipf-distributed trading activity, ~1% intraday price dispersion
    and Pareto trade sizes.
    """

    num_stocks: int = 3000
    num_trades: int = 200_000
    popularity_theta: float = 1.0
    price_sigma: float = 0.012
    opening_price_low: float = 5.0
    opening_price_high: float = 150.0
    amount_scale: float = 1_000.0
    amount_alpha: float = 1.2

    def __post_init__(self) -> None:
        if self.num_stocks < 1 or self.num_trades < 1:
            raise ValueError("need at least one stock and one trade")
        if self.price_sigma <= 0:
            raise ValueError("price_sigma must be positive")
        if not 0 < self.opening_price_low < self.opening_price_high:
            raise ValueError("opening price range must be positive and ordered")


@dataclass
class TradingDay:
    """Column-oriented record of one synthetic trading day."""

    stock: np.ndarray  # (trades,) int — stock index per trade
    price: np.ndarray  # (trades,) float — executed price
    amount: np.ndarray  # (trades,) float — dollar amount of the trade
    opening_price: np.ndarray  # (num_stocks,) float

    @property
    def num_trades(self) -> int:
        return len(self.stock)

    @property
    def num_stocks(self) -> int:
        return len(self.opening_price)

    def normalized_prices(self) -> np.ndarray:
        """Each trade's price divided by its stock's opening price.

        This is the §5.1 normalization behind Figure 4(a).
        """
        return self.price / self.opening_price[self.stock]

    def trades_per_stock(self) -> np.ndarray:
        """Trade count per stock (unsorted)."""
        return np.bincount(self.stock, minlength=self.num_stocks)

    def popularity_ranking(self) -> np.ndarray:
        """Trade counts sorted decreasing — Figure 4(b)'s series."""
        counts = self.trades_per_stock()
        return np.sort(counts)[::-1]

    def top_stocks(self, k: int) -> np.ndarray:
        """Indices of the ``k`` most-traded stocks (Figure 5 uses k=3)."""
        counts = self.trades_per_stock()
        return np.argsort(counts)[::-1][:k]

    def trades_of(self, stock: int) -> tuple[np.ndarray, np.ndarray]:
        """``(normalized prices, amounts)`` of one stock's trades."""
        mask = self.stock == stock
        return (
            self.price[mask] / self.opening_price[stock],
            self.amount[mask],
        )


class StockMarketModel:
    """Generates :class:`TradingDay` instances."""

    def __init__(
        self,
        params: Optional[StockMarketParams] = None,
        seed: Optional[int] = None,
    ):
        self.params = params or StockMarketParams()
        self._rng = np.random.default_rng(seed)

    def generate_day(self) -> TradingDay:
        """Simulate one full trading day."""
        p = self.params
        rng = self._rng
        opening = rng.uniform(
            p.opening_price_low, p.opening_price_high, size=p.num_stocks
        )
        popularity = ZipfSampler(p.num_stocks, p.popularity_theta, rng)
        # Random popularity order so stock index carries no signal.
        identity = rng.permutation(p.num_stocks)
        ranks = popularity.sample(p.num_trades)
        stocks = identity[ranks].astype(np.int64)
        # Intraday price: multiplicative normal noise around the open.
        ratio = rng.normal(1.0, p.price_sigma, size=p.num_trades)
        prices = opening[stocks] * np.maximum(ratio, 0.01)
        amounts = ParetoSampler(
            p.amount_scale, p.amount_alpha, rng=rng
        ).sample(p.num_trades)
        return TradingDay(
            stock=stocks,
            price=prices,
            amount=np.asarray(amounts),
            opening_price=opening,
        )
