"""Workload generation: subscriptions, publications, placement, market data.

Reproduces the paper's Section 5 experimental inputs — the stock
subscription recipe with its parameter table, the 1/4/9-mode
publication mixtures, the Zipf placement of subscribers over the
transit-stub topology, and a synthetic NYSE-like trading day standing
in for the proprietary data study of Section 5.1.
"""

from .pareto import ParetoSampler
from .placement import DEFAULT_BLOCK_SHARES, SubscriberPlacement
from .publications import (
    GaussianMixture1D,
    ProductMixtureDistribution,
    PublicationGenerator,
    four_mode_distribution,
    nine_mode_distribution,
    publication_distribution,
    single_mode_distribution,
)
from .schema import (
    BST_CODES,
    BST_PROBABILITIES,
    DIM_BST,
    DIM_NAME,
    DIM_QUOTE,
    DIM_VOLUME,
    STOCK_DIMENSIONS,
    bst_interval,
)
from .stock import StockMarketModel, StockMarketParams, TradingDay
from .subscriptions import (
    PRICE_PARAMS,
    VOLUME_PARAMS,
    IntervalDistributionParams,
    NameFieldParams,
    PlacedSubscription,
    StockSubscriptionGenerator,
)
from .zipf import ZipfSampler, zipf_weights

__all__ = [
    "ParetoSampler",
    "DEFAULT_BLOCK_SHARES",
    "SubscriberPlacement",
    "GaussianMixture1D",
    "ProductMixtureDistribution",
    "PublicationGenerator",
    "four_mode_distribution",
    "nine_mode_distribution",
    "publication_distribution",
    "single_mode_distribution",
    "BST_CODES",
    "BST_PROBABILITIES",
    "DIM_BST",
    "DIM_NAME",
    "DIM_QUOTE",
    "DIM_VOLUME",
    "STOCK_DIMENSIONS",
    "bst_interval",
    "StockMarketModel",
    "StockMarketParams",
    "TradingDay",
    "PRICE_PARAMS",
    "VOLUME_PARAMS",
    "IntervalDistributionParams",
    "NameFieldParams",
    "PlacedSubscription",
    "StockSubscriptionGenerator",
    "ZipfSampler",
    "zipf_weights",
]
