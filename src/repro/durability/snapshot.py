"""Checkpoints: the broker's durable state, serialized whole.

A snapshot is the paper's precomputation output made durable: the
subscription table (the input ``I``), its tombstones, and the
cluster→multicast-group assignment (``S_q`` / ``M_q``) — everything a
restarted broker needs to *re-derive* the expensive in-memory pieces
(the packed S-tree, the routing caches) without replaying history.
Rectangles ride the :mod:`repro.io` codecs, so infinities and id
order survive the JSON round trip.

A snapshot also records the WAL LSN it covers (``checkpoint_lsn``):
recovery replays only records past it, and the journal may truncate
the WAL prefix below it (subject to the in-flight low-water mark).

Stores are torn-write-safe in both directions: writes go to a temp
file in the same directory and :func:`os.replace` in (a crash leaves
the previous snapshot intact), and reads verify an embedded BLAKE2b
digest — a damaged newest snapshot is skipped, falling back to the
newest *valid* one, mirroring the WAL's truncate-don't-trust policy.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..io import atomic_write_text

__all__ = [
    "Snapshot",
    "SnapshotStore",
    "MemorySnapshotStore",
    "FileSnapshotStore",
]

_FORMAT_VERSION = 1


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Snapshot:
    """One checkpoint of the broker's durable state."""

    snapshot_id: int
    #: The WAL LSN this snapshot covers: every SUBSCRIBE/UNSUBSCRIBE
    #: below it is already reflected in ``table``/``removed``.
    checkpoint_lsn: int
    #: :func:`repro.io.table_to_dict` encoding (full id space, in order).
    table: Dict
    #: Tombstoned subscription ids (sorted).
    removed: List[int] = field(default_factory=list)
    #: :meth:`repro.clustering.groups.SpacePartition.to_state` encoding.
    partition: Optional[Dict] = None
    #: Simulated time the checkpoint was taken (injected clock).
    taken_at: float = 0.0
    #: :meth:`repro.sessions.session.SessionManager.to_state` encoding
    #: of the subscriber-session cursor table, or ``None`` when the
    #: broker has no session layer attached.  Omitted from the
    #: serialized payload (and the digest) when absent, so snapshots
    #: from session-less brokers are byte-identical to format v1.
    sessions: Optional[Dict] = None

    def _payload_body(self) -> Dict:
        body = {
            "snapshot_id": self.snapshot_id,
            "checkpoint_lsn": self.checkpoint_lsn,
            "table": self.table,
            "removed": sorted(int(x) for x in self.removed),
            "partition": self.partition,
            "taken_at": float(self.taken_at),
        }
        if self.sessions:
            body["sessions"] = self.sessions
        return body

    def to_dict(self) -> Dict:
        payload = {
            "format_version": _FORMAT_VERSION,
            **self._payload_body(),
        }
        payload["digest"] = self.digest()
        return payload

    def digest(self) -> str:
        """Content digest (excludes the digest field itself)."""
        body = _canonical(self._payload_body())
        return hashlib.blake2b(body.encode("utf-8"), digest_size=16).hexdigest()

    @classmethod
    def from_dict(cls, payload: Dict) -> Snapshot:
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot format version: {version!r}"
            )
        snapshot = cls(
            snapshot_id=int(payload["snapshot_id"]),
            checkpoint_lsn=int(payload["checkpoint_lsn"]),
            table=payload["table"],
            removed=[int(x) for x in payload.get("removed", [])],
            partition=payload.get("partition"),
            taken_at=float(payload.get("taken_at", 0.0)),
            sessions=payload.get("sessions"),
        )
        stored = payload.get("digest")
        if stored is not None and stored != snapshot.digest():
            raise ValueError(
                f"snapshot {snapshot.snapshot_id}: digest mismatch "
                "(corrupt or tampered)"
            )
        return snapshot


class SnapshotStore:
    """Where checkpoints live.  Newest-valid-wins retrieval."""

    def save(self, snapshot: Snapshot) -> None:
        raise NotImplementedError

    def latest(self) -> Optional[Snapshot]:
        """The newest snapshot that decodes and verifies, or ``None``."""
        raise NotImplementedError

    def ids(self) -> List[int]:
        """All retrievable snapshot ids, ascending (diagnostics)."""
        raise NotImplementedError


class MemorySnapshotStore(SnapshotStore):
    """Snapshots in a dict — the simulation default."""

    def __init__(self) -> None:
        self._snapshots: Dict[int, Snapshot] = {}

    def save(self, snapshot: Snapshot) -> None:
        self._snapshots[snapshot.snapshot_id] = snapshot

    def latest(self) -> Optional[Snapshot]:
        if not self._snapshots:
            return None
        return self._snapshots[max(self._snapshots)]

    def ids(self) -> List[int]:
        return sorted(self._snapshots)


class FileSnapshotStore(SnapshotStore):
    """One JSON file per snapshot under a directory, written atomically."""

    _PREFIX = "snapshot-"
    _SUFFIX = ".json"

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, snapshot_id: int) -> Path:
        return self.directory / (
            f"{self._PREFIX}{snapshot_id:08d}{self._SUFFIX}"
        )

    def save(self, snapshot: Snapshot) -> None:
        # atomic_write_text renames into place and fsyncs the
        # directory; a freshly written snapshot must survive a host
        # crash, or recovery falls back to a stale checkpoint.
        atomic_write_text(
            self._path(snapshot.snapshot_id),
            _canonical(snapshot.to_dict()),
        )

    def ids(self) -> List[int]:
        out: List[int] = []
        for path in self.directory.glob(
            f"{self._PREFIX}*{self._SUFFIX}"
        ):
            stem = path.name[len(self._PREFIX) : -len(self._SUFFIX)]
            try:
                out.append(int(stem))
            except ValueError:
                continue
        return sorted(out)

    def latest(self) -> Optional[Snapshot]:
        for snapshot_id in reversed(self.ids()):
            path = self._path(snapshot_id)
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                return Snapshot.from_dict(payload)
            except (ValueError, OSError):
                # Torn or corrupt: fall back to the previous checkpoint,
                # exactly like the WAL truncates at the last valid record.
                continue
        return None
