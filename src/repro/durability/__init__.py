"""Durable broker state: write-ahead log, snapshots, crash recovery.

The paper's architecture front-loads expensive state — the packed
S-tree index and the cluster→multicast-group assignment — and
implicitly assumes brokers live long enough to amortize it.  The fault
model of :mod:`repro.faults` made crashes *visible* (a crashed broker
blackholes traffic) but kept them harmless: the broker resumed with
pristine in-memory state, which real systems only achieve by paying
for durability.

This package pays:

- :mod:`~repro.durability.wal` — an append-only, CRC-checked,
  length-prefixed write-ahead log of every state mutation
  (subscription add/remove, event-publish intents, per-target delivery
  completions, checkpoint markers), with in-memory and file-backed
  implementations behind one interface;
- :mod:`~repro.durability.snapshot` — checkpoints serializing the
  live subscription table plus the cluster→group assignment (reusing
  the :mod:`repro.io` codecs), enabling WAL prefix truncation;
- :mod:`~repro.durability.journal` — the broker-side writer:
  journals mutations write-ahead, takes periodic checkpoints, and
  tracks the in-flight low-water mark so truncation never drops an
  unacked delivery;
- :mod:`~repro.durability.recovery` — the restart path: load the
  newest valid snapshot, replay the WAL tail (stopping at the first
  torn or corrupt record), rebuild the S-tree via the existing
  dynamic-engine machinery, and report the unacked in-flight
  deliveries so the reliable transport can finish them.

Everything runs off injected clocks and is deterministic: the same
snapshot + WAL bytes always recover byte-identical broker state.
"""

from .journal import BrokerJournal
from .recovery import InflightDelivery, RecoveredState, recover, restore_broker
from .snapshot import (
    FileSnapshotStore,
    MemorySnapshotStore,
    Snapshot,
    SnapshotStore,
)
from .wal import (
    FileWAL,
    MemoryWAL,
    RecordKind,
    ScanResult,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "RecordKind",
    "WalRecord",
    "ScanResult",
    "WriteAheadLog",
    "MemoryWAL",
    "FileWAL",
    "Snapshot",
    "SnapshotStore",
    "MemorySnapshotStore",
    "FileSnapshotStore",
    "BrokerJournal",
    "InflightDelivery",
    "RecoveredState",
    "recover",
    "restore_broker",
]
