"""Crash recovery: snapshot + WAL tail → the broker that crashed.

The restart sequence (deterministic — a pure function of the stored
bytes):

1. load the newest *valid* snapshot (torn/corrupt snapshot files are
   skipped by the store);
2. scan the WAL front to back, stopping at the first torn or
   CRC-invalid record; physically truncate the damaged tail
   (:meth:`~repro.durability.wal.WriteAheadLog.repair`) so the log is
   clean for the next epoch — never replay garbage;
3. replay the surviving records: SUBSCRIBE/UNSUBSCRIBE at or past the
   snapshot's ``checkpoint_lsn`` mutate the table, while PUBLISH /
   DELIVER pairs (at any retained LSN) reconstruct the **in-flight
   set** — every (event, target) whose publish intent was journaled
   but whose delivery completion never was;
4. :func:`restore_broker` then rebuilds the derived state the paper's
   preprocessing produced — the grid, the restored space partition,
   and a freshly packed S-tree via the existing
   :class:`~repro.core.dynamic.DynamicMatchingEngine` machinery — and
   the caller re-hands the in-flight set to the reliable transport,
   whose receiver-side dedup turns redelivery into exactly-once.

Malformed-but-CRC-valid records (impossible under this writer, cheap
insurance against future format skew) are skipped and counted, never
raised on: recovery's contract is that it always terminates with a
usable broker and an honest report of what it could not salvage.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..clustering.grid import EventGrid
from ..clustering.groups import SpacePartition
from ..core.subscription import SubscriptionTable
from ..geometry.rectangle import Rectangle
from ..io import table_to_dict
from ..telemetry.base import Telemetry, or_null
from .snapshot import SnapshotStore
from .wal import RecordKind, WriteAheadLog

__all__ = ["InflightDelivery", "RecoveredState", "recover", "restore_broker"]


@dataclass(frozen=True)
class InflightDelivery:
    """One journaled publish intent with its still-unacked targets."""

    sequence: int
    publisher: int
    targets: Tuple[int, ...]
    #: LSN of the PUBLISH record (the truncation low-water mark).
    lsn: int


@dataclass
class RecoveredState:
    """Everything recovery reconstructed, plus how it got there."""

    table: Optional[SubscriptionTable]
    removed: Set[int]
    partition_state: Optional[Dict]
    #: sequence → unfinished delivery (sorted targets), for redelivery.
    inflight: Dict[int, InflightDelivery]
    #: session id → cursor-table entry (subscriber, sids, state,
    #: durable, cursor), rebuilt from the snapshot's session table
    #: plus SESSION/CURSOR records past the checkpoint.  Empty for
    #: brokers without a session layer.
    sessions: Dict[str, Dict] = None  # type: ignore[assignment]
    checkpoint_lsn: int = 0
    snapshot_id: Optional[int] = None
    #: Records decoded and applied from the WAL (all kinds).
    replayed: int = 0
    subscriptions_replayed: int = 0
    removals_replayed: int = 0
    #: CRC-valid records recovery could not interpret (skipped, loud).
    skipped: int = 0
    #: Bytes cut off the WAL tail because of torn/corrupt records.
    truncated_bytes: int = 0
    corruption: Optional[str] = None
    valid_end: int = 0

    def digest(self) -> str:
        """Deterministic fingerprint of the recovered state.

        Two recoveries from the same snapshot + WAL bytes produce the
        same digest — the seed-stability property the tests pin.
        """
        body = {
            "table": table_to_dict(self.table) if self.table else None,
            "removed": sorted(self.removed),
            "partition": self.partition_state,
            "inflight": [
                [seq, entry.publisher, list(entry.targets)]
                for seq, entry in sorted(self.inflight.items())
            ],
            "checkpoint_lsn": self.checkpoint_lsn,
            "valid_end": self.valid_end,
        }
        if self.sessions:
            # Only present for session-bearing brokers, so digests of
            # session-less recoveries match their pinned pre-session
            # values byte for byte.
            body["sessions"] = {
                sid: dict(sorted(entry.items()))
                for sid, entry in sorted(self.sessions.items())
            }
        canonical = json.dumps(
            body, sort_keys=True, separators=(",", ":")
        )
        return hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=16
        ).hexdigest()


def _decode_bound(value) -> float:
    # Mirrors repro.io's sentinel encoding without importing privates.
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return float(value)


def recover(
    wal: WriteAheadLog,
    store: SnapshotStore,
    telemetry: Optional[Telemetry] = None,
) -> RecoveredState:
    """Rebuild broker state from durable storage after a crash.

    Never raises on damaged input: a torn or corrupt WAL tail is
    truncated at the last valid record (and reported via
    ``truncated_bytes`` / ``corruption``), a damaged snapshot falls
    back to the previous one, and undecodable record bodies are
    counted in ``skipped``.
    """
    telemetry = or_null(telemetry)
    span = None
    if telemetry.enabled:
        span = telemetry.start_span("recovery")
        telemetry.counter(
            "recovery.runs", help="crash recoveries performed"
        ).inc()

    snapshot = store.latest()
    scan = wal.scan()
    truncated = wal.end_lsn - scan.valid_end
    if not scan.clean:
        wal.repair()

    table: Optional[SubscriptionTable] = None
    removed: Set[int] = set()
    partition_state: Optional[Dict] = None
    checkpoint_lsn = 0
    snapshot_id = None
    if snapshot is not None:
        from ..io import table_from_dict

        table = table_from_dict(snapshot.table)
        removed = {int(x) for x in snapshot.removed}
        partition_state = snapshot.partition
        checkpoint_lsn = snapshot.checkpoint_lsn
        snapshot_id = snapshot.snapshot_id

    sessions: Dict[str, Dict] = {}
    if snapshot is not None and snapshot.sessions:
        sessions = {
            str(sid): dict(entry)
            for sid, entry in snapshot.sessions.items()
        }

    state = RecoveredState(
        table=table,
        removed=removed,
        partition_state=partition_state,
        inflight={},
        sessions=sessions,
        checkpoint_lsn=checkpoint_lsn,
        snapshot_id=snapshot_id,
        truncated_bytes=truncated,
        corruption=scan.corruption,
        valid_end=scan.valid_end,
    )

    pending: Dict[int, Dict] = {}  # seq -> {publisher, targets, lsn}
    for record in scan.records:
        body = record.body
        try:
            if record.kind is RecordKind.SUBSCRIBE:
                if record.lsn < checkpoint_lsn:
                    continue  # already folded into the snapshot
                sid = int(body["sid"])
                if state.table is None:
                    state.table = SubscriptionTable(len(body["lows"]))
                if sid != len(state.table):
                    state.skipped += 1
                    continue  # id-space gap: refuse to mis-assign
                state.table.add(
                    int(body["subscriber"]),
                    Rectangle(
                        tuple(_decode_bound(x) for x in body["lows"]),
                        tuple(_decode_bound(x) for x in body["highs"]),
                    ),
                )
                state.subscriptions_replayed += 1
            elif record.kind is RecordKind.UNSUBSCRIBE:
                if record.lsn < checkpoint_lsn:
                    continue
                sid = int(body["sid"])
                if state.table is None or sid >= len(state.table):
                    state.skipped += 1
                    continue
                state.removed.add(sid)
                state.removals_replayed += 1
            elif record.kind is RecordKind.PUBLISH:
                pending[int(body["seq"])] = {
                    "publisher": int(body["publisher"]),
                    "targets": {int(t) for t in body["targets"]},
                    "lsn": record.lsn,
                }
            elif record.kind is RecordKind.DELIVER:
                entry = pending.get(int(body["seq"]))
                if entry is not None:
                    entry["targets"].discard(int(body["target"]))
                    if not entry["targets"]:
                        del pending[int(body["seq"])]
            elif record.kind is RecordKind.SESSION:
                if record.lsn < checkpoint_lsn:
                    continue  # already folded into the snapshot's table
                action = str(body["action"])
                sid = str(body["id"])
                if action == "register":
                    state.sessions[sid] = {
                        "subscriber": int(body["subscriber"]),
                        "sids": sorted(int(x) for x in body["sids"]),
                        "state": "live",
                        "durable": True,
                        "cursor": int(body.get("cursor", 0)),
                        "lease": float(body["lease"]),
                    }
                elif action in ("detach", "resume", "expire"):
                    entry = state.sessions.get(sid)
                    if entry is None:
                        state.skipped += 1
                        continue
                    if action == "detach":
                        entry["state"] = "detached"
                        entry["detached_at"] = float(body["t"])
                    elif action == "resume":
                        entry["state"] = "live"
                        entry.pop("detached_at", None)
                    else:
                        entry["durable"] = False
                else:
                    state.skipped += 1
                    continue
            elif record.kind is RecordKind.CURSOR:
                if record.lsn < checkpoint_lsn:
                    continue
                entry = state.sessions.get(str(body["id"]))
                if entry is None:
                    state.skipped += 1
                    continue
                entry["cursor"] = max(
                    int(entry.get("cursor", 0)), int(body["cursor"])
                )
            # CHECKPOINT markers are informational; the snapshot store
            # is the authority on which checkpoint actually survived.
        except (KeyError, TypeError, ValueError):
            state.skipped += 1
            continue
        state.replayed += 1

    state.inflight = {
        seq: InflightDelivery(
            sequence=seq,
            publisher=entry["publisher"],
            targets=tuple(sorted(entry["targets"])),
            lsn=entry["lsn"],
        )
        for seq, entry in sorted(pending.items())
    }

    if telemetry.enabled:
        telemetry.counter(
            "recovery.replayed", help="WAL records replayed on recovery"
        ).inc(state.replayed)
        telemetry.counter(
            "recovery.truncated",
            help="WAL bytes truncated as torn/corrupt on recovery",
        ).inc(state.truncated_bytes)
        telemetry.counter(
            "recovery.inflight",
            help="unacked (event, target) deliveries found on recovery",
        ).inc(sum(len(e.targets) for e in state.inflight.values()))
        span.set_attribute("replayed", state.replayed).set_attribute(
            "truncated_bytes", state.truncated_bytes
        ).set_attribute(
            "inflight", len(state.inflight)
        ).set_attribute(
            "snapshot", snapshot_id if snapshot_id is not None else -1
        ).finish()
    return state


def restore_broker(
    broker,
    state: RecoveredState,
    telemetry: Optional[Telemetry] = None,
) -> None:
    """Point a broker at recovered state, rebuilding the derived pieces.

    The snapshot stores only what cannot be recomputed (the table, the
    tombstones, the group assignment); this function re-derives the
    rest exactly as the original preprocessing did — the event grid
    over the recovered rectangles (same frame, same resolution, so
    ``locate`` is bit-identical), the restored
    :class:`~repro.clustering.groups.SpacePartition`, and a freshly
    packed S-tree via :class:`~repro.core.dynamic.
    DynamicMatchingEngine` (tombstones seeded, not replayed one by
    one).  Routing caches are invalidated; the cost model and topology
    survive untouched (links don't lose their weights in a crash).
    """
    from ..core.dynamic import DynamicMatchingEngine

    if state.table is None or len(state.table) == 0:
        raise ValueError(
            "cannot restore a broker from empty recovered state "
            "(no snapshot and no SUBSCRIBE records survived)"
        )
    if state.partition_state is None:
        raise ValueError(
            "recovered state carries no partition assignment; "
            "checkpoint before crashing (see BrokerJournal.checkpoint)"
        )
    partition_state = state.partition_state
    grid = EventGrid(
        state.table.rectangles(),
        [s.subscriber for s in state.table],
        density=None,
        cells_per_dim=int(partition_state["cells_per_dim"]),
        frame=(
            partition_state["frame_lo"],
            partition_state["frame_hi"],
        ),
    )
    partition = SpacePartition.restore(grid, partition_state)
    # Subscriptions replayed from the WAL post-date the snapshot, so
    # the restored partition never saw them; re-apply the same group
    # widening their original ``subscribe`` performed (replays are
    # strictly appended, so they are the table's tail).
    for sid in range(
        len(state.table) - state.subscriptions_replayed, len(state.table)
    ):
        subscription = state.table[sid]
        partition.add_subscription(
            subscription.rectangle, subscription.subscriber
        )
    engine = DynamicMatchingEngine(
        state.table,
        backend=broker.engine.backend,
        removed=state.removed,
    )
    broker.table = state.table
    broker.partition = partition
    broker.engine = engine
    if hasattr(broker, "_removed"):
        broker._removed = set(state.removed)
    broker.costs.clear_cache()
    if telemetry is not None and telemetry.enabled:
        telemetry.counter(
            "recovery.rebuilt",
            help="brokers rebuilt from snapshot + WAL replay",
        ).inc()
