"""The write-ahead log: append-only, CRC-checked, seekable records.

Physical layout (all integers little-endian)::

    header:  MAGIC b"REPROWAL" | version u8 | base_lsn u64
    record:  payload_length u32 | crc32(payload) u32 | payload
    payload: kind u8 | canonical JSON body (utf-8)

An **LSN** is the logical byte offset of a record's first header byte,
counted from the beginning of the log's *lifetime* — prefix truncation
(checkpointing) rewrites the physical file but bumps ``base_lsn`` so
every surviving record keeps its original LSN, and readers can seek by
LSN forever.

The scan path is the whole point of the format: :meth:`WriteAheadLog.
scan` walks records front to back, verifying the length prefix and the
CRC of every payload, and stops — without raising — at the first
evidence of a torn write (fewer bytes than the header promises) or
corruption (CRC mismatch, absurd length, bad kind).  Recovery then
:meth:`~WriteAheadLog.repair`\\ s the log by truncating the physical
tail at the last valid record, which is exactly the "truncate, don't
replay garbage" contract crash recovery needs.

*Appends* are fsync-free by design (the simulation's crash model
decides what survives, not the page cache), but the file-backed log
does fsync the containing *directory* after creating a fresh file and
after every atomic rewrite — an :func:`os.replace` whose directory
entry never reached disk silently un-creates the log on a host crash,
which is a durability gap no crash model should paper over.  Both
implementations take an injected ``clock`` — records are stamped with
simulated time, never wall time.
"""

from __future__ import annotations

import enum
import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from ..io import atomic_write_bytes

__all__ = [
    "RecordKind",
    "WalRecord",
    "ScanResult",
    "WriteAheadLog",
    "MemoryWAL",
    "FileWAL",
]

_MAGIC = b"REPROWAL"
_VERSION = 1
_HEADER = struct.Struct("<8sBQ")          # magic, version, base_lsn
_RECORD_HEADER = struct.Struct("<II")     # payload length, crc32(payload)

#: Upper bound on one payload; anything larger in a length prefix is
#: treated as corruption, not as a 4 GiB allocation request.
MAX_PAYLOAD = 16 * 1024 * 1024


class RecordKind(enum.IntEnum):
    """What one WAL record describes."""

    SUBSCRIBE = 1      # a subscription entered the table
    UNSUBSCRIBE = 2    # a subscription was withdrawn (tombstoned)
    PUBLISH = 3        # an event-publish intent with its tracked targets
    DELIVER = 4        # one (event, target) delivery completed (acked)
    CHECKPOINT = 5     # a snapshot covering everything before this LSN
    MIGRATE_BEGIN = 6  # a subset copy to a new shard started (handoff digest)
    MIGRATE_CUTOVER = 7  # ownership flipped; the shard-map epoch bumped
    MIGRATE_DONE = 8   # migration finished (or aborted pre-cutover)
    EVENT = 9          # a published event retained for session replay
    SESSION = 10       # a subscriber-session lifecycle change
    CURSOR = 11        # a session's delivery cursor advanced (on ack)


@dataclass(frozen=True)
class WalRecord:
    """One decoded record: where it sits, what it says."""

    lsn: int
    kind: RecordKind
    body: dict

    @property
    def end_lsn(self) -> int:
        """LSN of the byte just past this record."""
        payload = 1 + len(_encode_body(self.body))
        return self.lsn + _RECORD_HEADER.size + payload


@dataclass(frozen=True)
class ScanResult:
    """Everything one front-to-back WAL scan established."""

    records: Tuple[WalRecord, ...]
    #: LSN just past the last valid record (= where appends resume
    #: after :meth:`WriteAheadLog.repair`).
    valid_end: int
    #: Human-readable reason the scan stopped early, or ``None`` when
    #: every byte decoded cleanly.
    corruption: Optional[str] = None

    @property
    def clean(self) -> bool:
        return self.corruption is None


def _encode_body(body: dict) -> bytes:
    """Canonical JSON: sorted keys, no whitespace — digest-stable."""
    return json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_record(kind: RecordKind, body: dict) -> bytes:
    """One length-prefixed, CRC-protected record as raw bytes."""
    payload = bytes([int(kind)]) + _encode_body(body)
    return (
        _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
    )


class WriteAheadLog:
    """The storage-agnostic WAL contract (and its shared scan logic).

    Subclasses supply raw-byte primitives (:meth:`_load`,
    :meth:`_append_bytes`, :meth:`_store`); everything else — framing,
    CRC verification, torn-tail detection, LSN arithmetic, corruption
    injection — lives here, so the in-memory and file-backed logs are
    bit-compatible.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.appends = 0

    # -- storage primitives (subclass responsibility) -----------------------

    def _load(self) -> bytes:
        """Every byte after the header, in LSN order."""
        raise NotImplementedError

    def _append_bytes(self, data: bytes) -> None:
        raise NotImplementedError

    def _store(self, base_lsn: int, data: bytes) -> None:
        """Atomically replace the whole log body (and its base LSN)."""
        raise NotImplementedError

    @property
    def base_lsn(self) -> int:
        """LSN of the first physically retained byte."""
        raise NotImplementedError

    # -- the public contract -------------------------------------------------

    @property
    def end_lsn(self) -> int:
        """LSN one past the last physically stored byte."""
        return self.base_lsn + len(self._load())

    def append(self, kind: RecordKind, body: dict) -> int:
        """Durably append one record; returns its LSN.

        The record is stamped with the injected clock (key ``"t"``)
        unless the caller already supplied one.
        """
        if "t" not in body:
            body = {**body, "t": float(self.clock())}
        lsn = self.end_lsn
        self._append_bytes(encode_record(kind, body))
        self.appends += 1
        return lsn

    def scan(self, from_lsn: Optional[int] = None) -> ScanResult:
        """Decode records front to back, stopping at the first damage.

        ``from_lsn`` (a record boundary, e.g. a checkpoint LSN) seeks
        before decoding; records are never split across the base, so
        seeking below ``base_lsn`` reads from the physical start.
        """
        data = self._load()
        base = self.base_lsn
        offset = 0
        if from_lsn is not None and from_lsn > base:
            offset = from_lsn - base
            if offset > len(data):
                return ScanResult(records=(), valid_end=base + len(data))
        records: List[WalRecord] = []
        while offset < len(data):
            lsn = base + offset
            remaining = len(data) - offset
            if remaining < _RECORD_HEADER.size:
                return ScanResult(
                    records=tuple(records),
                    valid_end=lsn,
                    corruption=(
                        f"torn record header at lsn {lsn} "
                        f"({remaining} of {_RECORD_HEADER.size} bytes)"
                    ),
                )
            length, crc = _RECORD_HEADER.unpack_from(data, offset)
            if length == 0 or length > MAX_PAYLOAD:
                return ScanResult(
                    records=tuple(records),
                    valid_end=lsn,
                    corruption=(
                        f"implausible payload length {length} at lsn {lsn}"
                    ),
                )
            start = offset + _RECORD_HEADER.size
            if start + length > len(data):
                return ScanResult(
                    records=tuple(records),
                    valid_end=lsn,
                    corruption=(
                        f"torn payload at lsn {lsn} "
                        f"({len(data) - start} of {length} bytes)"
                    ),
                )
            payload = data[start : start + length]
            if zlib.crc32(payload) != crc:
                return ScanResult(
                    records=tuple(records),
                    valid_end=lsn,
                    corruption=f"CRC mismatch at lsn {lsn}",
                )
            try:
                kind = RecordKind(payload[0])
                body = json.loads(payload[1:].decode("utf-8"))
                if not isinstance(body, dict):
                    raise ValueError("body is not an object")
            except (ValueError, UnicodeDecodeError) as error:
                return ScanResult(
                    records=tuple(records),
                    valid_end=lsn,
                    corruption=f"undecodable payload at lsn {lsn}: {error}",
                )
            records.append(WalRecord(lsn=lsn, kind=kind, body=body))
            offset = start + length
        return ScanResult(records=tuple(records), valid_end=base + offset)

    def repair(self) -> int:
        """Truncate the physical tail at the last valid record.

        Returns the number of bytes discarded (0 for a clean log).
        Idempotent: repairing a clean log is a no-op.
        """
        result = self.scan()
        if result.clean:
            return 0
        data = self._load()
        keep = result.valid_end - self.base_lsn
        removed = len(data) - keep
        self._store(self.base_lsn, data[:keep])
        return removed

    def truncate_prefix(self, lsn: int) -> int:
        """Drop every byte below ``lsn`` (a record boundary).

        The checkpoint path: once a snapshot covers everything before
        ``lsn`` — *and* no live in-flight intent sits below it — the
        prefix is dead weight.  Surviving records keep their LSNs via
        ``base_lsn``.  Returns the number of bytes dropped.

        ``lsn`` must not exceed :attr:`end_lsn`: silently clamping a
        past-head cut would discard records the caller believes are
        retained (the retention low-water contract — truncating at
        exactly a live cursor's LSN must *keep* that record).
        Truncating at or below ``base_lsn`` is a no-op, and truncating
        at exactly ``end_lsn`` empties the log.
        """
        base = self.base_lsn
        if lsn <= base:
            return 0
        data = self._load()
        end = base + len(data)
        if lsn > end:
            raise ValueError(
                f"truncate_prefix: lsn {lsn} lies past the log head "
                f"{end} (base_lsn {base})"
            )
        cut = lsn - base
        self._store(base + cut, data[cut:])
        return cut

    # -- corruption injection (the fault plan's hooks) ----------------------

    def tear_tail(self, nbytes: int) -> int:
        """Simulate a torn write: the last ``nbytes`` never hit disk.

        Returns the number of bytes actually removed (the log never
        tears past its own header).
        """
        if nbytes <= 0:
            raise ValueError(
                f"tear_tail: nbytes must be positive (got {nbytes})"
            )
        data = self._load()
        cut = min(int(nbytes), len(data))
        if cut:
            self._store(self.base_lsn, data[:-cut])
        return cut

    def flip_bit(self, offset_from_end: int, bit: int = 0) -> bool:
        """Simulate media corruption: flip one bit near the tail.

        ``offset_from_end`` counts bytes back from the physical end
        (1 = last byte).  Returns False when the log is too short to
        contain that byte.
        """
        if offset_from_end < 1:
            raise ValueError(
                "flip_bit: offset_from_end must be >= 1 "
                f"(got {offset_from_end})"
            )
        if not 0 <= bit <= 7:
            raise ValueError(f"flip_bit: bit must lie in 0..7 (got {bit})")
        data = bytearray(self._load())
        if offset_from_end > len(data):
            return False
        data[-offset_from_end] ^= 1 << bit
        self._store(self.base_lsn, bytes(data))
        return True

    def dump(self) -> bytes:
        """Header + body as one byte string (digests, golden tests)."""
        return (
            _HEADER.pack(_MAGIC, _VERSION, self.base_lsn) + self._load()
        )

    # -- anti-entropy transfer ----------------------------------------------

    def copy_out(self) -> Tuple[int, bytes]:
        """The whole physical log as ``(base_lsn, body bytes)``.

        The replication catch-up payload: a standby that has fallen
        behind the primary's retained op buffer receives this and
        :meth:`copy_in`\\ s it, after which incremental shipping resumes
        from ``end_lsn``.
        """
        return self.base_lsn, self._load()

    def copy_in(self, base_lsn: int, data: bytes) -> None:
        """Atomically replace this log's contents with a shipped copy."""
        if base_lsn < 0:
            raise ValueError(
                f"copy_in: base_lsn must be >= 0 (got {base_lsn})"
            )
        self._store(int(base_lsn), bytes(data))


class MemoryWAL(WriteAheadLog):
    """A WAL living in a byte buffer — zero I/O, ideal for simulation."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        super().__init__(clock=clock)
        self._base = 0
        self._data = bytearray()

    @property
    def base_lsn(self) -> int:
        return self._base

    def _load(self) -> bytes:
        return bytes(self._data)

    def _append_bytes(self, data: bytes) -> None:
        self._data.extend(data)

    def _store(self, base_lsn: int, data: bytes) -> None:
        self._base = base_lsn
        self._data = bytearray(data)


class FileWAL(WriteAheadLog):
    """A WAL backed by one file; rewrites are atomic (temp + replace).

    Appends go straight to the file (no fsync — see the module note);
    prefix truncation and repair rewrite through a temp file in the
    same directory and :func:`os.replace`, so a crash mid-rewrite
    leaves either the old or the new log, never a hybrid.
    """

    def __init__(
        self,
        path: Union[str, Path],
        clock: Optional[Callable[[], float]] = None,
    ):
        super().__init__(clock=clock)
        self.path = Path(path)
        if self.path.exists():
            raw = self.path.read_bytes()
            self._read_header(raw)
        else:
            self._base = 0
            # Atomic creation + directory fsync: without the fsync, a
            # host crash after creation leaves no WAL at all and
            # recovery would silently start from nothing.
            atomic_write_bytes(self.path, _HEADER.pack(_MAGIC, _VERSION, 0))

    def _read_header(self, raw: bytes) -> None:
        if len(raw) < _HEADER.size:
            raise ValueError(
                f"{self.path}: too short to be a WAL "
                f"({len(raw)} < {_HEADER.size} bytes)"
            )
        magic, version, base = _HEADER.unpack_from(raw)
        if magic != _MAGIC:
            raise ValueError(f"{self.path}: bad magic {magic!r}")
        if version != _VERSION:
            raise ValueError(
                f"{self.path}: unsupported WAL version {version}"
            )
        self._base = int(base)

    @property
    def base_lsn(self) -> int:
        return self._base

    def _load(self) -> bytes:
        return self.path.read_bytes()[_HEADER.size :]

    def _append_bytes(self, data: bytes) -> None:
        # Append-only framing IS the durability primitive here: a torn
        # append is detected by the CRC scan and truncated by repair,
        # so the atomic-rewrite helper would be wrong (it would copy
        # the whole log per record).  The one sanctioned raw write.
        with self.path.open("ab") as handle:  # repro: noqa IO01
            handle.write(data)

    def _store(self, base_lsn: int, data: bytes) -> None:
        atomic_write_bytes(
            self.path, _HEADER.pack(_MAGIC, _VERSION, base_lsn) + data
        )
        self._base = base_lsn
