"""The broker-side WAL writer: journal first, mutate second.

:class:`BrokerJournal` sits between a broker and its durable storage.
Call sites log each mutation *before* it takes effect (write-ahead),
so a crash between the append and the in-memory update loses nothing
that matters: recovery replays the record and converges on the state
the mutation would have produced.

Checkpointing is automatic: every ``checkpoint_every`` appends, the
journal serializes the broker's durable state (table + tombstones +
partition assignment) into a :class:`~repro.durability.snapshot.
Snapshot` and truncates the WAL prefix.  Truncation respects the
**in-flight low-water mark** — the smallest LSN of any PUBLISH intent
whose deliveries are not all acked — so recovery can always
reconstruct the unfinished deliveries, no matter how recent the last
checkpoint was.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set

from ..io import _encode_bound
from ..telemetry.base import Telemetry, or_null
from .recovery import RecoveredState
from .snapshot import Snapshot, SnapshotStore
from .wal import RecordKind, WriteAheadLog

__all__ = ["BrokerJournal"]


class BrokerJournal:
    """Write-ahead journaling + periodic checkpoints for one broker."""

    def __init__(
        self,
        broker,
        wal: WriteAheadLog,
        store: SnapshotStore,
        checkpoint_every: int = 256,
        telemetry: Optional[Telemetry] = None,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.broker = broker
        self.wal = wal
        self.store = store
        self.checkpoint_every = checkpoint_every
        self.telemetry = or_null(telemetry)
        #: sequence → LSN of its PUBLISH intent (the low-water candidates).
        self._intent_lsn: Dict[int, int] = {}
        #: sequence → targets still awaiting a DELIVER completion.
        self._intent_targets: Dict[int, Set[int]] = {}
        self._appends_since_checkpoint = 0
        existing = self.store.ids()
        self._next_snapshot_id = (max(existing) + 1) if existing else 0
        self.checkpoints = 0
        #: Replication taps.  ``on_record(lsn, kind, body)`` fires after
        #: every append with the *exact* body stored (clock stamp
        #: included), so a log shipper can reproduce the record
        #: byte-for-byte on a standby.  ``on_checkpoint(snapshot,
        #: truncate_lsn)`` fires after the matching CHECKPOINT record's
        #: ``on_record``, carrying the snapshot and the prefix cut.
        self.on_record: Optional[
            Callable[[int, RecordKind, Dict], None]
        ] = None
        self.on_checkpoint: Optional[
            Callable[[Snapshot, int], None]
        ] = None

    # -- record writers ------------------------------------------------------

    def _append(self, kind: RecordKind, body: Dict) -> int:
        # Stamp the clock here rather than letting the WAL do it, so
        # the body handed to ``on_record`` is the stored body verbatim —
        # a standby re-appending it produces byte-identical records.
        if "t" not in body:
            body = {**body, "t": float(self.wal.clock())}
        lsn = self.wal.append(kind, body)
        if self.telemetry.enabled:
            self.telemetry.counter(
                "wal.appends",
                help="WAL records appended",
                kind=kind.name.lower(),
            ).inc()
        self._appends_since_checkpoint += 1
        if self.on_record is not None:
            self.on_record(lsn, kind, body)
        return lsn

    def log_subscribe(self, subscription) -> int:
        """Journal a subscription add (call before the engine mutates)."""
        rect = subscription.rectangle
        return self._append(
            RecordKind.SUBSCRIBE,
            {
                "sid": int(subscription.subscription_id),
                "subscriber": int(subscription.subscriber),
                "lows": [_encode_bound(x) for x in rect.lows],
                "highs": [_encode_bound(x) for x in rect.highs],
            },
        )

    def log_unsubscribe(self, subscription_id: int) -> int:
        """Journal a subscription removal (tombstone)."""
        return self._append(
            RecordKind.UNSUBSCRIBE, {"sid": int(subscription_id)}
        )

    def log_publish(
        self,
        sequence: int,
        publisher: int,
        targets: Iterable[int],
        method: str = "",
        group: int = 0,
    ) -> int:
        """Journal a publish intent with its full recipient set.

        The intent's LSN becomes a truncation low-water candidate until
        every target's completion is journaled via :meth:`log_delivery`.
        """
        target_set = {int(t) for t in targets}
        lsn = self._append(
            RecordKind.PUBLISH,
            {
                "seq": int(sequence),
                "publisher": int(publisher),
                "targets": sorted(target_set),
                "method": method,
                "group": int(group),
            },
        )
        if target_set:
            self._intent_lsn[int(sequence)] = lsn
            self._intent_targets[int(sequence)] = target_set
        return lsn

    def log_session(self, body: Dict) -> int:
        """Journal a subscriber-session lifecycle change.

        ``body`` is the session layer's own encoding (see
        :mod:`repro.sessions.session`); the journal only guarantees it
        ships to standbys byte-identically and replays on recovery.
        """
        return self._append(RecordKind.SESSION, dict(body))

    def log_cursor(self, session_id: str, cursor: int) -> int:
        """Journal one session's delivery-cursor advance (on ack)."""
        return self._append(
            RecordKind.CURSOR,
            {"id": str(session_id), "cursor": int(cursor)},
        )

    def log_delivery(self, sequence: int, target: int) -> int:
        """Journal one target's acked delivery; retires finished intents."""
        lsn = self._append(
            RecordKind.DELIVER,
            {"seq": int(sequence), "target": int(target)},
        )
        remaining = self._intent_targets.get(int(sequence))
        if remaining is not None:
            remaining.discard(int(target))
            if not remaining:
                del self._intent_targets[int(sequence)]
                del self._intent_lsn[int(sequence)]
        self.maybe_checkpoint()
        return lsn

    # -- checkpointing -------------------------------------------------------

    def low_water_mark(self, checkpoint_lsn: int) -> int:
        """The highest LSN the WAL prefix may be truncated at."""
        candidates = list(self._intent_lsn.values())
        candidates.append(checkpoint_lsn)
        return min(candidates)

    def maybe_checkpoint(self) -> bool:
        """Checkpoint if enough records accumulated since the last one."""
        if self._appends_since_checkpoint >= self.checkpoint_every:
            self.checkpoint()
            return True
        return False

    def checkpoint(self) -> Snapshot:
        """Snapshot the broker's durable state and truncate the WAL.

        The snapshot's ``checkpoint_lsn`` is the WAL end at capture
        time: every SUBSCRIBE/UNSUBSCRIBE below it is inside the
        snapshot, so recovery skips them.  The physical truncation
        point is the in-flight low-water mark, which may lag the
        checkpoint LSN while deliveries are outstanding.
        """
        checkpoint_lsn = self.wal.end_lsn
        state = self.broker.durable_state()
        snapshot = Snapshot(
            snapshot_id=self._next_snapshot_id,
            checkpoint_lsn=checkpoint_lsn,
            table=state["table"],
            removed=state["removed"],
            partition=state["partition"],
            taken_at=self.wal.clock(),
            sessions=state.get("sessions"),
        )
        self.store.save(snapshot)
        self._next_snapshot_id += 1
        self._append(
            RecordKind.CHECKPOINT,
            {"snapshot_id": snapshot.snapshot_id, "lsn": checkpoint_lsn},
        )
        truncate_lsn = self.low_water_mark(checkpoint_lsn)
        self.wal.truncate_prefix(truncate_lsn)
        self._appends_since_checkpoint = 0
        self.checkpoints += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(snapshot, truncate_lsn)
        if self.telemetry.enabled:
            self.telemetry.counter(
                "wal.checkpoints", help="checkpoints taken"
            ).inc()
        return snapshot

    # -- recovery hand-off ---------------------------------------------------

    def rearm(self, state: RecoveredState) -> None:
        """Resume journaling after recovery.

        Reseeds the in-flight tracking from what recovery found (their
        original intent LSNs keep holding the truncation low-water
        mark) and realigns the snapshot-id counter with the store.
        """
        self._intent_lsn = {
            seq: entry.lsn for seq, entry in state.inflight.items()
        }
        self._intent_targets = {
            seq: set(entry.targets)
            for seq, entry in state.inflight.items()
        }
        self._appends_since_checkpoint = 0
        existing = self.store.ids()
        self._next_snapshot_id = (max(existing) + 1) if existing else 0

    @property
    def inflight_sequences(self) -> Set[int]:
        """Sequences with at least one unacked delivery (diagnostics)."""
        return set(self._intent_targets)
