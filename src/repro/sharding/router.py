"""Routed publish and scattered subscriptions over K shard brokers.

**Routing** is the paper's O(N) point resolution reused as a shard
key: :meth:`ShardRouter.resolve` locates a publication's subset via
:class:`~repro.clustering.groups.SpacePartition` (grid cell lookup +
one dict probe) and maps the subset to its owning shard; catchall
publications map cell-wise through the consistent-hash ring, with
out-of-frame points quantized onto a stable pseudo-cell first.

**Scatter** keeps shard-local matching exact: a subscription is
registered on *every* shard owning a cell its rectangle overlaps.  The
correctness invariant is geometric — an event in subset ``S_q`` lands
in a cell of ``S_q``, so any matching rectangle overlaps that cell and
was therefore scattered to the owner.  Rectangles escaping the grid
frame (any side beyond it, including infinite ones) may match
out-of-frame points anywhere, so they scatter to **all** shards.

**Dedup** falls out of the global id space: every shard registers
subscriptions under their *global* ``subscription_id`` and maps its
local matcher output back, so a shard's :class:`MatchResult` is
identical to the unsharded broker's — one delivery per interested
subscriber, no matter how many subsets the subscription spans (the
delivery layer's receiver dedup then guards the wire).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.broker import PubSubBroker
from ..core.distribution import DistributionDecision
from ..core.event import Event
from ..core.matching import MatchingEngine, MatchResult
from ..core.subscription import Subscription, SubscriptionTable
from ..geometry.gridmath import covered_cell_range
from ..geometry.rectangle import Rectangle
from ..telemetry.base import Telemetry, or_null
from .map import ShardMap

__all__ = ["ShardBroker", "ShardRouter", "RoutedPublish"]

_EMPTY_MATCH = MatchResult(subscription_ids=(), subscribers=())


@dataclass(frozen=True)
class RoutedPublish:
    """One publication's routing outcome: who owns it, what it matched."""

    q: int
    shard: int
    epoch: int
    match: MatchResult
    decision: DistributionDecision


class ShardBroker:
    """One shard's matching service over its scattered subscriptions.

    Keeps entries keyed by **global** subscription id and rebuilds a
    local positional table + matching engine lazily after changes; the
    local→global id mapping makes :meth:`match` return globally
    comparable results.
    """

    def __init__(self, shard_id: int, home: int, ndim: int):
        self.shard_id = int(shard_id)
        #: Network node hosting this shard (a transit/broker node).
        self.home = int(home)
        self.ndim = int(ndim)
        self._entries: Dict[int, Tuple[int, Rectangle]] = {}
        self._ids: List[int] = []
        self._engine: Optional[MatchingEngine] = None
        self._dirty = True
        #: Optional taps for durability/replication layers: called after
        #: an entry is admitted / removed, with the mutation already
        #: visible in ``_entries``.  ``on_register(gid, subscriber,
        #: rectangle)`` / ``on_withdraw(gid)``.
        self.on_register: Optional[Callable[[int, int, Rectangle], None]] = None
        self.on_withdraw: Optional[Callable[[int], None]] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def subscription_ids(self) -> List[int]:
        return sorted(self._entries)

    def register(self, subscription: Subscription) -> bool:
        """Admit one subscription; False if it was already here (dedup)."""
        gid = int(subscription.subscription_id)
        if gid in self._entries:
            return False
        self._entries[gid] = (
            int(subscription.subscriber),
            subscription.rectangle,
        )
        self._dirty = True
        if self.on_register is not None:
            self.on_register(
                gid, int(subscription.subscriber), subscription.rectangle
            )
        return True

    def withdraw(self, global_ids: Sequence[int]) -> int:
        """Drop subscriptions this shard no longer owns; returns count."""
        removed = 0
        for gid in global_ids:
            if self._entries.pop(int(gid), None) is not None:
                removed += 1
                if self.on_withdraw is not None:
                    self.on_withdraw(int(gid))
        if removed:
            self._dirty = True
        return removed

    def _rebuild(self) -> None:
        ids = sorted(self._entries)
        self._ids = ids
        if not ids:
            self._engine = None
        else:
            table = SubscriptionTable(self.ndim)
            for gid in ids:
                subscriber, rectangle = self._entries[gid]
                table.add(subscriber, rectangle)
            self._engine = MatchingEngine(table)
        self._dirty = False

    def match(self, event: Event) -> MatchResult:
        """Local match, reported in global subscription ids (sorted)."""
        if self._dirty:
            self._rebuild()
        if self._engine is None:
            return _EMPTY_MATCH
        local = self._engine.match(event)
        return MatchResult(
            subscription_ids=tuple(
                sorted(self._ids[i] for i in local.subscription_ids)
            ),
            subscribers=local.subscribers,
        )


class ShardRouter:
    """Resolve publications to shards; scatter subscriptions onto them.

    ``homes`` maps shard id → hosting network node; without one, shard
    ids double as node ids (enough for in-process tests).  ``down``
    tracks dead shards: subset ownership moves off them only through an
    explicit migration (the rebalancer's job), but catchall cells
    redistribute immediately via ring exclusion — call
    :meth:`mark_down` to trigger the re-scatter that keeps the
    survivors' matching exact.
    """

    def __init__(
        self,
        broker: PubSubBroker,
        shard_map: ShardMap,
        homes: Optional[Dict[int, int]] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.broker = broker
        self.partition = broker.partition
        self.map = shard_map
        self.telemetry = or_null(telemetry)
        self.down: Set[int] = set()
        self.scattered = 0
        ndim = broker.table.ndim
        homes = homes or {k: k for k in range(shard_map.num_shards)}
        self.shards: Dict[int, ShardBroker] = {
            k: ShardBroker(k, homes[k], ndim)
            for k in range(shard_map.num_shards)
        }
        for subscription in broker.table:
            self.scatter(subscription)

    # -- subscription scatter -------------------------------------------------

    def cells_of_rectangle(
        self, rectangle: Rectangle
    ) -> Optional[List[Tuple[int, ...]]]:
        """Grid cells a rectangle overlaps, or ``None`` if it escapes.

        ``None`` means the rectangle extends beyond the grid frame on
        some side — it may match out-of-frame publications, so no cell
        enumeration can bound where it must live.
        """
        grid = self.partition.grid
        lo = np.asarray(rectangle.lows, dtype=np.float64)
        hi = np.asarray(rectangle.highs, dtype=np.float64)
        if np.any(hi <= lo):
            return []  # empty rectangle: matches nothing anywhere
        if np.any(lo < grid.frame_lo) or np.any(hi > grid.frame_hi):
            return None
        first, last = covered_cell_range(
            lo, hi, grid.frame_lo, grid.cell_width, grid.cells_per_dim
        )
        ranges = [
            range(int(first[d]), int(last[d]) + 1) for d in range(grid.ndim)
        ]
        return [
            index
            for index in product(*ranges)
            if grid.cell_overlaps(index, lo, hi)
        ]

    def shards_of_rectangle(self, rectangle: Rectangle) -> List[int]:
        """Every shard that must hold this subscription (sorted)."""
        cells = self.cells_of_rectangle(rectangle)
        if cells is None:
            # Frame-escaping rectangle: an out-of-frame publication can
            # hash to any shard, so the subscription lives everywhere.
            return list(range(self.map.num_shards))
        owners: Set[int] = set()
        for index in cells:
            q = self.partition.group_of_cell(index)
            if q > 0:
                owners.add(self.map.owner_of_subset(q))
            else:
                owners.add(self.map.owner_of_cell(index, exclude=self.down))
        return sorted(owners)

    def subsets_of_rectangle(self, rectangle: Rectangle) -> List[int]:
        """Real subsets (``q >= 1``) a rectangle overlaps (sorted)."""
        cells = self.cells_of_rectangle(rectangle)
        if cells is None:
            return sorted(g.q for g in self.partition.groups)
        return sorted(
            {
                q
                for q in (
                    self.partition.group_of_cell(index) for index in cells
                )
                if q > 0
            }
        )

    def scatter(self, subscription: Subscription) -> int:
        """Register one subscription on every owning shard."""
        added = 0
        for shard in self.shards_of_rectangle(subscription.rectangle):
            if shard in self.down:
                continue
            if self.shards[shard].register(subscription):
                added += 1
        self.scattered += added
        if added and self.telemetry.enabled:
            self.telemetry.counter(
                "sharding.scattered",
                help="shard-level subscription registrations",
            ).inc(added)
        return added

    def subscriptions_of_subset(self, q: int) -> List[Subscription]:
        """Subscriptions that must follow subset ``q`` in a migration."""
        return [
            subscription
            for subscription in self.broker.table
            if int(q) in self.subsets_of_rectangle(subscription.rectangle)
        ]

    def refresh_shard(self, shard_id: int) -> int:
        """Drop entries a shard no longer owns under the current map.

        Idempotent: a second call finds nothing stale and changes
        nothing (returns 0).
        """
        shard = self.shards[int(shard_id)]
        stale = [
            gid
            for gid in shard.subscription_ids
            if shard.shard_id
            not in self.shards_of_rectangle(self.broker.table[gid].rectangle)
        ]
        return shard.withdraw(stale)

    def mark_down(self, shard_id: int) -> int:
        """Exclude a dead shard from catchall ownership and re-scatter.

        Subset ownership moves only via explicit migration; catchall
        cells redistribute by ring exclusion, so the survivors must
        pick up the subscriptions overlapping the cells they just
        inherited.  Returns the registrations added.

        Idempotent: marking a shard that is already down is a no-op —
        re-scattering again would double-count ``scattered`` and churn
        the survivors' engines for nothing.
        """
        if int(shard_id) in self.down:
            return 0
        self.down.add(int(shard_id))
        added = 0
        for subscription in self.broker.table:
            for shard in self.shards_of_rectangle(subscription.rectangle):
                if shard in self.down:
                    continue
                if self.shards[shard].register(subscription):
                    added += 1
        self.scattered += added
        return added

    # -- publication routing --------------------------------------------------

    def resolve(self, point: Sequence[float]) -> Tuple[int, int]:
        """``(q, shard)`` for one publication point — O(N) + dict probes."""
        q = self.partition.locate(point)
        if q > 0:
            return q, self.map.owner_of_subset(q)
        grid = self.partition.grid
        cell = grid.locate(point)
        if cell is None:
            cell = grid.quantize(point)
        return 0, self.map.owner_of_cell(cell, exclude=self.down)

    def catchall_cell(self, point: Sequence[float]) -> Tuple[int, ...]:
        """The (pseudo-)cell a catchall publication hashes through."""
        grid = self.partition.grid
        cell = grid.locate(point)
        if cell is None:
            cell = grid.quantize(point)
        return cell

    def route(self, event: Event) -> RoutedPublish:
        """Resolve, match at the owner, and decide the delivery method."""
        q, shard = self.resolve(event.point)
        match = self.shards[shard].match(event)
        group_size = self.partition.group(q).size if q > 0 else 0
        decision = self.broker.policy.decide(
            interested=match.num_subscribers,
            group_size=group_size,
            group=q,
        )
        if self.telemetry.enabled:
            self.telemetry.counter(
                "sharding.routed",
                help="publications routed to their owning shard",
                shard=str(shard),
            ).inc()
        return RoutedPublish(
            q=q,
            shard=shard,
            epoch=self.map.epoch,
            match=match,
            decision=decision,
        )

    # -- diagnostics ----------------------------------------------------------

    def shard_stats(self) -> List[Dict[str, object]]:
        """One row per shard for the CLI tables."""
        loads = self.map.shard_loads()
        return [
            {
                "shard": k,
                "home": self.shards[k].home,
                "subsets": self.map.subsets_of(k),
                "subscriptions": len(self.shards[k]),
                "planned_load": loads[k],
                "down": k in self.down,
            }
            for k in range(self.map.num_shards)
        ]
