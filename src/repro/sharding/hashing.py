"""Consistent hashing: the catchall's cell-granular shard key.

The space partition gives the sharding layer a natural unit of
ownership for ``S_1 .. S_n`` — whole subsets — but the catchall
``S_0`` is everything else: unclustered cells, empty space, and the
entire region outside the grid frame.  No precomputed load estimate
exists for it, so the :class:`ShardMap` spreads it *cell-wise* over a
consistent-hash ring: each grid cell (or out-of-frame pseudo-cell)
hashes to a point on the ring and belongs to the first shard at or
after it.

The ring is deterministic — BLAKE2b over stable string keys, no
process-seeded hashing — so every router, every test, and every
recovered broker derives the identical cell→shard assignment.
Virtual nodes smooth the split; :meth:`ConsistentHashRing.owner`
accepts an exclusion set so the cells of a dead shard redistribute to
the survivors without moving any other cell (the classic consistent-
hashing property the rebalancer leans on).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Collection, Iterable, List, Tuple

__all__ = ["ConsistentHashRing"]


def _hash64(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Deterministic hash ring over shard ids with virtual nodes."""

    def __init__(self, shards: Iterable[int], virtual_nodes: int = 64):
        members = sorted({int(s) for s in shards})
        if not members:
            raise ValueError(
                "ConsistentHashRing: need at least one shard on the ring "
                "(got none)"
            )
        if virtual_nodes < 1:
            raise ValueError(
                "ConsistentHashRing: virtual_nodes must be >= 1 "
                f"(got {virtual_nodes})"
            )
        self.shards: Tuple[int, ...] = tuple(members)
        self.virtual_nodes = int(virtual_nodes)
        points: List[Tuple[int, int]] = []
        for shard in members:
            for replica in range(self.virtual_nodes):
                points.append((_hash64(f"shard:{shard}:vnode:{replica}"), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def owner(self, key: str, exclude: Collection[int] = ()) -> int:
        """The shard owning ``key`` — first ring point at or after its hash.

        ``exclude`` skips dead shards: the walk continues clockwise
        until a live shard's virtual node is found, so only keys that
        hashed onto the dead shard move.
        """
        position = bisect.bisect_right(self._hashes, _hash64(f"key:{key}"))
        count = len(self._points)
        for step in range(count):
            shard = self._points[(position + step) % count][1]
            if shard not in exclude:
                return shard
        raise ValueError(
            "ConsistentHashRing: every shard on the ring is excluded "
            f"(got exclude covering all of {list(self.shards)})"
        )

    @staticmethod
    def cell_key(index: Tuple[int, ...]) -> str:
        """Stable string key for a grid cell (or pseudo-cell) index."""
        return "cell:" + ",".join(str(int(x)) for x in index)
