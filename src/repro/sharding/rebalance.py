"""Live subset migration: snapshot handoff, journaled cutover, fencing.

A migration moves one subset ``S_q`` between shards while publications
keep flowing, in three journaled phases (new
:class:`~repro.durability.wal.RecordKind` members ``MIGRATE_BEGIN`` /
``MIGRATE_CUTOVER`` / ``MIGRATE_DONE``):

1. **begin** — the subscriptions that must follow ``S_q`` are packed
   into a :class:`~repro.durability.snapshot.Snapshot` (digest-verified
   on install, exactly like a recovery checkpoint) and copied onto the
   destination; the source keeps serving.
2. **cutover** — :meth:`ShardMap.migrate` flips ownership and bumps the
   map **epoch** (the fencing token of :mod:`repro.replication.epoch`):
   any publication stamped with the old epoch that still reaches the
   old owner is stale and bounces back to the router.
3. **finish** — the source drops every subscription it no longer owns
   under the new map and the migration is marked done.

Crash semantics mirror the WAL's: a ``BEGIN`` without ``CUTOVER``
rolls *back* (the copy is discarded — the source never stopped
owning), a ``CUTOVER`` without ``DONE`` rolls *forward* (ownership
already flipped; only the source's cleanup is outstanding).

:meth:`Rebalancer.propose` closes the loop with
:mod:`repro.overload`: an ``OVERLOADED`` shard's heaviest subset is
offered to the least-loaded healthy shard.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Collection, Dict, List, Mapping, Optional, Tuple

from ..core.subscription import Subscription, SubscriptionTable
from ..durability.snapshot import Snapshot
from ..durability.wal import MemoryWAL, RecordKind, WriteAheadLog
from ..io import table_from_dict, table_to_dict
from ..overload.health import BrokerHealth
from ..telemetry.base import Telemetry, or_null
from .router import ShardRouter

__all__ = [
    "MigrationPhase",
    "MigrationTicket",
    "RecoverySummary",
    "Rebalancer",
]


class MigrationPhase(enum.Enum):
    """Where one migration stands in the begin→cutover→finish protocol."""

    COPYING = "copying"
    CUTOVER = "cutover"
    DONE = "done"
    ABORTED = "aborted"


@dataclass
class MigrationTicket:
    """One in-flight (or finished) migration's full paper trail."""

    migration_id: int
    q: int
    source: int
    dest: int
    begun_at: float
    moved_ids: Tuple[int, ...]
    handoff_digest: str
    phase: MigrationPhase = MigrationPhase.COPYING
    epoch: int = 0
    finished_at: float = 0.0
    dropped_at_source: int = 0


@dataclass(frozen=True)
class RecoverySummary:
    """What a journal replay after a crash decided."""

    rolled_forward: Tuple[int, ...] = ()
    rolled_back: Tuple[int, ...] = ()


class Rebalancer:
    """Migrates subsets between shards, journaled and digest-checked."""

    def __init__(
        self,
        router: ShardRouter,
        wal: Optional[WriteAheadLog] = None,
        clock: Optional[Callable[[], float]] = None,
        telemetry: Optional[Telemetry] = None,
        on_cutover: Optional[Callable[[MigrationTicket], None]] = None,
    ):
        self.router = router
        self.map = router.map
        self.clock = clock or (lambda: 0.0)
        self.wal = wal if wal is not None else MemoryWAL(clock=self.clock)
        self.telemetry = or_null(telemetry)
        self.on_cutover = on_cutover
        self.completed = 0
        self.aborted = 0
        self._next_id = 0
        self._active: Dict[int, MigrationTicket] = {}

    # -- the three phases -----------------------------------------------------

    def begin(self, q: int, dest: int) -> MigrationTicket:
        """Copy subset ``q``'s subscriptions onto ``dest`` (phase 1)."""
        q = int(q)
        source = self.map.owner_of_subset(q)
        dest = self.map._check_shard(dest)
        if dest == source:
            raise ValueError(
                f"ShardMap: subset {q} already lives on shard {dest}"
            )
        if q in self._active:
            raise ValueError(
                f"Rebalancer: migration of subset {q} already in progress"
            )
        now = float(self.clock())
        moving = self.router.subscriptions_of_subset(q)
        moved_ids = tuple(
            int(s.subscription_id)
            for s in sorted(moving, key=lambda s: s.subscription_id)
        )
        handoff = self._pack(moving, now)
        self.wal.append(
            RecordKind.MIGRATE_BEGIN,
            {
                "migration": self._next_id,
                "q": q,
                "source": source,
                "dest": dest,
                "ids": list(moved_ids),
                "digest": handoff.digest(),
            },
        )
        ticket = MigrationTicket(
            migration_id=self._next_id,
            q=q,
            source=source,
            dest=dest,
            begun_at=now,
            moved_ids=moved_ids,
            handoff_digest=handoff.digest(),
        )
        self._next_id += 1
        self._active[q] = ticket
        self._install(handoff, moved_ids, dest)
        return ticket

    def _pack(self, moving: List[Subscription], now: float) -> Snapshot:
        """The handoff payload: a digest-verified durability snapshot."""
        ordered = sorted(moving, key=lambda s: s.subscription_id)
        table = SubscriptionTable(self.router.broker.table.ndim)
        for subscription in ordered:
            table.add(subscription.subscriber, subscription.rectangle)
        return Snapshot(
            snapshot_id=self._next_id,
            checkpoint_lsn=self.wal.end_lsn,
            table=table_to_dict(table),
            taken_at=now,
        )

    def _install(
        self, handoff: Snapshot, moved_ids: Tuple[int, ...], dest: int
    ) -> int:
        """Decode the handoff on the destination (digest re-verified)."""
        verified = Snapshot.from_dict(handoff.to_dict())
        decoded = table_from_dict(verified.table)
        target = self.router.shards[dest]
        installed = 0
        for local, gid in enumerate(moved_ids):
            entry = decoded[local]
            if target.register(
                Subscription(
                    subscription_id=gid,
                    subscriber=entry.subscriber,
                    rectangle=entry.rectangle,
                )
            ):
                installed += 1
        return installed

    def cutover(self, ticket: MigrationTicket) -> int:
        """Flip ownership and bump the fencing epoch (phase 2)."""
        if ticket.phase is not MigrationPhase.COPYING:
            raise ValueError(
                f"Rebalancer: cannot cut over a migration in phase "
                f"{ticket.phase.value!r}"
            )
        epoch = self.map.migrate(ticket.q, ticket.dest)
        self.wal.append(
            RecordKind.MIGRATE_CUTOVER,
            {
                "migration": ticket.migration_id,
                "q": ticket.q,
                "source": ticket.source,
                "dest": ticket.dest,
                "epoch": epoch,
            },
        )
        ticket.phase = MigrationPhase.CUTOVER
        ticket.epoch = epoch
        if self.on_cutover is not None:
            self.on_cutover(ticket)
        return epoch

    def finish(self, ticket: MigrationTicket) -> MigrationTicket:
        """Source cleanup + journal close (phase 3)."""
        if ticket.phase is not MigrationPhase.CUTOVER:
            raise ValueError(
                f"Rebalancer: cannot finish a migration in phase "
                f"{ticket.phase.value!r}"
            )
        ticket.dropped_at_source = self.router.refresh_shard(ticket.source)
        now = float(self.clock())
        self.wal.append(
            RecordKind.MIGRATE_DONE,
            {
                "migration": ticket.migration_id,
                "q": ticket.q,
                "aborted": False,
                "dropped": ticket.dropped_at_source,
            },
        )
        ticket.phase = MigrationPhase.DONE
        ticket.finished_at = now
        self._active.pop(ticket.q, None)
        self.completed += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "sharding.migrations",
                help="completed subset migrations",
            ).inc()
            self.telemetry.histogram(
                "sharding.migration_duration",
                help="begin-to-finish migration time, simulated units",
            ).observe(now - ticket.begun_at)
            self.telemetry.gauge(
                "sharding.imbalance",
                help="max/mean planned shard load",
            ).set(self.map.imbalance())
        return ticket

    def abort(self, ticket: MigrationTicket) -> MigrationTicket:
        """Discard a pre-cutover copy (e.g. the destination died)."""
        if ticket.phase is not MigrationPhase.COPYING:
            raise ValueError(
                f"Rebalancer: only a pre-cutover migration can abort "
                f"(phase {ticket.phase.value!r})"
            )
        self.wal.append(
            RecordKind.MIGRATE_DONE,
            {
                "migration": ticket.migration_id,
                "q": ticket.q,
                "aborted": True,
                "dropped": 0,
            },
        )
        # The copies are only stale if nothing else entitles the
        # destination to them — refresh decides per subscription.
        self.router.refresh_shard(ticket.dest)
        ticket.phase = MigrationPhase.ABORTED
        ticket.finished_at = float(self.clock())
        self._active.pop(ticket.q, None)
        self.aborted += 1
        return ticket

    def migrate(self, q: int, dest: int) -> MigrationTicket:
        """The whole protocol in one call (tests, CLI planning)."""
        ticket = self.begin(q, dest)
        self.cutover(ticket)
        return self.finish(ticket)

    # -- rebalance proposals --------------------------------------------------

    def propose(
        self, distressed: int, exclude: Collection[int] = ()
    ) -> Optional[Tuple[int, int]]:
        """``(q, dest)`` moving the heaviest subset off ``distressed``.

        ``dest`` is the least-loaded shard outside ``exclude`` (and not
        the distressed shard itself); ``None`` when the distressed
        shard owns nothing or no destination is eligible.
        """
        distressed = int(distressed)
        subsets = self.map.subsets_of(distressed)
        if not subsets:
            return None
        loads = self.map.shard_loads()
        candidates = [
            shard
            for shard in range(self.map.num_shards)
            if shard != distressed and shard not in exclude
        ]
        if not candidates:
            return None
        q = max(subsets, key=lambda s: (self.map.load_of_subset(s), -s))
        dest = min(candidates, key=lambda s: (loads[s], s))
        return q, dest

    def propose_from_health(
        self, health: Mapping[int, BrokerHealth]
    ) -> Optional[Tuple[int, int]]:
        """React to overload signals: shed load off an OVERLOADED shard."""
        overloaded = sorted(
            shard
            for shard, state in health.items()
            if state is BrokerHealth.OVERLOADED
        )
        if not overloaded:
            return None
        unhealthy = {
            shard
            for shard, state in health.items()
            if state is not BrokerHealth.HEALTHY
        }
        return self.propose(overloaded[0], exclude=unhealthy)

    # -- crash recovery -------------------------------------------------------

    def recover(self) -> RecoverySummary:
        """Replay the migration journal and resolve incomplete entries.

        Idempotent against the router's current in-memory state:
        rolled-forward migrations re-run cutover only if the map still
        shows the old owner, and both directions finish with a
        refresh of the affected shard.
        """
        begun: Dict[int, dict] = {}
        cut: Dict[int, dict] = {}
        done: Dict[int, dict] = {}
        for record in self.wal.scan().records:
            body = record.body
            if record.kind is RecordKind.MIGRATE_BEGIN:
                begun[int(body["migration"])] = body
            elif record.kind is RecordKind.MIGRATE_CUTOVER:
                cut[int(body["migration"])] = body
            elif record.kind is RecordKind.MIGRATE_DONE:
                done[int(body["migration"])] = body
        forward: List[int] = []
        back: List[int] = []
        for migration_id in sorted(begun):
            if migration_id in done:
                continue
            body = begun[migration_id]
            q, source, dest = (
                int(body["q"]),
                int(body["source"]),
                int(body["dest"]),
            )
            ticket = self._active.get(q)
            if migration_id in cut:
                # Ownership already flipped; only cleanup is pending.
                if self.map.owner_of_subset(q) == source:
                    self.map.migrate(q, dest)
                if ticket is None:
                    ticket = MigrationTicket(
                        migration_id=migration_id,
                        q=q,
                        source=source,
                        dest=dest,
                        begun_at=float(body.get("t", 0.0)),
                        moved_ids=tuple(int(x) for x in body["ids"]),
                        handoff_digest=str(body["digest"]),
                    )
                ticket.phase = MigrationPhase.CUTOVER
                ticket.epoch = int(cut[migration_id]["epoch"])
                self._active[q] = ticket
                self.finish(ticket)
                forward.append(migration_id)
            else:
                # Copy never cut over: discard it, the source still owns.
                if ticket is None:
                    ticket = MigrationTicket(
                        migration_id=migration_id,
                        q=q,
                        source=source,
                        dest=dest,
                        begun_at=float(body.get("t", 0.0)),
                        moved_ids=tuple(int(x) for x in body["ids"]),
                        handoff_digest=str(body["digest"]),
                    )
                    self._active[q] = ticket
                self.abort(ticket)
                back.append(migration_id)
        return RecoverySummary(
            rolled_forward=tuple(forward), rolled_back=tuple(back)
        )
