"""Partition-aligned sharding: the broker scaled out over K shards.

The paper's space partition ``S_0 .. S_n`` is a ready-made shard key:
each shard owns whole subsets (plus a consistent-hash slice of the
catchall's cells), publications route to their owner in O(N), and
subscriptions scatter onto every shard whose cells they overlap — so
each shard runs the unchanged match → threshold-decide → multicast
pipeline over a fraction of the subscription table, producing exactly
the MatchResults a single unsharded broker would.

- :mod:`~repro.sharding.hashing` — the deterministic hash ring.
- :mod:`~repro.sharding.map` — subset→shard assignment (greedy
  bin-pack over expected load) with epoch-stamped migrations.
- :mod:`~repro.sharding.router` — routed publish, scattered
  subscriptions, global-id dedup.
- :mod:`~repro.sharding.rebalance` — live migration: durability
  snapshot handoff, journaled cutover, epoch fencing, overload-driven
  proposals.
"""

from .hashing import ConsistentHashRing
from .map import ShardMap
from .rebalance import (
    MigrationPhase,
    MigrationTicket,
    Rebalancer,
    RecoverySummary,
)
from .router import RoutedPublish, ShardBroker, ShardRouter

__all__ = [
    "ConsistentHashRing",
    "ShardMap",
    "ShardBroker",
    "ShardRouter",
    "RoutedPublish",
    "Rebalancer",
    "MigrationPhase",
    "MigrationTicket",
    "RecoverySummary",
]
