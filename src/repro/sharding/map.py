"""The shard map: which shard owns which piece of the event space.

Ownership follows the paper's space partition (Section 4): each real
subset ``S_q`` (``q >= 1``) is owned *whole* by exactly one of the
``K`` shard brokers, so the match → threshold-decide → multicast
pipeline runs unchanged inside a shard.  Assignment balances
**expected load** — each subset costs roughly ``|M_q| * (1 +
expected_waste)``, its multicast group size inflated by the waste the
clustering already predicted (the ``+1`` keeps zero-waste subsets from
vanishing from the packing) — greedily: heaviest subset first onto the
currently lightest shard, ties broken on subset then shard id, so the
plan is a pure function of the partition.

The catchall ``S_0`` has no group and no load estimate; its cells are
spread by the :class:`~repro.sharding.hashing.ConsistentHashRing`.

Every ownership *change* (a migration) bumps the map ``epoch`` — the
fencing token of :mod:`repro.replication.epoch` applied to routing: a
publication stamped with an older epoch that reaches the old owner is
stale and must bounce.
"""

from __future__ import annotations

from typing import Collection, Dict, List, Tuple

from ..clustering.groups import MulticastGroup, SpacePartition
from .hashing import ConsistentHashRing

__all__ = ["ShardMap"]


class ShardMap:
    """Subset → shard assignment with epoch-stamped migrations."""

    def __init__(self, num_shards: int, virtual_nodes: int = 64):
        if num_shards < 1:
            raise ValueError(
                f"ShardMap: num_shards must be >= 1 (got {num_shards})"
            )
        self.num_shards = int(num_shards)
        self.epoch = 0
        self.migrations = 0
        self.ring = ConsistentHashRing(range(self.num_shards), virtual_nodes)
        self._owner: Dict[int, int] = {}
        self._load: Dict[int, float] = {}

    # -- planning ------------------------------------------------------------

    @staticmethod
    def expected_load(group: MulticastGroup) -> float:
        """Packing weight of one subset: members × (1 + expected waste)."""
        return group.size * (1.0 + group.expected_waste)

    @classmethod
    def plan(
        cls,
        partition: SpacePartition,
        num_shards: int,
        virtual_nodes: int = 64,
    ) -> ShardMap:
        """Greedy bin-pack of ``S_1 .. S_n`` onto ``num_shards`` shards."""
        shard_map = cls(num_shards, virtual_nodes=virtual_nodes)
        order = sorted(
            partition.groups,
            key=lambda g: (-cls.expected_load(g), g.q),
        )
        totals = {shard: 0.0 for shard in range(shard_map.num_shards)}
        for group in order:
            shard = min(totals, key=lambda s: (totals[s], s))
            load = cls.expected_load(group)
            shard_map.assign(group.q, shard, load=load)
            totals[shard] += load
        return shard_map

    # -- assignment ----------------------------------------------------------

    def _check_shard(self, shard: int) -> int:
        shard = int(shard)
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"ShardMap: shard {shard} out of range "
                f"0..{self.num_shards - 1}"
            )
        return shard

    def assign(self, q: int, shard: int, load: float = 0.0) -> None:
        """Give subset ``q`` (1-based) to ``shard`` at plan time."""
        q = int(q)
        if q < 1:
            raise ValueError(
                f"ShardMap: subset must be >= 1 (got {q}); the catchall "
                "S_0 is owned cell-wise by the hash ring"
            )
        shard = self._check_shard(shard)
        if q in self._owner:
            raise ValueError(
                f"ShardMap: subset {q} already assigned to shard "
                f"{self._owner[q]}"
            )
        self._owner[q] = shard
        self._load[q] = float(load)

    def migrate(self, q: int, to: int) -> int:
        """Move subset ``q`` to shard ``to``; returns the new epoch."""
        owner = self.owner_of_subset(q)
        to = self._check_shard(to)
        if to == owner:
            raise ValueError(
                f"ShardMap: subset {q} already lives on shard {to}"
            )
        self._owner[int(q)] = to
        self.epoch += 1
        self.migrations += 1
        return self.epoch

    # -- resolution ----------------------------------------------------------

    def owner_of_subset(self, q: int) -> int:
        q = int(q)
        if q not in self._owner:
            raise ValueError(
                f"ShardMap: subset {q} is not assigned to any shard"
            )
        return self._owner[q]

    def owner_of_cell(
        self, index: Tuple[int, ...], exclude: Collection[int] = ()
    ) -> int:
        """Ring owner of one catchall cell (or out-of-frame pseudo-cell)."""
        return self.ring.owner(
            ConsistentHashRing.cell_key(index), exclude=exclude
        )

    def subsets_of(self, shard: int) -> List[int]:
        shard = self._check_shard(shard)
        return sorted(q for q, s in self._owner.items() if s == shard)

    def load_of_subset(self, q: int) -> float:
        return self._load.get(int(q), 0.0)

    def shard_loads(self) -> Dict[int, float]:
        """Summed planned load per shard (catchall excluded — no estimate)."""
        totals = {shard: 0.0 for shard in range(self.num_shards)}
        for q, shard in self._owner.items():
            totals[shard] += self._load.get(q, 0.0)
        return totals

    def imbalance(self) -> float:
        """max/mean planned shard load; 1.0 is perfect, 0.0 means empty."""
        totals = list(self.shard_loads().values())
        mean = sum(totals) / len(totals)
        if mean == 0.0:
            return 0.0
        return max(totals) / mean

    # -- persistence ---------------------------------------------------------

    def to_state(self) -> Dict:
        """JSON-ready encoding (same spirit as SpacePartition.to_state)."""
        return {
            "num_shards": self.num_shards,
            "virtual_nodes": self.ring.virtual_nodes,
            "epoch": self.epoch,
            "migrations": self.migrations,
            "owners": [
                [q, self._owner[q], self._load.get(q, 0.0)]
                for q in sorted(self._owner)
            ],
        }

    @classmethod
    def restore(cls, state: Dict) -> ShardMap:
        shard_map = cls(
            int(state["num_shards"]),
            virtual_nodes=int(state.get("virtual_nodes", 64)),
        )
        for q, shard, load in state["owners"]:
            shard_map.assign(int(q), int(shard), load=float(load))
        shard_map.epoch = int(state.get("epoch", 0))
        shard_map.migrations = int(state.get("migrations", 0))
        return shard_map
