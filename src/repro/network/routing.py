"""Shortest-path routing over a generated topology.

The experiments charge every delivery to network links: a unicast pays
the shortest-path cost from publisher to subscriber, and a dense-mode
multicast pays each edge of the shortest-path tree (rooted at the
publisher) that carries the message.  This module precomputes the
all-pairs shortest-path machinery — distance and predecessor matrices
via ``scipy.sparse.csgraph.dijkstra`` — once per topology, so per-event
cost evaluation during the Figure 6 sweeps is just array walks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from .topology import Topology

__all__ = ["RoutingTable", "surviving_path", "path_cost"]


class RoutingTable:
    """All-pairs shortest paths with predecessor tracking.

    Node ids are assumed to be ``0..n-1`` (as produced by
    :class:`~repro.network.topology.TransitStubGenerator`); arbitrary
    graphs are relabelled on entry.
    """

    def __init__(self, graph: nx.Graph):
        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            graph = nx.convert_node_labels_to_integers(
                graph, ordering="sorted"
            )
            nodes = sorted(graph.nodes())
        self.num_nodes = len(nodes)
        rows: List[int] = []
        cols: List[int] = []
        costs: List[float] = []
        for u, v, data in graph.edges(data=True):
            cost = float(data["cost"])
            if cost <= 0:
                raise ValueError(f"edge ({u},{v}) has non-positive cost")
            rows.extend((u, v))
            cols.extend((v, u))
            costs.extend((cost, cost))
        matrix = csr_matrix(
            (costs, (rows, cols)), shape=(self.num_nodes, self.num_nodes)
        )
        self._dist, self._pred = dijkstra(
            matrix, directed=False, return_predecessors=True
        )
        self._cost_lookup: Dict[Tuple[int, int], float] = {}
        for u, v, data in graph.edges(data=True):
            cost = float(data["cost"])
            self._cost_lookup[(u, v)] = cost
            self._cost_lookup[(v, u)] = cost

    @classmethod
    def from_topology(cls, topology: Topology) -> RoutingTable:
        return cls(topology.graph)

    # -- primitives --------------------------------------------------------

    def distance(self, source: int, target: int) -> float:
        """Shortest-path cost between two nodes."""
        return float(self._dist[source, target])

    def path(self, source: int, target: int) -> List[int]:
        """One shortest path, as a node list from ``source`` to ``target``."""
        if source == target:
            return [source]
        if not np.isfinite(self._dist[source, target]):
            raise ValueError(f"no path from {source} to {target}")
        path = [target]
        node = target
        while node != source:
            node = int(self._pred[source, node])
            path.append(node)
        path.reverse()
        return path

    def edge_cost(self, u: int, v: int) -> float:
        """Cost of a direct edge (raises for non-edges)."""
        try:
            return self._cost_lookup[(u, v)]
        except KeyError:
            raise ValueError(f"({u}, {v}) is not an edge") from None

    # -- aggregate costs ------------------------------------------------------

    def unicast_cost(self, source: int, targets: Iterable[int]) -> float:
        """Total cost of separate unicasts from ``source`` to each target.

        Each unicast traverses its own shortest path and pays every
        link on it, even links shared with other unicasts — that is
        precisely what makes multicast attractive.
        """
        targets = list(targets)
        if not targets:
            return 0.0
        return float(self._dist[source, np.asarray(targets, dtype=np.int64)].sum())

    def shortest_path_tree_cost(
        self, source: int, targets: Iterable[int]
    ) -> float:
        """Cost of the dense-mode multicast tree reaching ``targets``.

        Dense-mode multicast routes over the shortest-path tree rooted
        at the publisher; each tree edge carrying the message is paid
        once, regardless of how many group members sit behind it.  The
        cost is the summed cost of the union of root→target shortest
        paths.
        """
        cost = 0.0
        visited = {source}
        pred_row = self._pred[source]
        for target in targets:
            node = int(target)
            walk: List[int] = []
            while node not in visited:
                walk.append(node)
                parent = int(pred_row[node])
                if parent < 0:
                    raise ValueError(
                        f"no path from {source} to {target}"
                    )
                node = parent
            # ``node`` is the first already-covered ancestor; pay the
            # new edges from there out to the target.
            prev = node
            for fresh in reversed(walk):
                cost += self._cost_lookup[(prev, fresh)]
                visited.add(fresh)
                prev = fresh
        return cost

    def tree_edges(
        self, source: int, targets: Iterable[int]
    ) -> List[Tuple[int, int]]:
        """The edges of the dense-mode tree (for inspection/tests)."""
        edges: List[Tuple[int, int]] = []
        visited = {source}
        pred_row = self._pred[source]
        for target in targets:
            node = int(target)
            walk: List[int] = []
            while node not in visited:
                walk.append(node)
                node = int(pred_row[node])
            prev = node
            for fresh in reversed(walk):
                edges.append((prev, fresh))
                visited.add(fresh)
                prev = fresh
        return edges

    def eccentricity(self, source: int) -> float:
        """Largest finite shortest-path cost out of ``source``."""
        row = self._dist[source]
        return float(row[np.isfinite(row)].max())

    def diameter(self) -> float:
        """Largest finite shortest-path cost between any node pair.

        Bounds the one-way propagation of any unicast; the reliable
        transport sizes its retransmission timeout from it.
        """
        return float(self._dist[np.isfinite(self._dist)].max())


def surviving_path(
    graph: nx.Graph,
    source: int,
    target: int,
    dead_links: frozenset[Tuple[int, int]] | set,
    dead_nodes: frozenset[int] | set,
) -> List[int] | None:
    """Shortest path avoiding dead links/nodes, or ``None`` if cut off.

    ``dead_links`` holds undirected node pairs (any orientation).  Used
    by the graceful-degradation paths to reroute deliveries around
    failed components; a ``None`` return means the target is currently
    partitioned away (or itself dead).
    """
    source, target = int(source), int(target)
    if source in dead_nodes or target in dead_nodes:
        return None
    if source == target:
        return [source]
    hidden_edges = [
        pair for (u, v) in dead_links for pair in ((u, v), (v, u))
    ]
    try:
        alive = nx.restricted_view(graph, list(dead_nodes), hidden_edges)
        return [
            int(n)
            for n in nx.dijkstra_path(alive, source, target, weight="cost")
        ]
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None


def path_cost(graph: nx.Graph, path: Sequence[int]) -> float:
    """Summed edge cost of a node path over ``graph``."""
    return float(
        sum(
            graph.edges[u, v]["cost"]
            for u, v in zip(path[:-1], path[1:])
        )
    )
