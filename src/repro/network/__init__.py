"""Network substrate: transit-stub topologies, routing, delivery costs.

Replaces the paper's GT-ITM-generated testbed (Section 5, Figure 3)
with a faithful in-Python transit-stub generator, plus the dense-mode
multicast cost model used to score distribution schemes.
"""

from .multicast import CostTally, DeliveryCostModel
from .routing import RoutingTable
from .topology import Topology, TransitStubGenerator, TransitStubParams

__all__ = [
    "CostTally",
    "DeliveryCostModel",
    "RoutingTable",
    "Topology",
    "TransitStubGenerator",
    "TransitStubParams",
]
