"""Topology export for external visualization (Figure 3's picture).

The paper's Figure 3 is a drawing of the generated network.  This
module emits Graphviz DOT so the topology can actually be drawn
(``dot -Kneato -Tsvg topology.dot``), with the transit/stub hierarchy
encoded in node shapes/colors and edge weights in the pen width.  No
drawing library is required or imported — the output is plain text.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from .topology import Topology

__all__ = ["topology_to_dot", "write_dot"]

_BLOCK_COLORS = (
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
)


def topology_to_dot(
    topology: Topology,
    include_stub_nodes: bool = True,
    max_stub_nodes_per_stub: Optional[int] = None,
) -> str:
    """Render a topology as a Graphviz DOT document.

    ``include_stub_nodes=False`` draws only the backbone (transit
    nodes plus one collapsed node per stub), which is usually the
    readable view at the paper's 600-node scale;
    ``max_stub_nodes_per_stub`` truncates each stub's drawn members
    instead.
    """
    lines = [
        "graph topology {",
        "  layout=neato;",
        "  overlap=false;",
        '  node [fontsize=8, width=0.15, height=0.15, fixedsize=true];',
        "  edge [color=\"#999999\"];",
    ]
    drawn = set()
    for node, data in sorted(topology.graph.nodes(data=True)):
        color = _BLOCK_COLORS[data["block"] % len(_BLOCK_COLORS)]
        if data["kind"] == "transit":
            lines.append(
                f'  n{node} [shape=square, style=filled, '
                f'fillcolor="{color}", label="{node}"];'
            )
            drawn.add(node)
        elif include_stub_nodes:
            stub = data["stub"]
            if max_stub_nodes_per_stub is not None:
                position = topology.stub_members[stub].index(node)
                if position >= max_stub_nodes_per_stub:
                    continue
            lines.append(
                f'  n{node} [shape=circle, style=filled, '
                f'fillcolor="{color}40", color="{color}", label=""];'
            )
            drawn.add(node)
    if not include_stub_nodes:
        for stub, members in enumerate(topology.stub_members):
            color = _BLOCK_COLORS[
                topology.stub_block[stub] % len(_BLOCK_COLORS)
            ]
            lines.append(
                f'  s{stub} [shape=circle, style=filled, '
                f'fillcolor="{color}40", color="{color}", '
                f'label="stub {stub}\\n({len(members)})"];'
            )
        for stub in range(topology.num_stubs):
            gateway = topology.stub_gateway_transit(stub)
            lines.append(f"  n{gateway} -- s{stub};")
    for u, v, data in topology.graph.edges(data=True):
        if u in drawn and v in drawn:
            width = max(0.3, min(3.0, 12.0 / float(data["cost"])))
            lines.append(f'  n{u} -- n{v} [penwidth={width:.2f}];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(
    topology: Topology,
    path: Union[str, Path],
    **options,
) -> Path:
    """Write the DOT document to a file; returns the path."""
    path = Path(path)
    path.write_text(topology_to_dot(topology, **options))
    return path
