"""Transit-stub network topology generation (GT-ITM style).

The paper's testbed (Section 5, Figure 3) is a 600-node hierarchical
network produced by the GT-ITM package: three *transit blocks* of about
five *transit nodes* each, every transit node attached to two *stubs*
on average, and every stub holding about twenty nodes.  GT-ITM itself
is a C package we cannot ship, so this module re-implements its
transit-stub construction (Zegura, Calvert & Bhattacharjee, INFOCOM
1996) directly:

- transit nodes within a block form a connected random graph,
- the blocks are interconnected (every pair of blocks gets at least one
  edge),
- each stub is a connected random graph of stub nodes hanging off its
  transit node via a single gateway edge.

Edge costs are drawn uniformly from per-tier ranges reflecting the
usual locality assumption (intra-stub links cheapest, inter-block links
most expensive); the experiments only consume the topology as a
weighted graph, so any cost assignment with this structure exercises
the identical code path as GT-ITM's output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

__all__ = ["TransitStubParams", "Topology", "TransitStubGenerator"]


@dataclass(frozen=True)
class TransitStubParams:
    """Knobs of the transit-stub generator.

    Defaults reproduce the paper's testbed: 3 blocks x ~5 transit
    nodes x 2 stubs x ~20 stub nodes ≈ 600 nodes.

    ``*_count`` values are *averages*: actual per-block/per-stub counts
    are drawn uniformly from ``avg ± spread`` (GT-ITM draws sizes from
    a distribution around the configured mean).
    """

    transit_blocks: int = 3
    transit_nodes_per_block: int = 5
    stubs_per_transit_node: int = 2
    nodes_per_stub: int = 20
    size_spread: int = 2
    extra_edge_prob: float = 0.3
    transit_cost: Tuple[float, float] = (10.0, 20.0)
    inter_block_cost: Tuple[float, float] = (20.0, 40.0)
    gateway_cost: Tuple[float, float] = (5.0, 10.0)
    stub_cost: Tuple[float, float] = (1.0, 5.0)

    def __post_init__(self) -> None:
        if self.transit_blocks < 1:
            raise ValueError("need at least one transit block")
        if self.transit_nodes_per_block < 1:
            raise ValueError("need at least one transit node per block")
        if self.stubs_per_transit_node < 1:
            raise ValueError("need at least one stub per transit node")
        if self.nodes_per_stub < 1:
            raise ValueError("need at least one node per stub")
        if not 0.0 <= self.extra_edge_prob <= 1.0:
            raise ValueError("extra_edge_prob must be a probability")


@dataclass
class Topology:
    """A generated transit-stub network.

    Attributes
    ----------
    graph:
        Undirected :class:`networkx.Graph`; every edge has a ``cost``
        attribute and every node has ``kind`` (``"transit"``/``"stub"``),
        ``block`` (transit-block index) and, for stub nodes, ``stub``
        (global stub index).
    transit_nodes:
        Per-block lists of transit node ids.
    stub_members:
        Per-stub lists of stub node ids.
    stub_block:
        Transit-block index owning each stub.
    """

    graph: nx.Graph
    transit_nodes: List[List[int]]
    stub_members: List[List[int]]
    stub_block: List[int] = field(default_factory=list)
    stub_owner: List[int] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    @property
    def num_stubs(self) -> int:
        return len(self.stub_members)

    @property
    def num_blocks(self) -> int:
        return len(self.transit_nodes)

    def all_stub_nodes(self) -> List[int]:
        """Every stub (leaf-network) node, in id order."""
        return sorted(n for ns in self.stub_members for n in ns)

    def all_transit_nodes(self) -> List[int]:
        """Every transit (backbone) node, in id order."""
        return sorted(n for ns in self.transit_nodes for n in ns)

    def stubs_in_block(self, block: int) -> List[int]:
        """Indices of the stubs attached to a transit block."""
        return [s for s, b in enumerate(self.stub_block) if b == block]

    def stub_gateway_transit(self, stub: int) -> int:
        """The transit node a stub hangs off.

        Uses the recorded owner when available (generator output);
        otherwise infers it from the gateway edge, so deserialized
        topologies from older files keep working.
        """
        if stub < len(self.stub_owner):
            return self.stub_owner[stub]
        for member in self.stub_members[stub]:
            for neighbor in self.graph.neighbors(member):
                if self.graph.nodes[neighbor]["kind"] == "transit":
                    return int(neighbor)
        raise ValueError(f"stub {stub} has no transit gateway")

    def transit_node_of(self, node: int) -> int:
        """The broker (transit node) serving a node.

        Transit nodes serve themselves; stub nodes are served by their
        stub's gateway transit node.
        """
        data = self.graph.nodes[node]
        if data["kind"] == "transit":
            return int(node)
        return self.stub_gateway_transit(int(data["stub"]))

    def edge_cost(self, u: int, v: int) -> float:
        """Cost attribute of the edge ``(u, v)``."""
        return float(self.graph.edges[u, v]["cost"])

    def replica_candidates(self, home: int, count: int) -> List[int]:
        """Ranked standby placement for a home broker, deterministic.

        Picks ``count`` transit nodes to replicate ``home``'s state
        onto, ordered by takeover preference.  Failure-domain
        diversity comes first: nodes in *other* transit blocks
        outrank nodes sharing ``home``'s block (a block models a
        shared fate domain — one provider's backbone).  Within each
        tier, nearer is better (shortest-path cost from ``home``),
        with node id as the final tie-break so the ranking is a pure
        function of the topology.
        """
        home = int(home)
        if self.graph.nodes[home]["kind"] != "transit":
            raise ValueError(
                f"replica_candidates: home {home} is not a transit node"
            )
        pool = [n for n in self.all_transit_nodes() if n != home]
        if count < 1 or count > len(pool):
            raise ValueError(
                f"replica_candidates: count must lie in 1..{len(pool)} "
                f"(got {count})"
            )
        home_block = int(self.graph.nodes[home]["block"])
        costs = nx.single_source_dijkstra_path_length(
            self.graph, home, weight="cost"
        )
        ranked = sorted(
            pool,
            key=lambda n: (
                int(self.graph.nodes[n]["block"]) == home_block,
                costs.get(n, float("inf")),
                n,
            ),
        )
        return ranked[:count]

    def degree_stats(self) -> Dict[str, float]:
        """Mean/min/max degree (Figure 3's structural summary)."""
        degrees = [d for _, d in self.graph.degree()]
        return {
            "mean": float(np.mean(degrees)),
            "min": float(min(degrees)),
            "max": float(max(degrees)),
        }

    def validate(self) -> None:
        """Raise :class:`ValueError` if structural invariants are violated.

        All violations use the same ``"invalid topology: ..."`` message
        prefix so callers can catch and report malformed topologies
        uniformly (e.g. on deserialization of hand-edited testbeds).
        """
        if not nx.is_connected(self.graph):
            raise ValueError("invalid topology: graph must be connected")
        for u, v, data in self.graph.edges(data=True):
            if data.get("cost", -1.0) <= 0:
                raise ValueError(
                    f"invalid topology: edge ({u}, {v}) has non-positive "
                    f"cost {data.get('cost')!r}"
                )
        for node, data in self.graph.nodes(data=True):
            if data.get("kind") not in ("transit", "stub"):
                raise ValueError(
                    f"invalid topology: node {node} missing node kind "
                    f"(expected 'transit' or 'stub', got "
                    f"{data.get('kind')!r})"
                )


class TransitStubGenerator:
    """Builds :class:`Topology` instances from :class:`TransitStubParams`."""

    def __init__(
        self,
        params: Optional[TransitStubParams] = None,
        seed: Optional[int] = None,
    ):
        self.params = params or TransitStubParams()
        self._rng = np.random.default_rng(seed)

    def generate(self) -> Topology:
        """Generate one connected transit-stub topology."""
        graph = nx.Graph()
        next_id = 0
        transit_nodes: List[List[int]] = []
        stub_members: List[List[int]] = []
        stub_block: List[int] = []
        stub_owner: List[int] = []

        for block in range(self.params.transit_blocks):
            count = self._draw_size(self.params.transit_nodes_per_block)
            nodes = list(range(next_id, next_id + count))
            next_id += count
            for node in nodes:
                graph.add_node(node, kind="transit", block=block)
            self._connect_random(graph, nodes, self.params.transit_cost)
            transit_nodes.append(nodes)

        self._interconnect_blocks(graph, transit_nodes)

        for block, block_nodes in enumerate(transit_nodes):
            for transit in block_nodes:
                for _ in range(self.params.stubs_per_transit_node):
                    count = self._draw_size(self.params.nodes_per_stub)
                    nodes = list(range(next_id, next_id + count))
                    next_id += count
                    stub_index = len(stub_members)
                    for node in nodes:
                        graph.add_node(
                            node, kind="stub", block=block, stub=stub_index
                        )
                    self._connect_random(graph, nodes, self.params.stub_cost)
                    gateway = int(self._rng.choice(nodes))
                    graph.add_edge(
                        transit,
                        gateway,
                        cost=self._draw_cost(self.params.gateway_cost),
                    )
                    stub_members.append(nodes)
                    stub_block.append(block)
                    stub_owner.append(transit)

        topology = Topology(
            graph=graph,
            transit_nodes=transit_nodes,
            stub_members=stub_members,
            stub_block=stub_block,
            stub_owner=stub_owner,
        )
        topology.validate()
        return topology

    # -- internals ---------------------------------------------------------

    def _draw_size(self, average: int) -> int:
        """Uniform draw from ``average ± spread``, at least 1."""
        spread = min(self.params.size_spread, average - 1)
        if spread <= 0:
            return average
        return int(self._rng.integers(average - spread, average + spread + 1))

    def _draw_cost(self, cost_range: Tuple[float, float]) -> float:
        lo, hi = cost_range
        return float(self._rng.uniform(lo, hi))

    def _connect_random(
        self,
        graph: nx.Graph,
        nodes: List[int],
        cost_range: Tuple[float, float],
    ) -> None:
        """Random spanning tree plus Bernoulli extra edges."""
        if len(nodes) <= 1:
            return
        shuffled = list(nodes)
        self._rng.shuffle(shuffled)
        for i in range(1, len(shuffled)):
            attach = shuffled[int(self._rng.integers(0, i))]
            graph.add_edge(
                shuffled[i], attach, cost=self._draw_cost(cost_range)
            )
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if graph.has_edge(u, v):
                    continue
                if self._rng.random() < self.params.extra_edge_prob:
                    graph.add_edge(u, v, cost=self._draw_cost(cost_range))

    def _interconnect_blocks(
        self, graph: nx.Graph, transit_nodes: List[List[int]]
    ) -> None:
        """Give every pair of transit blocks at least one direct edge."""
        for i in range(len(transit_nodes)):
            for j in range(i + 1, len(transit_nodes)):
                u = int(self._rng.choice(transit_nodes[i]))
                v = int(self._rng.choice(transit_nodes[j]))
                graph.add_edge(
                    u, v, cost=self._draw_cost(self.params.inter_block_cost)
                )
