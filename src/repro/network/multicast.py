"""Delivery-cost accounting for the distribution-method experiments.

Implements the paper's cost normalization (Section 5.2):

- **0% improvement** — every message is delivered by unicasts to
  exactly the interested subscribers.
- **100% improvement** — every message is delivered over a dense-mode
  multicast tree built *for exactly its interested subscribers* (the
  unattainable-in-practice bound, since it would need up to ``O(k^N)``
  precomputed groups).

A delivery scheme's improvement percentage is therefore::

    100 * (unicast_total - scheme_total) / (unicast_total - ideal_total)

summed over the full publication workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from typing import Tuple

from ..telemetry.base import Telemetry, or_null
from .routing import RoutingTable, path_cost, surviving_path
from .topology import Topology

__all__ = ["DeliveryCostModel", "CostTally", "DegradedDelivery"]


@dataclass
class CostTally:
    """Accumulated per-workload delivery costs.

    ``scheme`` is whatever delivery strategy is being evaluated;
    ``unicast`` and ``ideal`` are the paper's 0%/100% reference costs
    for the same messages.
    """

    messages: int = 0
    deliveries: int = 0
    scheme: float = 0.0
    unicast: float = 0.0
    ideal: float = 0.0
    multicasts_sent: int = 0
    unicasts_sent: int = 0

    def add(
        self,
        scheme_cost: float,
        unicast_cost: float,
        ideal_cost: float,
        recipients: int,
        used_multicast: bool,
    ) -> None:
        """Record one delivered message."""
        self.messages += 1
        self.deliveries += recipients
        self.scheme += scheme_cost
        self.unicast += unicast_cost
        self.ideal += ideal_cost
        if used_multicast:
            self.multicasts_sent += 1
        else:
            self.unicasts_sent += 1

    def skip(self) -> None:
        """Record a message with no interested subscribers (not sent)."""
        self.messages += 1

    @property
    def improvement_percent(self) -> float:
        """Paper's normalized improvement over all-unicast delivery."""
        denom = self.unicast - self.ideal
        if denom <= 0.0:
            # Unicast is already optimal for this workload; any scheme
            # matching it earns the full score, anything worse earns 0.
            return 100.0 if self.scheme <= self.unicast else 0.0
        return 100.0 * (self.unicast - self.scheme) / denom

    @property
    def average_message_cost(self) -> float:
        """Mean scheme cost per published message."""
        if self.messages == 0:
            return 0.0
        return self.scheme / self.messages

    def merge(self, other: CostTally) -> CostTally:
        """Sum two tallies (for sharded workloads)."""
        return CostTally(
            messages=self.messages + other.messages,
            deliveries=self.deliveries + other.deliveries,
            scheme=self.scheme + other.scheme,
            unicast=self.unicast + other.unicast,
            ideal=self.ideal + other.ideal,
            multicasts_sent=self.multicasts_sent + other.multicasts_sent,
            unicasts_sent=self.unicasts_sent + other.unicasts_sent,
        )


class DeliveryCostModel:
    """Computes unicast / multicast / ideal costs for one topology.

    Wraps a :class:`~repro.network.routing.RoutingTable` and adds the
    paper's three delivery primitives.  Multicast group trees are
    memoized per ``(source, group)`` because the same publisher sends
    to the same precomputed group for many events.

    Three multicast mechanisms are supported.  Section 5.2 describes
    the two router-supported modes and the paper's experiments assume
    dense mode; Section 1 notes the results are also "relevant to ...
    application level" multicasting (ALMI, reference [14]), which the
    overlay mode models:

    - ``"dense"`` — the routing tree is a shortest-path tree rooted at
      the *publisher*; per-group state grows with publishers x groups.
    - ``"sparse"`` — a single *shared* tree per group, rooted at a
      rendezvous point (chosen here as the group's cost-median
      member); the publisher first unicasts to the rendezvous point,
      then the message flows down the shared tree.  State is
      per-group only, at the price of non-optimal paths.
    - ``"overlay"`` — application-level multicast: no router support at
      all.  Group members form an overlay whose virtual links are
      unicast paths; the delivery tree is the minimum spanning tree of
      the complete member graph under shortest-path distances, entered
      from the publisher via its cheapest unicast to any member.  Every
      overlay edge is paid at its full underlying unicast cost, so
      shared physical links are charged repeatedly — the inefficiency
      that distinguishes ALM from router multicast.
    """

    #: Recognized multicast mechanisms.
    MODES = ("dense", "sparse", "overlay")

    def __init__(
        self,
        topology: Topology,
        multicast_mode: str = "dense",
        telemetry: Optional[Telemetry] = None,
    ):
        if multicast_mode not in self.MODES:
            raise ValueError(
                f"multicast_mode must be one of {self.MODES}, got "
                f"{multicast_mode!r}"
            )
        self.topology = topology
        self.multicast_mode = multicast_mode
        self.telemetry = or_null(telemetry)
        self.routing = RoutingTable.from_topology(topology)
        self._group_tree_cache: dict[tuple[int, frozenset[int]], float] = {}
        self._shared_tree_cache: dict[frozenset[int], tuple[int, float]] = {}
        self._overlay_tree_cache: dict[frozenset[int], float] = {}

    def unicast_cost(self, source: int, recipients: Iterable[int]) -> float:
        """Cost of one unicast per recipient."""
        return self.routing.unicast_cost(source, recipients)

    def multicast_cost(
        self, source: int, group_members: Iterable[int]
    ) -> float:
        """Cost of a group multicast under the configured router mode.

        The message reaches every group member — interested or not;
        that waste is exactly what the distribution-method threshold
        trades against the unicast fan-out cost.
        """
        members = frozenset(int(m) for m in group_members)
        if self.multicast_mode == "sparse":
            rendezvous, tree_cost = self._shared_tree(members)
            return self.routing.distance(source, rendezvous) + tree_cost
        if self.multicast_mode == "overlay":
            tree_cost = self._overlay_tree_cost(members)
            if int(source) in members:
                return tree_cost
            entry = min(
                self.routing.distance(source, m) for m in members
            )
            return entry + tree_cost
        key = (int(source), members)
        cached = self._group_tree_cache.get(key)
        if cached is None:
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "cost.group_tree.misses",
                    help="dense-mode group trees built",
                ).inc()
            cached = self.routing.shortest_path_tree_cost(source, members)
            self._group_tree_cache[key] = cached
        elif self.telemetry.enabled:
            self.telemetry.counter(
                "cost.group_tree.hits",
                help="dense-mode group trees served from cache",
            ).inc()
        return cached

    def rendezvous_point(self, group_members: Iterable[int]) -> int:
        """The sparse-mode rendezvous point chosen for a group.

        The cost-median member: the group member minimizing the total
        shortest-path cost to all members (a standard core-selection
        heuristic for core-based shared trees).
        """
        members = frozenset(int(m) for m in group_members)
        rendezvous, _ = self._shared_tree(members)
        return rendezvous

    def _shared_tree(self, members: frozenset[int]) -> tuple[int, float]:
        if not members:
            raise ValueError("cannot build a shared tree for no members")
        cached = self._shared_tree_cache.get(members)
        if cached is None:
            rendezvous = min(
                members,
                key=lambda m: (self.routing.unicast_cost(m, members), m),
            )
            cost = self.routing.shortest_path_tree_cost(
                rendezvous, members
            )
            cached = (rendezvous, cost)
            self._shared_tree_cache[members] = cached
        return cached

    def _overlay_tree_cost(self, members: frozenset[int]) -> float:
        """MST of the complete overlay graph (Prim's, O(m^2))."""
        if not members:
            raise ValueError("cannot build an overlay for no members")
        cached = self._overlay_tree_cache.get(members)
        if cached is not None:
            return cached
        nodes = sorted(members)
        in_tree = {nodes[0]}
        best = {
            node: self.routing.distance(nodes[0], node)
            for node in nodes[1:]
        }
        total = 0.0
        while best:
            node = min(best, key=lambda n: (best[n], n))
            total += best.pop(node)
            in_tree.add(node)
            for other in best:
                distance = self.routing.distance(node, other)
                if distance < best[other]:
                    best[other] = distance
        self._overlay_tree_cache[members] = total
        return total

    def ideal_cost(self, source: int, recipients: Iterable[int]) -> float:
        """Cost of a purpose-built multicast to exactly the recipients.

        This is the 100%-improvement reference: a dense-mode tree
        spanning just the interested subscribers (uncached — recipient
        sets rarely repeat).  The reference is mode-independent so
        improvement percentages stay comparable across modes.
        """
        return self.routing.shortest_path_tree_cost(source, recipients)

    def clear_cache(self) -> None:
        """Drop memoized group trees (e.g. after groups change)."""
        self._group_tree_cache.clear()
        self._shared_tree_cache.clear()
        self._overlay_tree_cache.clear()

    # -- graceful degradation under faults ---------------------------------

    def degraded_unicast_cost(
        self,
        source: int,
        recipients: Iterable[int],
        dead_links: Iterable[Tuple[int, int]] = (),
        dead_nodes: Iterable[int] = (),
    ) -> DegradedDelivery:
        """Unicast fan-out over whatever part of the network survives.

        Each recipient is charged its shortest path over the surviving
        graph (which may be pricier than the healthy-network path);
        recipients that are dead or partitioned away are reported as
        unreachable rather than silently skipped.
        """
        dead_links = _normalize_links(dead_links)
        dead_nodes = frozenset(int(n) for n in dead_nodes)
        if not dead_links and not dead_nodes:
            # Nothing is dead: charge the exact healthy-path cost so a
            # neutral fault snapshot is bit-for-bit free.
            recipients = [int(r) for r in recipients]
            return DegradedDelivery(
                cost=self.unicast_cost(source, recipients),
                reached=tuple(recipients),
                repaired=(),
                unreachable=(),
            )
        graph = self.topology.graph
        cost = 0.0
        reached: List[int] = []
        repaired: List[int] = []
        unreachable: List[int] = []
        for recipient in recipients:
            recipient = int(recipient)
            path = surviving_path(
                graph, source, recipient, dead_links, dead_nodes
            )
            if path is None:
                unreachable.append(recipient)
                continue
            leg = path_cost(graph, path)
            cost += leg
            healthy = self.routing.distance(source, recipient)
            if leg > healthy:
                repaired.append(recipient)
            else:
                reached.append(recipient)
        self._record_degraded("unicast", repaired, unreachable)
        return DegradedDelivery(
            cost=cost,
            reached=tuple(reached),
            repaired=tuple(repaired),
            unreachable=tuple(unreachable),
        )

    def degraded_multicast_cost(
        self,
        source: int,
        group_members: Iterable[int],
        interested: Optional[Iterable[int]] = None,
        dead_links: Iterable[Tuple[int, int]] = (),
        dead_nodes: Iterable[int] = (),
    ) -> DegradedDelivery:
        """Dense-mode multicast with tree repair and unicast fallback.

        The message flows down the healthy dense-mode tree as far as it
        can: edges whose link or endpoint is dead prune their whole
        subtree.  Interested subscribers stranded by the pruning are
        then repaired individually — a unicast over the surviving graph
        (rerouted via :mod:`repro.network.routing`), charged on top of
        the tree cost — or reported unreachable when no surviving path
        exists.  Uninterested stranded group members are simply not
        repaired: nobody needed the message there.
        """
        dead_links = _normalize_links(dead_links)
        dead_nodes = frozenset(int(n) for n in dead_nodes)
        members = [int(m) for m in group_members]
        member_set = set(members)
        if not dead_links and not dead_nodes:
            # Nothing is dead: the configured (possibly sparse/overlay)
            # multicast runs untouched, bit-for-bit.
            return DegradedDelivery(
                cost=self.multicast_cost(source, members),
                reached=tuple(sorted(member_set)),
                repaired=(),
                unreachable=(),
            )
        wanted = (
            member_set
            if interested is None
            else {int(n) for n in interested}
        )
        graph = self.topology.graph

        # Walk the healthy tree, pruning at the first dead element.
        children: dict[int, List[int]] = {}
        for u, v in self.routing.tree_edges(source, members):
            children.setdefault(u, []).append(v)
        cost = 0.0
        alive_reach = set()
        if source not in dead_nodes:
            alive_reach.add(source)
            frontier = [source]
            while frontier:
                node = frontier.pop()
                for child in children.get(node, []):
                    key = (node, child) if node <= child else (child, node)
                    if key in dead_links or child in dead_nodes:
                        continue
                    cost += graph.edges[node, child]["cost"]
                    alive_reach.add(child)
                    frontier.append(child)

        reached = sorted(member_set & alive_reach)
        stranded = sorted(wanted - alive_reach - {int(source)})
        repaired: List[int] = []
        unreachable: List[int] = []
        for subscriber in stranded:
            path = surviving_path(
                graph, source, subscriber, dead_links, dead_nodes
            )
            if path is None:
                unreachable.append(subscriber)
            else:
                cost += path_cost(graph, path)
                repaired.append(subscriber)
        self._record_degraded("multicast", repaired, unreachable)
        return DegradedDelivery(
            cost=cost,
            reached=tuple(reached),
            repaired=tuple(repaired),
            unreachable=tuple(unreachable),
        )

    def _record_degraded(
        self,
        method: str,
        repaired: Sequence[int],
        unreachable: Sequence[int],
    ) -> None:
        """Meter one degraded delivery's repair/partition outcome."""
        if not self.telemetry.enabled:
            return
        self.telemetry.counter(
            "cost.degraded.deliveries",
            help="deliveries costed against a fault snapshot",
            method=method,
        ).inc()
        if repaired:
            self.telemetry.counter(
                "cost.degraded.repaired",
                help="recipients rescued by detour or fallback unicast",
            ).inc(len(repaired))
        if unreachable:
            self.telemetry.counter(
                "cost.degraded.unreachable",
                help="recipients partitioned away entirely",
            ).inc(len(unreachable))


def _normalize_links(
    links: Iterable[Tuple[int, int]]
) -> frozenset[Tuple[int, int]]:
    """Canonical (min, max) form for undirected link identities."""
    return frozenset(
        (int(u), int(v)) if int(u) <= int(v) else (int(v), int(u))
        for u, v in links
    )


@dataclass(frozen=True)
class DegradedDelivery:
    """Outcome of one delivery over a partially-failed network.

    ``reached`` got the message at normal cost (tree or healthy path);
    ``repaired`` needed a detour or fallback unicast (their extra cost
    is already included in ``cost``); ``unreachable`` could not be
    served at all while the faults last.
    """

    cost: float
    reached: Tuple[int, ...]
    repaired: Tuple[int, ...]
    unreachable: Tuple[int, ...]

    @property
    def delivered(self) -> int:
        return len(self.reached) + len(self.repaired)
