"""The S-tree: an unbalanced spatial index packed for point queries.

This is the paper's matching structure (Section 3), following
Aggarwal, Wolf, Yu and Epelman, *Using unbalanced trees for indexing
multidimensional objects* (KAIS 1999).  Leaf and internal node records
look exactly like R-tree records — ``(MBR, subscription-id)`` at the
leaves and ``(MBR, child)`` internally — but the packing is different
and the tree is deliberately *not* height balanced.

Construction proceeds in the paper's two stages:

1. **Binarization** — a top-down recursive split.  A node holding
   ``N_A`` objects becomes a leaf when ``N_A <= M``.  Otherwise we take
   the node's minimum bounding rectangle, choose its *longest*
   dimension, order the objects by their centers along that dimension,
   and sweep candidate split positions ``q`` with
   ``p*N_A <= q <= (1-p)*N_A`` in increments of ``M`` (``p`` is the
   *skew factor*, typically 0.3).  The split minimizing the sum of the
   two child MBR volumes wins; ties go to the smaller total perimeter.

2. **Compression** — turn the binary tree into an M-ary tree.  First,
   every deepest internal node whose number of *leaf-node* descendants
   is at most ``M`` (while its parent's exceeds ``M``) swallows all
   internal nodes beneath it, becoming a *penultimate* node that
   directly parents its leaves.  Then, walking the remaining internal
   nodes top-down (breadth-first), each parent repeatedly collapses
   with its non-leaf child of highest *leaf number* (descendant object
   count) — growing its branch factor one child at a time — until the
   branch factor reaches ``M`` or all children are leaves.

Volumes of unbounded subscriptions (``volume >= 1000`` has an infinite
side) are measured against a bounded *packing frame* derived from the
finite coordinates present in the data, so the sweep objective stays
informative; query-time MBRs always use the true, unclipped bounds, so
correctness never depends on the frame.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.arrays import (
    bulk_centers,
    running_mbr_backward,
    running_mbr_forward,
)
from .base import PointMatcher

__all__ = ["STree", "STreeParams", "TreeShape"]

#: Default maximum branch factor ("about 40" in the paper).
DEFAULT_BRANCH_FACTOR = 40
#: Default skew factor ("typically p is chosen to be about 0.3").
DEFAULT_SKEW_FACTOR = 0.3
#: Relative margin added around the data when deriving the packing frame.
_FRAME_MARGIN = 0.5


@dataclass(frozen=True)
class STreeParams:
    """Build-time knobs of the S-tree.

    Parameters
    ----------
    branch_factor:
        Maximum fanout ``M`` (also the leaf capacity).
    skew_factor:
        ``p ∈ (0, 1/2]``; smaller values allow more skew.
    sweep_increment:
        Stride of the binarization sweep.  ``None`` uses the paper's
        choice of ``M``; 1 evaluates every legal split (slower, used by
        the ablation benchmark).
    split_dimension:
        ``"best"`` (default) sweeps every dimension and keeps the
        globally volume-minimizing split; ``"longest"`` is the ICDCS
        text's literal heuristic — sweep only the dimension in which
        the node's MBR is longest.  On workloads mixing wildcards and
        rays into a few wide dimensions, ``"longest"`` spends every
        level on those dimensions and prunes poorly; the ablation
        benchmark quantifies the gap.
    """

    branch_factor: int = DEFAULT_BRANCH_FACTOR
    skew_factor: float = DEFAULT_SKEW_FACTOR
    sweep_increment: Optional[int] = None
    split_dimension: str = "best"

    def __post_init__(self) -> None:
        if self.branch_factor < 2:
            raise ValueError("branch_factor must be at least 2")
        if not 0.0 < self.skew_factor <= 0.5:
            raise ValueError("skew_factor must lie in (0, 1/2]")
        if self.sweep_increment is not None and self.sweep_increment < 1:
            raise ValueError("sweep_increment must be positive")
        if self.split_dimension not in ("best", "longest"):
            raise ValueError(
                "split_dimension must be 'best' or 'longest', got "
                f"{self.split_dimension!r}"
            )

    @property
    def effective_sweep_increment(self) -> int:
        """The stride actually used (defaults to the branch factor)."""
        return self.sweep_increment or self.branch_factor


@dataclass(frozen=True)
class TreeShape:
    """Structural summary of a built tree (for benchmarks and tests)."""

    height: int
    internal_nodes: int
    leaf_nodes: int
    entries: int
    min_leaf_depth: int
    max_leaf_depth: int
    mean_branch_factor: float

    @property
    def skewness(self) -> int:
        """Depth spread between the shallowest and deepest leaf."""
        return self.max_leaf_depth - self.min_leaf_depth


class _BinaryNode:
    """Intermediate node used during binarization and compression."""

    __slots__ = ("children", "indices", "leaf_number")

    def __init__(
        self,
        indices: Optional[np.ndarray] = None,
        children: Optional[List["_BinaryNode"]] = None,
        leaf_number: int = 0,
    ):
        self.indices = indices  # set only on leaves
        self.children = children if children is not None else []
        self.leaf_number = leaf_number

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None

    def leaf_node_count(self) -> int:
        """Number of leaf *nodes* (not objects) in this subtree."""
        if self.is_leaf:
            return 1
        return sum(child.leaf_node_count() for child in self.children)

    def collect_leaves(self) -> List[_BinaryNode]:
        """All leaf nodes in this subtree, left to right."""
        if self.is_leaf:
            return [self]
        result: List[_BinaryNode] = []
        for child in self.children:
            result.extend(child.collect_leaves())
        return result


class _Node:
    """Final S-tree node with stacked child MBRs for vectorized descent."""

    __slots__ = (
        "child_lows",
        "child_highs",
        "children",
        "entry_lows",
        "entry_highs",
        "entry_ids",
    )

    def __init__(self) -> None:
        self.child_lows: Optional[np.ndarray] = None
        self.child_highs: Optional[np.ndarray] = None
        self.children: List["_Node"] = []
        self.entry_lows: Optional[np.ndarray] = None
        self.entry_highs: Optional[np.ndarray] = None
        self.entry_ids: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.entry_ids is not None


class STree(PointMatcher):
    """Point-query index over subscription rectangles (paper Section 3)."""

    def __init__(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        ids: np.ndarray,
        params: Optional[STreeParams] = None,
    ):
        super().__init__(lows, highs, ids)
        self.params = params or STreeParams()
        pack_lows, pack_highs = _packing_frame_clip(lows, highs)
        self._pack_lows = pack_lows
        self._pack_highs = pack_highs
        # Centers of the *clipped* rectangles drive the sweep ordering.
        # On the finite domains the S-tree paper assumes, a half-open
        # ray's center is the midpoint of its clipped extent — far from
        # the bounded population — so rays and wildcards sort to the
        # edges and get segregated into their own subtrees instead of
        # poisoning every leaf MBR with an unbounded side.
        self._pack_centers = bulk_centers(pack_lows, pack_highs)
        binary_root = self._binarize(np.arange(self.size, dtype=np.int64))
        _compress(binary_root, self.params.branch_factor)
        self._root = self._materialize(binary_root)

    # -- binarization -------------------------------------------------------

    def _binarize(self, indices: np.ndarray) -> _BinaryNode:
        """Recursively split ``indices`` per the sweep rule."""
        count = len(indices)
        if count <= self.params.branch_factor:
            return _BinaryNode(indices=indices, leaf_number=count)
        left_idx, right_idx = self._best_split(indices)
        left = self._binarize(left_idx)
        right = self._binarize(right_idx)
        return _BinaryNode(children=[left, right], leaf_number=count)

    def _best_split(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One binarization step.

        Sweeps candidate split positions (respecting the skew bounds,
        in strides of the sweep increment) along each candidate
        dimension's center order, and returns the split minimizing the
        summed child-MBR volumes, ties broken by total perimeter.
        """
        lows = self._pack_lows[indices]
        highs = self._pack_highs[indices]
        count = len(indices)

        if self.params.split_dimension == "longest":
            extents = highs.max(axis=0) - lows.min(axis=0)
            dims = [int(np.argmax(extents))]
        else:
            dims = list(range(self.ndim))

        p = self.params.skew_factor
        q_min = max(1, math.ceil(p * count))
        q_max = min(count - 1, math.floor((1 - p) * count))
        if q_min > q_max:
            q_min = q_max = count // 2
        step = self.params.effective_sweep_increment
        candidates = np.arange(q_min, q_max + 1, step, dtype=np.int64)
        if candidates[-1] != q_max:
            # Always consider the last legal split so the sweep covers
            # the whole admissible range regardless of the stride.
            candidates = np.append(candidates, q_max)

        best_key = None
        best_q = 0
        best_order: Optional[np.ndarray] = None
        for dim in dims:
            order = np.argsort(
                self._pack_centers[indices, dim], kind="stable"
            )
            lo = lows[order]
            hi = highs[order]
            fwd_lo, fwd_hi = running_mbr_forward(lo, hi)
            bwd_lo, bwd_hi = running_mbr_backward(lo, hi)
            left_ext = fwd_hi[candidates - 1] - fwd_lo[candidates - 1]
            right_ext = bwd_hi[candidates] - bwd_lo[candidates]
            volumes = np.prod(left_ext, axis=1) + np.prod(right_ext, axis=1)
            perimeters = left_ext.sum(axis=1) + right_ext.sum(axis=1)
            pick = int(np.lexsort((perimeters, volumes))[0])
            key = (float(volumes[pick]), float(perimeters[pick]))
            if best_key is None or key < best_key:
                best_key = key
                best_q = int(candidates[pick])
                best_order = order
        sorted_indices = indices[best_order]
        return sorted_indices[:best_q], sorted_indices[best_q:]

    # -- materialization ---------------------------------------------------------

    def _materialize(self, binary: _BinaryNode) -> _Node:
        """Turn the compressed node graph into query-ready nodes."""
        node = _Node()
        if binary.is_leaf:
            idx = binary.indices
            node.entry_lows = self._lows[idx]
            node.entry_highs = self._highs[idx]
            node.entry_ids = self._ids[idx]
            return node
        node.children = [self._materialize(c) for c in binary.children]
        child_lows = np.empty((len(node.children), self.ndim))
        child_highs = np.empty((len(node.children), self.ndim))
        for i, child in enumerate(node.children):
            if child.is_leaf:
                child_lows[i] = child.entry_lows.min(axis=0)
                child_highs[i] = child.entry_highs.max(axis=0)
            else:
                child_lows[i] = child.child_lows.min(axis=0)
                child_highs[i] = child.child_highs.max(axis=0)
        node.child_lows = child_lows
        node.child_highs = child_highs
        return node

    # -- queries --------------------------------------------------------------------

    def _match_ids(self, point: np.ndarray) -> List[int]:
        result: List[int] = []
        stack = [self._root]
        stats = self.stats
        while stack:
            node = stack.pop()
            if node.is_leaf:
                stats.leaves_visited += 1
                stats.entries_tested += len(node.entry_ids)
                mask = np.all(
                    (node.entry_lows < point) & (point <= node.entry_highs),
                    axis=1,
                )
                if mask.any():
                    result.extend(int(i) for i in node.entry_ids[mask])
            else:
                stats.nodes_visited += 1
                mask = np.all(
                    (node.child_lows < point) & (point <= node.child_highs),
                    axis=1,
                )
                for i in np.flatnonzero(mask):
                    stack.append(node.children[i])
        return result

    def region_query(self, lows: Sequence[float], highs: Sequence[float]) -> List[int]:
        """All rectangle ids intersecting the query rectangle ``(lows, highs]``.

        Point queries are the special case ``lows == highs``; region
        queries are used by the clustering grid to compute cell
        membership lists.
        """
        q_lo = np.asarray(lows, dtype=np.float64)
        q_hi = np.asarray(highs, dtype=np.float64)
        if q_lo.shape != (self.ndim,) or q_hi.shape != (self.ndim,):
            raise ValueError("query bounds must have one value per dimension")
        self.stats.queries += 1
        result: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                self.stats.leaves_visited += 1
                self.stats.entries_tested += len(node.entry_ids)
                mask = np.all(
                    (np.maximum(node.entry_lows, q_lo)
                     < np.minimum(node.entry_highs, q_hi)),
                    axis=1,
                )
                if mask.any():
                    result.extend(int(i) for i in node.entry_ids[mask])
            else:
                self.stats.nodes_visited += 1
                mask = np.all(
                    (np.maximum(node.child_lows, q_lo)
                     < np.minimum(node.child_highs, q_hi)),
                    axis=1,
                )
                for i in np.flatnonzero(mask):
                    stack.append(node.children[i])
        result.sort()
        return result

    # -- introspection ----------------------------------------------------------------

    def shape(self) -> TreeShape:
        """Structural summary (height, node counts, balance)."""
        internal = 0
        leaves = 0
        entries = 0
        branch_total = 0
        min_depth = math.inf
        max_depth = 0
        stack: List["tuple[_Node, int]"] = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                leaves += 1
                entries += len(node.entry_ids)
                min_depth = min(min_depth, depth)
                max_depth = max(max_depth, depth)
            else:
                internal += 1
                branch_total += len(node.children)
                for child in node.children:
                    stack.append((child, depth + 1))
        return TreeShape(
            height=max_depth,
            internal_nodes=internal,
            leaf_nodes=leaves,
            entries=entries,
            min_leaf_depth=int(min_depth),
            max_leaf_depth=max_depth,
            mean_branch_factor=(branch_total / internal) if internal else 0.0,
        )


def _packing_frame_clip(
    lows: np.ndarray, highs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Clip bounds to a finite frame for packing-geometry purposes.

    The frame spans the finite coordinates present in the data,
    extended by a relative margin so clipped unbounded sides remain
    strictly larger than any bounded side they dominate.
    """
    finite_lo = np.where(np.isfinite(lows), lows, np.nan)
    finite_hi = np.where(np.isfinite(highs), highs, np.nan)
    stacked = np.concatenate([finite_lo, finite_hi], axis=0)
    with warnings.catch_warnings():
        # Dimensions with no finite coordinate yield all-NaN slices;
        # they are patched to a unit frame right below.
        warnings.simplefilter("ignore", RuntimeWarning)
        frame_lo = np.nanmin(stacked, axis=0)
        frame_hi = np.nanmax(stacked, axis=0)
    # Dimensions with no finite coordinate at all get a unit frame.
    missing = ~np.isfinite(frame_lo)
    frame_lo[missing] = 0.0
    frame_hi[missing] = 1.0
    span = np.maximum(frame_hi - frame_lo, 1.0)
    frame_lo = frame_lo - _FRAME_MARGIN * span
    frame_hi = frame_hi + _FRAME_MARGIN * span
    return np.maximum(lows, frame_lo), np.minimum(highs, frame_hi)


def _compress(root: _BinaryNode, branch_factor: int) -> None:
    """Compression stage: binary tree -> M-ary tree, in place."""
    if root.is_leaf:
        return
    _form_penultimate_nodes(root, branch_factor)
    _collapse_top_down(root, branch_factor)


def _form_penultimate_nodes(root: _BinaryNode, branch_factor: int) -> None:
    """First compression pass (bottom-up one level).

    Every highest node whose subtree contains at most ``M`` leaf nodes
    swallows all internal structure beneath it and directly parents its
    leaves.
    """
    def visit(node: _BinaryNode) -> int:
        """Return the subtree's leaf-node count, collapsing when <= M."""
        if node.is_leaf:
            return 1
        count = sum(visit(child) for child in node.children)
        if count <= branch_factor and any(
            not child.is_leaf for child in node.children
        ):
            node.children = node.collect_leaves()
        return count

    visit(root)


def _collapse_top_down(root: _BinaryNode, branch_factor: int) -> None:
    """Second compression pass: grow branch factors toward ``M``.

    Processes internal nodes in breadth-first order; each repeatedly
    splices in the non-leaf child with the highest leaf number, one
    child at a time, while its branch factor stays within ``M``.
    """
    queue: List[_BinaryNode] = [root]
    while queue:
        node = queue.pop(0)
        if node.is_leaf:
            continue
        while len(node.children) < branch_factor:
            eligible = [
                child
                for child in node.children
                if not child.is_leaf
                and len(node.children) - 1 + len(child.children)
                <= branch_factor
            ]
            if not eligible:
                break
            best = max(eligible, key=lambda c: c.leaf_number)
            position = node.children.index(best)
            node.children[position : position + 1] = best.children
        queue.extend(child for child in node.children if not child.is_leaf)
