"""The counting algorithm: per-attribute indexes + predicate counters.

The matching algorithm family of Fabret, Llirbat, Pereira & Shasha
(the paper's reference [6], also behind Gryphon's matcher [3]): index
each attribute separately, and for a published event count, per
subscription, how many of its predicates are satisfied — a
subscription matches exactly when all ``N`` are.

Here every attribute index is a
:class:`~repro.spatial.intervaltree.StaticIntervalTree` answering the
1-D stabbing query "whose interval on this attribute contains the
event's value?".  Wildcard predicates (the full line) are excluded
from the trees and pre-counted: a subscription with ``w`` wildcard
dimensions matches when ``N - w`` of its indexed predicates are
satisfied.

Complexity per event: ``O(sum_d (log k + s_d))`` where ``s_d`` is the
number of satisfied predicates in dimension ``d`` — cheap when
predicates are selective, degrading toward ``O(N k)`` when most
predicates match everything (which the matching benchmark shows on
wildcard-heavy workloads).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import PointMatcher
from .intervaltree import StaticIntervalTree

__all__ = ["CountingMatcher"]


class CountingMatcher(PointMatcher):
    """Predicate-counting matcher over per-dimension interval trees."""

    def __init__(self, lows: np.ndarray, highs: np.ndarray, ids: np.ndarray):
        super().__init__(lows, highs, ids)
        unbounded = ~np.isfinite(lows) & ~np.isfinite(highs)
        #: per-subscription number of non-wildcard predicates.
        self._required = (self.ndim - unbounded.sum(axis=1)).astype(
            np.int64
        )
        self._trees: List[StaticIntervalTree] = []
        self._tree_rows: List[np.ndarray] = []
        for dim in range(self.ndim):
            indexed = ~unbounded[:, dim]
            rows = np.flatnonzero(indexed)
            self._trees.append(
                StaticIntervalTree(
                    lows[rows, dim], highs[rows, dim], ids=rows
                )
            )
            self._tree_rows.append(rows)
        # Rows that are all-wildcard match every event unconditionally.
        self._match_all_rows = np.flatnonzero(self._required == 0)

    def _match_ids(self, point: np.ndarray) -> List[int]:
        counts = np.zeros(self.size, dtype=np.int64)
        for dim, tree in enumerate(self._trees):
            stabbed = tree.stab(float(point[dim]))
            self.stats.entries_tested += len(stabbed)
            self.stats.nodes_visited += 1
            if stabbed:
                counts[stabbed] += 1
        matched = np.flatnonzero(
            (counts == self._required) & (self._required > 0)
        )
        result = [int(i) for i in self._ids[matched]]
        result.extend(int(i) for i in self._ids[self._match_all_rows])
        return result
