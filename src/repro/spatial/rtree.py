"""Hilbert-packed R-tree: the bottom-up packed baseline index.

Kamel & Faloutsos (VLDB 1994, reference [8] of the paper) bulk-load an
R-tree by sorting data rectangles along a Hilbert curve through their
centers, slicing the sorted order into capacity-``M`` leaves, and then
recursively packing the leaves' MBR records the same way.  Unlike the
S-tree's top-down binarization this is a *bottom-up* packing (the paper
draws this exact contrast in Section 3.1), and the result is perfectly
height balanced.

Queries are identical to the S-tree's: descend from the root, pruning
every child whose MBR misses the query point.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry.arrays import bulk_centers
from .base import PointMatcher
from .hilbert import hilbert_indices, quantize_to_lattice

__all__ = ["HilbertRTree"]

#: Default curve order (bits per dimension) for center quantization.
DEFAULT_CURVE_BITS = 10


class _RNode:
    """R-tree node; same stacked-MBR layout as the S-tree's nodes."""

    __slots__ = ("child_lows", "child_highs", "children", "entry_ids")

    def __init__(self) -> None:
        self.child_lows: Optional[np.ndarray] = None
        self.child_highs: Optional[np.ndarray] = None
        self.children: List["_RNode"] = []
        self.entry_ids: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.entry_ids is not None


class HilbertRTree(PointMatcher):
    """Height-balanced packed R-tree over subscription rectangles."""

    def __init__(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        ids: np.ndarray,
        branch_factor: int = 40,
        curve_bits: int = DEFAULT_CURVE_BITS,
    ):
        super().__init__(lows, highs, ids)
        if branch_factor < 2:
            raise ValueError("branch_factor must be at least 2")
        if curve_bits < 1:
            raise ValueError("curve_bits must be positive")
        self.branch_factor = branch_factor
        self.curve_bits = curve_bits
        self._root = self._pack()

    def _pack(self) -> _RNode:
        """Bottom-up bulk load along the Hilbert order of the centers."""
        centers = bulk_centers(self._lows, self._highs)
        lattice = quantize_to_lattice(centers, self.curve_bits)
        order = np.argsort(hilbert_indices(lattice, self.curve_bits))
        m = self.branch_factor

        # Level 0: slice the Hilbert order into leaves of capacity M.
        leaves: List[_RNode] = []
        for start in range(0, self.size, m):
            chunk = order[start : start + m]
            leaf = _RNode()
            leaf.entry_ids = self._ids[chunk]
            leaf.child_lows = self._lows[chunk]
            leaf.child_highs = self._highs[chunk]
            leaves.append(leaf)

        # Upper levels: pack M consecutive nodes under one parent.
        level = leaves
        while len(level) > 1:
            parents: List[_RNode] = []
            for start in range(0, len(level), m):
                group = level[start : start + m]
                parent = _RNode()
                parent.children = group
                parent.child_lows = np.stack(
                    [child.child_lows.min(axis=0) for child in group]
                )
                parent.child_highs = np.stack(
                    [child.child_highs.max(axis=0) for child in group]
                )
                parents.append(parent)
            level = parents
        return level[0]

    def _match_ids(self, point: np.ndarray) -> List[int]:
        result: List[int] = []
        stack = [self._root]
        stats = self.stats
        while stack:
            node = stack.pop()
            mask = np.all(
                (node.child_lows < point) & (point <= node.child_highs),
                axis=1,
            )
            if node.is_leaf:
                stats.leaves_visited += 1
                stats.entries_tested += len(node.entry_ids)
                if mask.any():
                    result.extend(int(i) for i in node.entry_ids[mask])
            else:
                stats.nodes_visited += 1
                for i in np.flatnonzero(mask):
                    stack.append(node.children[i])
        return result

    @property
    def height(self) -> int:
        """Number of edges from root to any leaf (balanced by design)."""
        height = 0
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height
