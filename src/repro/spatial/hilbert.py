"""Hilbert space-filling curve encoding in N dimensions.

The Hilbert-packed R-tree baseline (Kamel & Faloutsos, VLDB 1994 —
reference [8] of the paper) orders rectangle centers along a Hilbert
curve before packing leaves bottom-up.  This module provides the
required encoding: mapping an N-dimensional integer lattice point to
its (scalar) index along the Hilbert curve.

The transformation follows John Skilling, *Programming the Hilbert
curve* (AIP Conf. Proc. 707, 2004): coordinates are converted in place
to the "transposed" Hilbert representation via Gray-code undo steps,
after which the bits are interleaved into a single integer.  It is
exact for any number of dimensions and bits-per-dimension.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

__all__ = ["hilbert_index", "hilbert_indices", "quantize_to_lattice"]


def hilbert_index(coords: Sequence[int], bits: int) -> int:
    """Index along the Hilbert curve of an N-d lattice point.

    Parameters
    ----------
    coords:
        Non-negative integer coordinates, each < ``2**bits``.
    bits:
        Bits of precision per dimension (curve order).

    Returns
    -------
    int
        A value in ``[0, 2**(bits * len(coords)))``; nearby points on
        the curve are nearby in space (the converse holds usually, which
        is all bulk-loading needs).
    """
    x = [int(c) for c in coords]
    ndim = len(x)
    if ndim == 0:
        raise ValueError("need at least one coordinate")
    if bits <= 0:
        raise ValueError("bits must be positive")
    for c in x:
        if c < 0 or c >= (1 << bits):
            raise ValueError(
                f"coordinate {c} out of range for {bits}-bit lattice"
            )

    # -- Skilling's inverse transform: axes -> transposed Hilbert ---------
    m = 1 << (bits - 1)
    # Inverse undo of the Gray-code walk.
    q = m
    while q > 1:
        p = q - 1
        for i in range(ndim):
            if x[i] & q:
                x[0] ^= p  # invert low bits of x[0]
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, ndim):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[ndim - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(ndim):
        x[i] ^= t

    # -- interleave the transposed representation into one integer --------
    result = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(ndim):
            result = (result << 1) | ((x[i] >> bit) & 1)
    return result


def hilbert_indices(points: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert index of every row of an integer ``(k, N)`` array."""
    points = np.asarray(points)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    return np.asarray(
        [hilbert_index(row, bits) for row in points.tolist()], dtype=object
    )


def quantize_to_lattice(
    values: np.ndarray, bits: int
) -> np.ndarray:
    """Map real-valued rows onto the ``2**bits`` integer lattice.

    Each dimension is scaled independently over its own [min, max]
    range; constant dimensions map to lattice coordinate 0.  Non-finite
    values (centers of unbounded rectangles never occur here, but guard
    anyway) are clipped into the frame before scaling.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("values must be a 2-D array")
    finite = np.where(np.isfinite(values), values, np.nan)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        lo = np.nanmin(finite, axis=0)
        hi = np.nanmax(finite, axis=0)
    lo = np.where(np.isfinite(lo), lo, 0.0)
    hi = np.where(np.isfinite(hi), hi, 1.0)
    span = np.where(hi > lo, hi - lo, 1.0)
    clipped = np.clip(values, lo, hi)
    top = (1 << bits) - 1
    lattice = np.floor((clipped - lo) / span * top + 0.5)
    return np.clip(lattice, 0, top).astype(np.int64)
