"""Spatial point-query indexes for the matching problem (paper Section 3).

The headline structure is the :class:`~repro.spatial.stree.STree`; the
:class:`~repro.spatial.rtree.HilbertRTree`,
:class:`~repro.spatial.linear.LinearScanMatcher` and
:class:`~repro.spatial.grid_index.GridIndexMatcher` serve as baselines
for the matching benchmarks.
"""

from .base import PointMatcher, QueryStats
from .counting import CountingMatcher
from .grid_index import GridIndexMatcher
from .intervaltree import StaticIntervalTree
from .hilbert import hilbert_index, quantize_to_lattice
from .linear import LinearScanMatcher
from .rtree import HilbertRTree
from .stree import STree, STreeParams, TreeShape

__all__ = [
    "PointMatcher",
    "QueryStats",
    "CountingMatcher",
    "StaticIntervalTree",
    "GridIndexMatcher",
    "hilbert_index",
    "quantize_to_lattice",
    "LinearScanMatcher",
    "HilbertRTree",
    "STree",
    "STreeParams",
    "TreeShape",
]
