"""Common interface for point-query matchers.

Every index in :mod:`repro.spatial` answers the *matching problem*
(paper Section 3): given a published event — a point in ``R^N`` — return
the identifiers of all subscription rectangles containing it.  Indexes
are built once over a static subscription set (matching the paper's
model, where subscription churn is handled by periodic re-preprocessing)
and then queried many times.

All matchers share a small amount of instrumentation
(:class:`QueryStats`) so benchmarks can report node accesses — the
paper's figure of merit for index quality — as well as wall-clock time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.arrays import rectangles_to_arrays
from ..geometry.rectangle import Rectangle

__all__ = ["QueryStats", "PointMatcher", "validate_build_inputs"]


@dataclass
class QueryStats:
    """Cumulative work counters for an index.

    Attributes
    ----------
    queries:
        Number of point queries answered.
    nodes_visited:
        Internal tree nodes whose child MBRs were examined (for the
        flat matchers this stays 0).
    leaves_visited:
        Leaf nodes (or grid cells) whose entries were examined.
    entries_tested:
        Individual rectangle containment tests performed.
    """

    queries: int = 0
    nodes_visited: int = 0
    leaves_visited: int = 0
    entries_tested: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.queries = 0
        self.nodes_visited = 0
        self.leaves_visited = 0
        self.entries_tested = 0

    @property
    def nodes_per_query(self) -> float:
        """Average internal+leaf node accesses per query."""
        if self.queries == 0:
            return 0.0
        return (self.nodes_visited + self.leaves_visited) / self.queries

    @property
    def entries_per_query(self) -> float:
        """Average containment tests per query."""
        if self.queries == 0:
            return 0.0
        return self.entries_tested / self.queries


def validate_build_inputs(
    lows: np.ndarray,
    highs: np.ndarray,
    ids: Optional[Sequence[int]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize and sanity-check raw build inputs.

    Returns contiguous float64 ``(k, N)`` bounds arrays and an int64
    id array (defaulting to ``0..k-1``).
    """
    lows = np.ascontiguousarray(lows, dtype=np.float64)
    highs = np.ascontiguousarray(highs, dtype=np.float64)
    if lows.ndim != 2 or highs.shape != lows.shape:
        raise ValueError(
            f"bounds must be matching (k, N) arrays, got {lows.shape} "
            f"and {highs.shape}"
        )
    if lows.shape[0] == 0:
        raise ValueError("cannot build an index over zero rectangles")
    if np.any(np.isnan(lows)) or np.any(np.isnan(highs)):
        raise ValueError("rectangle bounds must not contain NaN")
    if ids is None:
        id_array = np.arange(lows.shape[0], dtype=np.int64)
    else:
        id_array = np.asarray(ids, dtype=np.int64)
        if id_array.shape != (lows.shape[0],):
            raise ValueError(
                f"ids must have shape ({lows.shape[0]},), got {id_array.shape}"
            )
    return lows, highs, id_array


class PointMatcher(abc.ABC):
    """Abstract base for all point-query indexes.

    Concrete subclasses implement :meth:`_match_ids`; the public
    :meth:`match` / :meth:`count` wrappers keep the bookkeeping uniform.
    """

    def __init__(self, lows: np.ndarray, highs: np.ndarray, ids: np.ndarray):
        self._lows = lows
        self._highs = highs
        self._ids = ids
        self.stats = QueryStats()

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        lows: np.ndarray,
        highs: np.ndarray,
        ids: Optional[Sequence[int]] = None,
        **kwargs,
    ) -> PointMatcher:
        """Build an index over ``(k, N)`` bounds arrays.

        ``ids[i]`` is the identifier reported when rectangle ``i``
        matches; it defaults to the row index.
        """
        lows, highs, id_array = validate_build_inputs(lows, highs, ids)
        return cls(lows, highs, id_array, **kwargs)

    @classmethod
    def from_rectangles(
        cls,
        rectangles: Sequence[Rectangle],
        ids: Optional[Sequence[int]] = None,
        **kwargs,
    ) -> PointMatcher:
        """Convenience builder from :class:`Rectangle` objects."""
        lows, highs = rectangles_to_arrays(list(rectangles))
        return cls.build(lows, highs, ids, **kwargs)

    # -- queries -----------------------------------------------------------------

    def match(self, point: Sequence[float]) -> List[int]:
        """Identifiers of all rectangles containing ``point`` (sorted)."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.ndim,):
            raise ValueError(
                f"point must have {self.ndim} coordinates, got {point.shape}"
            )
        self.stats.queries += 1
        result = self._match_ids(point)
        result.sort()
        return result

    def count(self, point: Sequence[float]) -> int:
        """Number of rectangles containing ``point``."""
        return len(self.match(point))

    def match_many(self, points: np.ndarray) -> List[List[int]]:
        """Match a batch of points; one sorted id list per row.

        The default implementation loops over :meth:`match`;
        backends with a cheaper bulk path may override it.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.ndim:
            raise ValueError(
                f"points must be (m, {self.ndim}), got {points.shape}"
            )
        return [self.match(point) for point in points]

    @abc.abstractmethod
    def _match_ids(self, point: np.ndarray) -> List[int]:
        """Return (unsorted) matching identifiers; update ``self.stats``."""

    # -- introspection ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of indexed rectangles."""
        return int(self._lows.shape[0])

    @property
    def ndim(self) -> int:
        """Dimensionality of the indexed space."""
        return int(self._lows.shape[1])

    def __len__(self) -> int:
        return self.size
