"""Brute-force matcher: test every subscription against every event.

This is the obvious O(k·N) baseline the tree indexes are measured
against.  It is fully vectorized, so for small ``k`` it can beat the
trees on wall-clock time — one of the crossovers the matching benchmark
(`benchmarks/test_bench_matching.py`) maps out.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import PointMatcher

__all__ = ["LinearScanMatcher"]


class LinearScanMatcher(PointMatcher):
    """Exhaustive vectorized scan over all subscription rectangles."""

    def _match_ids(self, point: np.ndarray) -> List[int]:
        self.stats.entries_tested += self.size
        mask = np.all((self._lows < point) & (point <= self._highs), axis=1)
        return [int(i) for i in self._ids[mask]]

    def match_many(self, points: np.ndarray) -> list[List[int]]:
        """Bulk path: one (k, m) containment mask for the whole batch."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.ndim:
            raise ValueError(
                f"points must be (m, {self.ndim}), got {points.shape}"
            )
        below = self._lows[:, None, :] < points[None, :, :]
        above = points[None, :, :] <= self._highs[:, None, :]
        mask = np.all(below & above, axis=2)
        self.stats.queries += points.shape[0]
        self.stats.entries_tested += self.size * points.shape[0]
        return [
            sorted(int(i) for i in self._ids[mask[:, j]])
            for j in range(points.shape[0])
        ]
