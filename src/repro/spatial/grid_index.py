"""Regular-grid matcher: a bucketing baseline.

Imposes the same kind of regular grid the clustering framework uses
(Appendix A.2): each dimension is cut into ``cells_per_dim`` equal
half-open intervals over the data's bounding frame.  Every cell stores
the ids of the rectangles intersecting it; a point query locates its
cell in O(N) and tests only that cell's candidates.

This trades memory (a rectangle spanning many cells is recorded in all
of them) for extremely cheap lookups, and degrades when subscriptions
are large relative to cells — a useful contrast to the trees.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Tuple

import numpy as np

from ..geometry.gridmath import covered_cell_range, locate_cell
from .base import PointMatcher

__all__ = ["GridIndexMatcher"]

DEFAULT_CELLS_PER_DIM = 16


class GridIndexMatcher(PointMatcher):
    """Uniform-grid bucket index over subscription rectangles."""

    def __init__(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        ids: np.ndarray,
        cells_per_dim: int = DEFAULT_CELLS_PER_DIM,
    ):
        super().__init__(lows, highs, ids)
        if cells_per_dim < 1:
            raise ValueError("cells_per_dim must be positive")
        self.cells_per_dim = cells_per_dim
        self._frame_lo, self._frame_hi = self._fit_frame()
        self._span = np.maximum(self._frame_hi - self._frame_lo, 1e-300)
        self._cells: Dict[Tuple[int, ...], List[int]] = {}
        self._populate()

    def _fit_frame(self) -> tuple[np.ndarray, np.ndarray]:
        """Bounding frame over the finite coordinates of the data."""
        finite_lo = np.where(np.isfinite(self._lows), self._lows, np.nan)
        finite_hi = np.where(np.isfinite(self._highs), self._highs, np.nan)
        stacked = np.concatenate([finite_lo, finite_hi], axis=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            lo = np.nanmin(stacked, axis=0)
            hi = np.nanmax(stacked, axis=0)
        lo = np.where(np.isfinite(lo), lo, 0.0)
        hi = np.where(np.isfinite(hi), hi, 1.0)
        hi = np.where(hi > lo, hi, lo + 1.0)
        return lo, hi

    def _cell_range(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Per-dimension [first, last] cell coordinates a rectangle spans.

        Delegates to the rounding-safe shared helper (see
        :mod:`repro.geometry.gridmath`): endpoints that quantize onto a
        cell boundary widen the range by one cell, and the exact
        containment test at query time filters the extras.
        """
        first, last = covered_cell_range(
            lo,
            hi,
            self._frame_lo,
            self._span / self.cells_per_dim,
            self.cells_per_dim,
        )
        return np.stack([first, last])

    def _populate(self) -> None:
        from itertools import product

        for row in range(self.size):
            lo = np.where(
                np.isfinite(self._lows[row]), self._lows[row], self._frame_lo
            )
            hi = np.where(
                np.isfinite(self._highs[row]), self._highs[row], self._frame_hi
            )
            if np.any(hi <= lo) and np.any(self._highs[row] <= self._lows[row]):
                continue  # genuinely empty rectangle matches nothing
            first, last = self._cell_range(lo, hi)
            ranges = [range(first[d], last[d] + 1) for d in range(self.ndim)]
            for coords in product(*ranges):
                self._cells.setdefault(coords, []).append(row)

    def _locate(self, point: np.ndarray) -> Tuple[int, ...] | None:
        """Cell coordinates of a point, or None when outside the frame."""
        coords = locate_cell(
            point,
            self._frame_lo,
            self._frame_hi,
            self._span / self.cells_per_dim,
            self.cells_per_dim,
        )
        if coords is None:
            return None
        return tuple(int(x) for x in coords)

    def _match_ids(self, point: np.ndarray) -> List[int]:
        cell = self._locate(point)
        if cell is None:
            # Outside the frame only unbounded rectangles can match;
            # fall back to testing everything (rare in practice).
            candidates = np.arange(self.size)
        else:
            self.stats.leaves_visited += 1
            candidates = np.asarray(self._cells.get(cell, []), dtype=np.int64)
        if len(candidates) == 0:
            return []
        self.stats.entries_tested += len(candidates)
        lows = self._lows[candidates]
        highs = self._highs[candidates]
        mask = np.all((lows < point) & (point <= highs), axis=1)
        return [int(i) for i in self._ids[candidates[mask]]]

    @property
    def occupied_cells(self) -> int:
        """Number of grid cells holding at least one rectangle."""
        return len(self._cells)
