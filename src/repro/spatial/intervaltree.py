"""Static centered interval trees for 1-D stabbing queries.

The building block of the counting matcher: given ``k`` half-open
intervals ``(lo, hi]`` on one attribute, report every interval
containing a query value ``x`` in ``O(log k + answer)``.

The structure is the classic centered interval tree, built once over
static data: each node holds a center value, the intervals straddling
it (stored twice, sorted by low and by high endpoint), and subtrees
for the intervals entirely left/right of the center.  Unbounded
endpoints (rays and wildcards) are fully supported — ``-inf``/``inf``
sort like any other float.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["StaticIntervalTree"]


def _interior_point(lo: float, hi: float) -> float:
    """A value strictly inside the non-empty interval ``(lo, hi)``."""
    lo_finite = np.isfinite(lo)
    hi_finite = np.isfinite(hi)
    if lo_finite and hi_finite:
        return (lo + hi) / 2.0
    if hi_finite:
        return hi - 1.0
    if lo_finite:
        return lo + 1.0
    return 0.0


class _Node:
    __slots__ = (
        "center",
        "by_low_ids",
        "by_low",
        "by_high_ids",
        "by_high",
        "left",
        "right",
    )

    def __init__(self) -> None:
        self.center = 0.0
        self.by_low: Optional[np.ndarray] = None
        self.by_low_ids: Optional[np.ndarray] = None
        self.by_high: Optional[np.ndarray] = None
        self.by_high_ids: Optional[np.ndarray] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class StaticIntervalTree:
    """Stabbing queries over a fixed set of half-open intervals."""

    def __init__(
        self,
        lows: Sequence[float],
        highs: Sequence[float],
        ids: Optional[Sequence[int]] = None,
    ):
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.ndim != 1 or lows.shape != highs.shape:
            raise ValueError("lows and highs must be equal-length 1-D")
        if ids is None:
            id_array = np.arange(len(lows), dtype=np.int64)
        else:
            id_array = np.asarray(ids, dtype=np.int64)
            if id_array.shape != lows.shape:
                raise ValueError("one id per interval required")
        # Empty intervals can never be stabbed; drop them up front.
        alive = highs > lows
        self.size = int(alive.sum())
        self._root = self._build(
            lows[alive], highs[alive], id_array[alive]
        )

    def _build(
        self, lows: np.ndarray, highs: np.ndarray, ids: np.ndarray
    ) -> Optional[_Node]:
        if len(lows) == 0:
            return None
        node = _Node()
        # Median of the finite endpoints keeps the tree balanced; with
        # no finite endpoint at all, any center works (every interval
        # straddles everything).
        endpoints = np.concatenate([lows, highs])
        finite = endpoints[np.isfinite(endpoints)]
        node.center = float(np.median(finite)) if finite.size else 0.0

        # An interval is "left of center" when it cannot contain any
        # x > center, i.e. hi <= center; "right" when lo >= center
        # (cannot contain any x <= center).
        left_mask = highs <= node.center
        right_mask = lows >= node.center
        straddle = ~left_mask & ~right_mask
        if not straddle.any():
            # Degenerate endpoint multiset (e.g. every interval is
            # ``(-inf, 0]``): the median sits on a shared endpoint and
            # one side would swallow everything, looping forever.
            # Re-center strictly inside the first interval — it then
            # straddles, guaranteeing progress.
            node.center = _interior_point(float(lows[0]), float(highs[0]))
            left_mask = highs <= node.center
            right_mask = lows >= node.center
            straddle = ~left_mask & ~right_mask
            if not straddle.any():
                # One-ulp interval: the midpoint rounded onto an
                # endpoint.  The straddle query logic is exact for any
                # interval with lo <= center <= hi, so force the first
                # interval in — that alone guarantees progress.
                straddle[0] = True
                left_mask[0] = False
                right_mask[0] = False

        order_low = np.argsort(lows[straddle], kind="stable")
        node.by_low = lows[straddle][order_low]
        node.by_low_ids = ids[straddle][order_low]
        order_high = np.argsort(highs[straddle], kind="stable")
        node.by_high = highs[straddle][order_high]
        node.by_high_ids = ids[straddle][order_high]

        node.left = self._build(
            lows[left_mask], highs[left_mask], ids[left_mask]
        )
        node.right = self._build(
            lows[right_mask], highs[right_mask], ids[right_mask]
        )
        return node

    def stab(self, x: float) -> List[int]:
        """Ids of all intervals with ``lo < x <= hi`` (unsorted)."""
        result: List[int] = []
        node = self._root
        while node is not None:
            if x <= node.center:
                # Straddling intervals contain x iff lo < x; they are
                # sorted by lo, so take the strict-prefix.
                cut = int(np.searchsorted(node.by_low, x, side="left"))
                result.extend(int(i) for i in node.by_low_ids[:cut])
                node = node.left
            else:
                # x > center: containment needs hi >= x; sorted by hi,
                # take the suffix with hi >= x.
                cut = int(np.searchsorted(node.by_high, x, side="left"))
                result.extend(int(i) for i in node.by_high_ids[cut:])
                node = node.right
        return result

    def count_stab(self, x: float) -> int:
        """Number of intervals containing ``x`` (no id materialization)."""
        count = 0
        node = self._root
        while node is not None:
            if x <= node.center:
                count += int(np.searchsorted(node.by_low, x, side="left"))
                node = node.left
            else:
                count += len(node.by_high) - int(
                    np.searchsorted(node.by_high, x, side="left")
                )
                node = node.right
        return count
