"""Incremental clustering maintenance under churn.

The paper's related work (Wong, Katz & McCanne [16]) pairs an
*initial* clustering algorithm with *incremental* ones that "retain
high quality in the presence of ongoing and inevitable changes".  This
module provides that maintenance layer for the grid clustering:

- :meth:`IncrementalClusterMaintainer.refresh` — re-derive cluster
  statistics after cell membership lists changed in place (new
  subscriptions fold into ``l(g)`` via
  :meth:`~repro.clustering.grid.EventGrid.add_subscription`);
- :meth:`IncrementalClusterMaintainer.admit` — greedily place newly
  relevant cells into the cheapest cluster;
- :meth:`IncrementalClusterMaintainer.rebalance` — bounded
  steepest-descent single-cell moves on the global objective
  ``sum_q EW_q * p_q`` (the probability-weighted expected waste),
  recovering quality without a full re-clustering.

A full re-preprocess is still the gold standard; the churn benchmark
measures how much of the gap the incremental path closes at a small
fraction of the cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .base import ClusteringResult
from .grid import EventGrid, GridCell
from .waste import ClusterState

__all__ = ["IncrementalClusterMaintainer"]


class IncrementalClusterMaintainer:
    """Keeps one clustering locally good while the grid evolves."""

    def __init__(self, grid: EventGrid, result: ClusteringResult):
        result.validate_disjoint()
        self.grid = grid
        self.algorithm = result.algorithm
        self._clusters: List[ClusterState] = [
            ClusterState.from_cells(cells) for cells in result.clusters
        ]
        self._assignment: Dict[Tuple[int, ...], int] = {}
        for position, cells in enumerate(result.clusters):
            for cell in cells:
                self._assignment[cell.index] = position

    # -- objective ----------------------------------------------------------

    def objective(self) -> float:
        """Probability-weighted expected waste over all clusters."""
        return sum(
            state.expected_waste * state.probability
            for state in self._clusters
        )

    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    def contains(self, index: Tuple[int, ...]) -> bool:
        """Whether a grid cell is currently clustered."""
        return index in self._assignment

    # -- maintenance -----------------------------------------------------------

    def refresh(self) -> None:
        """Recompute cluster statistics from the live cells.

        Cell ``members``/``probability`` attributes are shared with the
        grid and mutate in place as subscriptions arrive; the cluster
        states' cached masks and sums must follow.
        """
        self._clusters = [
            ClusterState.from_cells(state.cells)
            for state in self._clusters
        ]

    def admit(self, cells: Sequence[GridCell]) -> int:
        """Greedily place new cells into their cheapest clusters.

        Cells already assigned are skipped; returns how many were
        admitted.  (This is [16]'s cheap incremental step: new interest
        attaches to the closest existing group.)
        """
        admitted = 0
        for cell in cells:
            if cell.index in self._assignment:
                continue
            best_index = 0
            best_distance = float("inf")
            for i, state in enumerate(self._clusters):
                distance = state.distance_to(cell)
                if distance < best_distance:
                    best_distance = distance
                    best_index = i
            self._clusters[best_index].add(cell)
            self._assignment[cell.index] = best_index
            admitted += 1
        return admitted

    def rebalance(self, max_moves: int = 20) -> int:
        """Steepest-descent single-cell moves on the global objective.

        Each step evaluates every (cell, target cluster) move and
        applies the one with the largest objective decrease; stops
        when no move improves or the budget runs out.  Returns the
        number of moves applied.
        """
        if max_moves < 0:
            raise ValueError("max_moves must be non-negative")
        moves = 0
        while moves < max_moves:
            best_gain = 1e-12  # require a strict improvement
            best_move: Optional[Tuple[GridCell, int, int]] = None
            for source_index, source in enumerate(self._clusters):
                if len(source) <= 1:
                    continue  # never empty a cluster
                for cell in list(source.cells):
                    # Cost change of removing the cell from its source:
                    without = ClusterState.from_cells(
                        [c for c in source.cells if c.index != cell.index]
                    )
                    removal_gain = (
                        source.expected_waste * source.probability
                        - without.expected_waste * without.probability
                    )
                    for target_index, target in enumerate(self._clusters):
                        if target_index == source_index:
                            continue
                        addition_cost = (
                            target.waste_if_added(cell)
                            * (target.probability + cell.probability)
                            - target.expected_waste * target.probability
                        )
                        gain = removal_gain - addition_cost
                        if gain > best_gain:
                            best_gain = gain
                            best_move = (cell, source_index, target_index)
            if best_move is None:
                break
            cell, source_index, target_index = best_move
            self._clusters[source_index].remove(cell)
            self._clusters[target_index].add(cell)
            self._assignment[cell.index] = target_index
            moves += 1
        return moves

    # -- export --------------------------------------------------------------------

    def to_result(self) -> ClusteringResult:
        """Snapshot the current clustering."""
        return ClusteringResult(
            algorithm=f"{self.algorithm}+incremental",
            clusters=[list(state.cells) for state in self._clusters],
        )

    def to_partition(self):
        """Derive a fresh space partition from the current clustering.

        Convenience for brokers: after maintenance, swap
        ``broker.partition`` for this (and clear the cost model's group
        caches) to put the improved grouping into service.
        """
        from .groups import SpacePartition

        return SpacePartition(self.grid, self.to_result())
