"""The regular grid over the event space (Appendix A.2, Step 0).

All three subscription-clustering algorithms operate on cells of a
regular grid ``G = {g_x}`` imposed on the event space: each dimension
is cut into at most ``C`` adjacent, equal-length, half-open intervals
such that the grid covers every interest rectangle ``b_ij`` (unbounded
subscription sides are covered up to a finite frame derived from the
data, which is the only possible reading on a computer and matches the
paper's finite-domain assumption in Section 1).

For every cell the grid records:

- ``l(g)`` — the set of subscribers with a subscription intersecting
  the cell, stored as a bitmask over compact subscriber indices so
  unions and difference counts during clustering are single integer
  operations;
- ``p(g)`` — the publication probability mass of the cell under the
  event distribution ``p_p(.)``;
- the cell's *weight* ``p(g) * n(g)`` with ``n(g) = |l(g)|``, used to
  pick the ``T`` highest-weight cells the algorithms work on.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..geometry.gridmath import covered_cell_range, locate_cell
from ..geometry.rectangle import Rectangle

__all__ = ["CellProbability", "UniformCellProbability", "GridCell", "EventGrid"]

DEFAULT_CELLS_PER_DIM = 10


class CellProbability(Protocol):
    """Anything that can integrate the event density over a box."""

    def cell_probability(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> float:
        """Probability that a publication lands in ``(lows, highs]``."""
        ...


class UniformCellProbability:
    """Uniform event density over a bounded frame (a neutral default)."""

    def __init__(self, frame_lo: Sequence[float], frame_hi: Sequence[float]):
        self.frame_lo = np.asarray(frame_lo, dtype=np.float64)
        self.frame_hi = np.asarray(frame_hi, dtype=np.float64)
        volume = float(np.prod(self.frame_hi - self.frame_lo))
        if volume <= 0:
            raise ValueError("frame must have positive volume")
        self._volume = volume

    def cell_probability(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> float:
        lo = np.maximum(np.asarray(lows, dtype=np.float64), self.frame_lo)
        hi = np.minimum(np.asarray(highs, dtype=np.float64), self.frame_hi)
        extent = np.clip(hi - lo, 0.0, None)
        return float(np.prod(extent) / self._volume)

    def per_dimension_masses(
        self, edges: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Product-form fast path (see the same method on the mixtures)."""
        masses: List[np.ndarray] = []
        for d, edge in enumerate(edges):
            clipped = np.clip(
                np.asarray(edge, dtype=np.float64),
                self.frame_lo[d],
                self.frame_hi[d],
            )
            span = self.frame_hi[d] - self.frame_lo[d]
            masses.append(np.diff(clipped) / span)
        return masses


@dataclass
class GridCell:
    """One grid cell with its clustering attributes."""

    index: Tuple[int, ...]
    lows: Tuple[float, ...]
    highs: Tuple[float, ...]
    members: int = 0  # bitmask over compact subscriber indices
    probability: float = 0.0

    @property
    def member_count(self) -> int:
        """``n(g)`` — number of interested subscribers."""
        return self.members.bit_count()

    @property
    def weight(self) -> float:
        """``p(g) * n(g)`` — the top-T ranking key."""
        return self.probability * self.member_count

    def rectangle(self) -> Rectangle:
        """The cell as a half-open rectangle."""
        return Rectangle(self.lows, self.highs)


class EventGrid:
    """Regular grid with membership lists and publication probabilities.

    Parameters
    ----------
    rectangles:
        All subscription rectangles ``b_ij``.
    subscriber_ids:
        For each rectangle, the identity of its subscriber (typically
        the network node).  Distinct values are mapped onto compact
        bit positions; several rectangles may share a subscriber.
    density:
        Event density used for ``p(g)``; ``None`` means uniform over
        the fitted frame.
    cells_per_dim:
        The grid resolution ``C``.
    frame:
        Optional explicit bounding box ``(lows, highs)``; by default a
        frame is fitted over the finite coordinates of the data.
    """

    def __init__(
        self,
        rectangles: Sequence[Rectangle],
        subscriber_ids: Sequence[int],
        density: Optional[CellProbability] = None,
        cells_per_dim: int = DEFAULT_CELLS_PER_DIM,
        frame: Optional[tuple[Sequence[float], Sequence[float]]] = None,
    ):
        if len(rectangles) != len(subscriber_ids):
            raise ValueError("one subscriber id per rectangle required")
        if not rectangles:
            raise ValueError("need at least one rectangle")
        if cells_per_dim < 1:
            raise ValueError("cells_per_dim must be positive")
        self.cells_per_dim = cells_per_dim
        self.ndim = rectangles[0].ndim

        # Compact subscriber indexing (bit positions).
        unique_ids = sorted(set(int(s) for s in subscriber_ids))
        self.subscribers: List[int] = unique_ids
        self._bit_of: Dict[int, int] = {
            sid: bit for bit, sid in enumerate(unique_ids)
        }

        lows = np.array([r.lows for r in rectangles], dtype=np.float64)
        highs = np.array([r.highs for r in rectangles], dtype=np.float64)
        if frame is not None:
            self.frame_lo = np.asarray(frame[0], dtype=np.float64)
            self.frame_hi = np.asarray(frame[1], dtype=np.float64)
            if self.frame_lo.shape != (self.ndim,) or self.frame_hi.shape != (
                self.ndim,
            ):
                raise ValueError("frame bounds must match dimensionality")
            if np.any(self.frame_hi <= self.frame_lo):
                raise ValueError("frame must have positive extent")
        else:
            self.frame_lo, self.frame_hi = _fit_frame(lows, highs)
        self._width = (self.frame_hi - self.frame_lo) / cells_per_dim

        if density is None:
            density = UniformCellProbability(self.frame_lo, self.frame_hi)
        self.density = density

        self.cells: Dict[Tuple[int, ...], GridCell] = {}
        self._populate(lows, highs, subscriber_ids)

    # -- construction ------------------------------------------------------

    def _populate(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        subscriber_ids: Sequence[int],
    ) -> None:
        c = self.cells_per_dim
        for row in range(lows.shape[0]):
            lo = np.maximum(
                np.where(np.isfinite(lows[row]), lows[row], self.frame_lo),
                self.frame_lo,
            )
            hi = np.minimum(
                np.where(np.isfinite(highs[row]), highs[row], self.frame_hi),
                self.frame_hi,
            )
            if np.any(highs[row] <= lows[row]):
                continue  # empty subscription matches nothing
            if np.any(hi <= lo):
                continue  # entirely outside the frame
            first, last = covered_cell_range(
                lo, hi, self.frame_lo, self._width, c
            )
            bit = 1 << self._bit_of[int(subscriber_ids[row])]
            ranges = [range(first[d], last[d] + 1) for d in range(self.ndim)]
            for index in product(*ranges):
                if not self._cell_intersects(index, lo, hi):
                    continue  # boundary-adjacent candidate, empty overlap
                cell = self.cells.get(index)
                if cell is None:
                    cell = self._make_cell(index)
                    self.cells[index] = cell
                cell.members |= bit

        self._assign_probabilities()

    def _assign_probabilities(self) -> None:
        """Fill ``p(g)`` for every occupied cell.

        Densities exposing ``per_dimension_masses`` (product-form joint
        distributions — the mixtures of Section 5 and the uniform
        default) get a fast path: ``C`` masses per dimension computed
        once, each cell a product lookup.  Anything else falls back to
        one ``cell_probability`` call per cell.
        """
        per_dim = getattr(self.density, "per_dimension_masses", None)
        if per_dim is not None:
            edges = [
                self.frame_lo[d]
                + self._width[d] * np.arange(self.cells_per_dim + 1)
                for d in range(self.ndim)
            ]
            masses = per_dim(edges)
            for index, cell in self.cells.items():
                probability = 1.0
                for d, i in enumerate(index):
                    probability *= float(masses[d][i])
                cell.probability = probability
        else:
            for cell in self.cells.values():
                cell.probability = self.density.cell_probability(
                    cell.lows, cell.highs
                )

    def _cell_intersects(
        self, index: Tuple[int, ...], lo: np.ndarray, hi: np.ndarray
    ) -> bool:
        """Exact half-open overlap test between a cell and ``(lo, hi]``.

        The candidate range from :func:`covered_cell_range` is
        deliberately one cell wide of exact boundaries; this filter
        keeps membership semantics tight (``l(g)`` contains only
        subscribers whose rectangles truly intersect ``g``).
        """
        cell_lo = self.frame_lo + np.asarray(index) * self._width
        cell_hi = cell_lo + self._width
        return bool(
            np.all(np.maximum(lo, cell_lo) < np.minimum(hi, cell_hi))
        )

    def _make_cell(self, index: Tuple[int, ...]) -> GridCell:
        lo = self.frame_lo + np.asarray(index) * self._width
        hi = lo + self._width
        return GridCell(
            index=index,
            lows=tuple(float(x) for x in lo),
            highs=tuple(float(x) for x in hi),
        )

    # -- incremental maintenance ---------------------------------------------

    def add_subscription(
        self, rectangle: Rectangle, subscriber: int
    ) -> List[Tuple[int, ...]]:
        """Fold one new subscription into the membership lists.

        Registers the subscriber (allocating a new bit position if it
        is unseen), marks every covered cell — creating cells as
        needed, with their probability filled from the density — and
        returns the affected cell indices so callers (the space
        partition) can refresh the corresponding multicast groups.

        This is the *incremental* half of churn maintenance; removing
        a subscription requires recomputing the affected masks from
        the surviving rectangles, i.e. a rebuild (see
        :meth:`repro.core.dynamic.DynamicPubSubBroker.unsubscribe`).
        """
        if rectangle.ndim != self.ndim:
            raise ValueError(
                f"rectangle has {rectangle.ndim} dimensions, grid has "
                f"{self.ndim}"
            )
        subscriber = int(subscriber)
        bit_index = self._bit_of.get(subscriber)
        if bit_index is None:
            bit_index = len(self.subscribers)
            self.subscribers.append(subscriber)
            self._bit_of[subscriber] = bit_index
        bit = 1 << bit_index

        lows = np.asarray(rectangle.lows, dtype=np.float64)
        highs = np.asarray(rectangle.highs, dtype=np.float64)
        if np.any(highs <= lows):
            return []
        lo = np.maximum(
            np.where(np.isfinite(lows), lows, self.frame_lo), self.frame_lo
        )
        hi = np.minimum(
            np.where(np.isfinite(highs), highs, self.frame_hi),
            self.frame_hi,
        )
        if np.any(hi <= lo):
            return []
        first, last = covered_cell_range(
            lo, hi, self.frame_lo, self._width, self.cells_per_dim
        )
        affected: List[Tuple[int, ...]] = []
        ranges = [range(first[d], last[d] + 1) for d in range(self.ndim)]
        for index in product(*ranges):
            if not self._cell_intersects(index, lo, hi):
                continue  # boundary-adjacent candidate, empty overlap
            cell = self.cells.get(index)
            if cell is None:
                cell = self._make_cell(index)
                cell.probability = self.density.cell_probability(
                    cell.lows, cell.highs
                )
                self.cells[index] = cell
            cell.members |= bit
            affected.append(index)
        return affected

    # -- queries --------------------------------------------------------------

    def locate(self, point: Sequence[float]) -> Optional[Tuple[int, ...]]:
        """Grid coordinates of a point, or ``None`` outside the frame.

        Half-open convention: a point exactly on the frame's low edge
        is outside; one on the high edge is in the last cell.
        """
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (self.ndim,):
            raise ValueError("point dimensionality mismatch")
        coords = locate_cell(
            p, self.frame_lo, self.frame_hi, self._width, self.cells_per_dim
        )
        if coords is None:
            return None
        return tuple(int(x) for x in coords)

    def quantize(self, point: Sequence[float]) -> Tuple[int, ...]:
        """Unclamped grid coordinates of *any* point, even out of frame.

        Applies the same ceil quantization as :meth:`locate` but never
        clips: points beyond the frame get coordinates below 0 or at or
        above ``cells_per_dim``.  A pure function of the grid geometry —
        the sharding router uses it to hash out-of-frame (catchall)
        publications onto a stable pseudo-cell.
        """
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (self.ndim,):
            raise ValueError("point dimensionality mismatch")
        coords = np.ceil((p - self.frame_lo) / self._width).astype(int) - 1
        return tuple(int(x) for x in coords)

    def cell_overlaps(
        self, index: Tuple[int, ...], lows: Sequence[float], highs: Sequence[float]
    ) -> bool:
        """Exact half-open overlap between cell ``index`` and ``(lows, highs]``."""
        return self._cell_intersects(
            index,
            np.asarray(lows, dtype=np.float64),
            np.asarray(highs, dtype=np.float64),
        )

    @property
    def cell_width(self) -> np.ndarray:
        """Per-dimension cell extent (frame span / ``cells_per_dim``)."""
        return self._width

    def top_cells(self, count: int) -> List[GridCell]:
        """The ``T`` highest-weight cells (``p(g)*n(g)``), best first.

        Ties break deterministically on the cell index.
        """
        occupied = [c for c in self.cells.values() if c.member_count > 0]
        occupied.sort(key=lambda cell: (-cell.weight, cell.index))
        return occupied[:count]

    def members_of(self, mask: int) -> List[int]:
        """Translate a membership bitmask back into subscriber ids."""
        result: List[int] = []
        bit = 0
        while mask:
            if mask & 1:
                result.append(self.subscribers[bit])
            mask >>= 1
            bit += 1
        return result

    @property
    def num_occupied_cells(self) -> int:
        """Cells intersected by at least one subscription."""
        return sum(1 for c in self.cells.values() if c.member_count > 0)

    @property
    def num_subscribers(self) -> int:
        return len(self.subscribers)


def _fit_frame(
    lows: np.ndarray, highs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Bounding frame over the finite coordinates, slightly padded.

    The padding keeps rectangle edges off the frame boundary so the
    half-open cell arithmetic never loses the extremes.
    """
    finite_lo = np.where(np.isfinite(lows), lows, np.nan)
    finite_hi = np.where(np.isfinite(highs), highs, np.nan)
    stacked = np.concatenate([finite_lo, finite_hi], axis=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        lo = np.nanmin(stacked, axis=0)
        hi = np.nanmax(stacked, axis=0)
    lo = np.where(np.isfinite(lo), lo, 0.0)
    hi = np.where(np.isfinite(hi), hi, 1.0)
    span = np.maximum(hi - lo, 1e-9)
    return lo - 0.01 * span, hi + 0.01 * span
