"""K-means cell clustering (paper Appendix A.2).

A standard k-means loop applied to grid cells, with the expected-waste
increase as the distance between a cell and a cluster:

- **Step 0**: take ``h``, the ``T`` highest-weight cells.
- **Step 1**: seed ``n`` clusters from the first ``n`` cells of ``h``
  (Forgy seeding — the top cells themselves are the initial "centers"),
  then assign the remaining cells of ``h`` to the closest cluster.
- **Step 2**: sweep all cells of ``h``; each cell that is not alone in
  its cluster is removed and re-placed into the closest cluster
  (possibly the one it came from), with ``l(.)`` and EW updated
  immediately.
- **Step 3**: repeat Step 2 until membership stabilizes or a maximum
  iteration count is hit (k-means converges to a local optimum but
  without a polynomial bound, so the cap is load-bearing).

The paper's predecessor ([15], summarized in the Appendix) compared
*two* k-means flavours — "K-means" and "Forgy K-means".
:class:`ForgyKMeansClustering` is the Appendix algorithm above, with
the online, immediate-update Step 2; :class:`BatchKMeansClustering` is
the classic batch variant — compute every cell's closest cluster
against a frozen snapshot, then apply all moves at once — provided to
complete the paper's algorithm roster.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import DEFAULT_MAX_CELLS, CellClusteringAlgorithm, ClusteringResult
from .grid import EventGrid, GridCell
from .waste import ClusterState

__all__ = ["ForgyKMeansClustering", "BatchKMeansClustering"]

DEFAULT_MAX_ITERATIONS = 50


class ForgyKMeansClustering(CellClusteringAlgorithm):
    """The paper's best-performing (and fastest) clustering algorithm.

    ``seeding`` selects Step 1's initial centers:

    - ``"topweight"`` (paper-faithful default) — the first ``n`` cells
      of ``h``, i.e. the highest-weight cells.  Top cells often sit in
      the same hot spot, so the seeds can start very similar.
    - ``"spread"`` — a k-means++-style farthest-first sweep under the
      EW distance: the first seed is the top cell, each further seed
      is the working cell whose EW distance to its closest existing
      seed is largest.  A library extension; the seeding ablation
      benchmark quantifies the difference.
    """

    name = "forgy"

    def __init__(
        self,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        seeding: str = "topweight",
    ):
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        if seeding not in ("topweight", "spread"):
            raise ValueError(
                f"seeding must be 'topweight' or 'spread', got {seeding!r}"
            )
        self.max_iterations = max_iterations
        self.seeding = seeding

    def _seeds(self, cells: List[GridCell], n: int) -> List[GridCell]:
        """Pick Step 1's ``n`` seed cells."""
        if self.seeding == "topweight" or n >= len(cells):
            return cells[:n]
        seeds = [cells[0]]
        seed_states = [ClusterState.from_cells([cells[0]])]
        remaining = {cell.index for cell in cells[1:]}
        while len(seeds) < n:
            best_cell = None
            best_distance = -1.0
            for cell in cells:
                if cell.index not in remaining:
                    continue
                closest = min(
                    state.distance_to(cell) for state in seed_states
                )
                if closest > best_distance:
                    best_distance = closest
                    best_cell = cell
            seeds.append(best_cell)
            seed_states.append(ClusterState.from_cells([best_cell]))
            remaining.discard(best_cell.index)
        return seeds

    def cluster(
        self,
        grid: EventGrid,
        num_groups: int,
        max_cells: int = DEFAULT_MAX_CELLS,
    ) -> ClusteringResult:
        cells = self._working_cells(grid, num_groups, max_cells)
        if not cells:
            return ClusteringResult(algorithm=self.name, clusters=[])
        n = min(num_groups, len(cells))

        # Step 1 — seed, then assign the remaining cells greedily.
        seeds = self._seeds(cells, n)
        seed_indices = {cell.index for cell in seeds}
        clusters = [ClusterState.from_cells([cell]) for cell in seeds]
        assignment = {cell.index: i for i, cell in enumerate(seeds)}
        for cell in cells:
            if cell.index in seed_indices:
                continue
            best = self._closest(clusters, cell)
            clusters[best].add(cell)
            assignment[cell.index] = best

        # Steps 2-3 — immediate-update reassignment sweeps.
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            changed = False
            for cell in cells:
                current = assignment[cell.index]
                if len(clusters[current]) <= 1:
                    continue  # a cell alone in its cluster stays put
                clusters[current].remove(cell)
                best = self._closest(clusters, cell)
                clusters[best].add(cell)
                if best != current:
                    assignment[cell.index] = best
                    changed = True
            if not changed:
                break

        return ClusteringResult(
            algorithm=self.name,
            clusters=[list(state.cells) for state in clusters if state.cells],
            iterations=iterations,
        )

    @staticmethod
    def _closest(clusters: List[ClusterState], cell: GridCell) -> int:
        """Index of the cluster whose EW grows least by adding ``cell``.

        Ties break toward the lowest index, which keeps runs
        deterministic for a fixed input order.
        """
        best_index = 0
        best_distance = float("inf")
        for i, state in enumerate(clusters):
            distance = state.distance_to(cell)
            if distance < best_distance:
                best_distance = distance
                best_index = i
        return best_index


class BatchKMeansClustering(CellClusteringAlgorithm):
    """Classic batch k-means over grid cells (the [15] "K-means").

    Differs from :class:`ForgyKMeansClustering` only in the update
    discipline: each iteration evaluates every cell's closest cluster
    against the *previous* iteration's cluster states, then applies
    all reassignments simultaneously.  Batch updates converge in lock
    step (and can oscillate, hence the iteration cap) but are trivially
    parallelizable — the classic trade-off.
    """

    name = "kmeans"

    def __init__(self, max_iterations: int = DEFAULT_MAX_ITERATIONS):
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.max_iterations = max_iterations

    def cluster(
        self,
        grid: EventGrid,
        num_groups: int,
        max_cells: int = DEFAULT_MAX_CELLS,
    ) -> ClusteringResult:
        cells = self._working_cells(grid, num_groups, max_cells)
        if not cells:
            return ClusteringResult(algorithm=self.name, clusters=[])
        n = min(num_groups, len(cells))

        # Same greedy seeding as the Forgy variant (Step 1).
        clusters = [ClusterState.from_cells([cell]) for cell in cells[:n]]
        assignment: Dict = {cell.index: i for i, cell in enumerate(cells[:n])}
        for cell in cells[n:]:
            best = ForgyKMeansClustering._closest(clusters, cell)
            clusters[best].add(cell)
            assignment[cell.index] = best

        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # Evaluate against a frozen snapshot...
            proposed = {
                cell.index: ForgyKMeansClustering._closest(clusters, cell)
                for cell in cells
            }
            # ...then apply every move at once, never emptying a cluster.
            changed = False
            population = [0] * n
            for index in assignment.values():
                population[index] += 1
            members: List[List[GridCell]] = [[] for _ in range(n)]
            for cell in cells:
                target = proposed[cell.index]
                current = assignment[cell.index]
                if target != current and population[current] <= 1:
                    target = current  # keep the cluster non-empty
                if target != current:
                    changed = True
                    population[current] -= 1
                    population[target] += 1
                    assignment[cell.index] = target
                members[assignment[cell.index]].append(cell)
            clusters = [ClusterState.from_cells(ms) for ms in members]
            if not changed:
                break

        return ClusteringResult(
            algorithm=self.name,
            clusters=[list(state.cells) for state in clusters if state.cells],
            iterations=iterations,
        )
