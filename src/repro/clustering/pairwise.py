"""Pairwise grouping: greedy agglomerative clustering (Appendix A.3).

Starts from the ``T`` highest-weight cells as singleton clusters and
repeatedly replaces the closest pair with its combination until only
``n`` clusters remain.  "Closest" means the pair whose *merged* cluster
has the smallest expected waste — distances involving a freshly merged
cluster are recomputed after every merge, which is exactly what makes
this algorithm slower (O(T^2) work per merge in the naive form; we keep
a distance matrix and refresh just the merged row, O(T) per merge) yet
often slightly better than k-means, matching the paper's observation.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from .base import DEFAULT_MAX_CELLS, CellClusteringAlgorithm, ClusteringResult
from .grid import EventGrid
from .waste import ClusterState

__all__ = ["PairwiseGroupingClustering"]


class PairwiseGroupingClustering(CellClusteringAlgorithm):
    """Agglomerative merging under the expected-waste objective."""

    name = "pairwise"

    def cluster(
        self,
        grid: EventGrid,
        num_groups: int,
        max_cells: int = DEFAULT_MAX_CELLS,
    ) -> ClusteringResult:
        cells = self._working_cells(grid, num_groups, max_cells)
        if not cells:
            return ClusteringResult(algorithm=self.name, clusters=[])
        states: List[ClusterState] = [
            ClusterState.from_cells([cell]) for cell in cells
        ]
        active = [True] * len(states)
        remaining = len(states)
        merges = 0

        # Full symmetric distance matrix; inf marks dead/diagonal slots.
        size = len(states)
        distance = np.full((size, size), math.inf)
        for i in range(size):
            for j in range(i + 1, size):
                distance[i, j] = distance[j, i] = states[i].waste_if_merged(
                    states[j]
                )

        while remaining > num_groups:
            flat = int(np.argmin(distance))
            i, j = divmod(flat, size)
            if not math.isfinite(distance[i, j]):
                break  # no mergeable pair left (degenerate input)
            keep, drop = (i, j) if i < j else (j, i)
            states[keep].merge(states[drop])
            active[drop] = False
            distance[drop, :] = math.inf
            distance[:, drop] = math.inf
            for other in range(size):
                if other != keep and active[other]:
                    d = states[keep].waste_if_merged(states[other])
                    distance[keep, other] = distance[other, keep] = d
            remaining -= 1
            merges += 1

        return ClusteringResult(
            algorithm=self.name,
            clusters=[
                list(state.cells)
                for state, alive in zip(states, active)
                if alive and state.cells
            ],
            iterations=merges,
        )
