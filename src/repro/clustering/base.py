"""Shared scaffolding for the subscription clustering algorithms.

Each algorithm consumes an :class:`~repro.clustering.grid.EventGrid`,
works on the ``T`` highest-weight cells, and produces at most ``n``
clusters of cells.  The clusters later become the space partition
``S_1 .. S_n`` (everything else is the catchall ``S_0``) and the
multicast groups ``M_q`` (see :mod:`repro.clustering.groups`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Sequence

from .grid import EventGrid, GridCell
from .waste import ClusterState

__all__ = [
    "DEFAULT_MAX_CELLS",
    "ClusteringResult",
    "CellClusteringAlgorithm",
]

#: The paper's constant ``T``: the number of top-weight cells clustered.
DEFAULT_MAX_CELLS = 200


@dataclass
class ClusteringResult:
    """Output of one clustering run."""

    algorithm: str
    clusters: List[List[GridCell]]
    iterations: int = 0

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def num_cells(self) -> int:
        return sum(len(c) for c in self.clusters)

    def total_expected_waste(self) -> float:
        """Publication-probability-weighted EW across clusters.

        A natural single-figure quality score: the expected number of
        wasted copies per event, conditioned on the event landing in
        *some* cluster.
        """
        total_probability = 0.0
        weighted = 0.0
        for cells in self.clusters:
            state = ClusterState.from_cells(cells)
            weighted += state.expected_waste * state.probability
            total_probability += state.probability
        if total_probability <= 0.0:
            return 0.0
        return weighted / total_probability

    def validate_disjoint(self) -> None:
        """Raise if any grid cell appears in two clusters."""
        seen = set()
        for cells in self.clusters:
            for cell in cells:
                if cell.index in seen:
                    raise AssertionError(
                        f"cell {cell.index} appears in multiple clusters"
                    )
                seen.add(cell.index)


class CellClusteringAlgorithm(abc.ABC):
    """Interface of the three Appendix algorithms."""

    #: Short name used in experiment tables ("forgy", "pairwise", "mst").
    name: str = "base"

    @abc.abstractmethod
    def cluster(
        self,
        grid: EventGrid,
        num_groups: int,
        max_cells: int = DEFAULT_MAX_CELLS,
    ) -> ClusteringResult:
        """Cluster the grid's top-``max_cells`` cells into ``num_groups``."""

    @staticmethod
    def _working_cells(
        grid: EventGrid, num_groups: int, max_cells: int
    ) -> List[GridCell]:
        """Common Step 0: validate arguments and take the top-T cells."""
        if num_groups < 1:
            raise ValueError("num_groups must be positive")
        if max_cells < num_groups:
            raise ValueError(
                f"max_cells ({max_cells}) must be at least "
                f"num_groups ({num_groups})"
            )
        return grid.top_cells(max_cells)
