"""Subscription clustering: grid, expected waste, and the three algorithms.

Implements the preprocessing substrate the paper takes as given
(Section 4 and the Appendix, following the authors' ICDCS 2002 paper):
a regular grid over the event space, the expected-waste distance, and
the Forgy k-means / pairwise grouping / minimum spanning tree cell
clustering algorithms, plus the conversion of clusters into the space
partition ``S_0 .. S_n`` and multicast groups ``M_q``.
"""

from .base import DEFAULT_MAX_CELLS, CellClusteringAlgorithm, ClusteringResult
from .grid import (
    CellProbability,
    EventGrid,
    GridCell,
    UniformCellProbability,
)
from .groups import MulticastGroup, SpacePartition
from .incremental import IncrementalClusterMaintainer
from .kmeans import BatchKMeansClustering, ForgyKMeansClustering
from .mst import MinimumSpanningTreeClustering
from .pairwise import PairwiseGroupingClustering
from .waste import (
    ClusterState,
    expected_waste_of_cells,
    paper_recursive_expected_waste,
)

__all__ = [
    "DEFAULT_MAX_CELLS",
    "CellClusteringAlgorithm",
    "ClusteringResult",
    "CellProbability",
    "EventGrid",
    "GridCell",
    "UniformCellProbability",
    "MulticastGroup",
    "IncrementalClusterMaintainer",
    "SpacePartition",
    "BatchKMeansClustering",
    "ForgyKMeansClustering",
    "MinimumSpanningTreeClustering",
    "PairwiseGroupingClustering",
    "ClusterState",
    "expected_waste_of_cells",
    "paper_recursive_expected_waste",
]
