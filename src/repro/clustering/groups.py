"""From cell clusters to the space partition and multicast groups.

The clustering output becomes (paper Section 4):

- a partition of the event space into ``n`` subsets ``S_1 .. S_n``
  (each the union of a cluster's grid cells) plus the catchall
  ``S_0 = Omega \\ union(S_q)``;
- one multicast group per subset, ``M_q = { subscribers with a
  subscription overlapping S_q }`` — by construction this is the union
  of the member lists ``l(g)`` of the cluster's cells.

:class:`SpacePartition` resolves a publication point to its subset in
O(N) (grid cell lookup plus one dict probe) and exposes each group's
member nodes, which is everything the distribution-method scheme needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .base import ClusteringResult
from .grid import EventGrid, GridCell
from .waste import ClusterState

__all__ = ["MulticastGroup", "SpacePartition"]


@dataclass(frozen=True)
class MulticastGroup:
    """One precomputed multicast group ``M_q``.

    ``members`` are subscriber identities (network node ids).  ``q`` is
    1-based, matching the paper (0 is reserved for the catchall).
    """

    q: int
    members: Tuple[int, ...]
    expected_waste: float

    @property
    def size(self) -> int:
        return len(self.members)


class SpacePartition:
    """The ``(n + 1)``-way partition of the event space plus its groups."""

    def __init__(self, grid: EventGrid, result: ClusteringResult):
        result.validate_disjoint()
        self.grid = grid
        self.algorithm = result.algorithm
        self._cell_to_group: Dict[Tuple[int, ...], int] = {}
        groups: List[MulticastGroup] = []
        for position, cells in enumerate(result.clusters):
            q = position + 1
            state = ClusterState.from_cells(cells)
            groups.append(
                MulticastGroup(
                    q=q,
                    members=tuple(grid.members_of(state.members)),
                    expected_waste=state.expected_waste,
                )
            )
            for cell in cells:
                self._cell_to_group[cell.index] = q
        self.groups = groups

    @property
    def num_groups(self) -> int:
        """``n`` — the number of real (non-catchall) groups."""
        return len(self.groups)

    def locate(self, point: Sequence[float]) -> int:
        """Subset index of a publication: ``1..n``, or 0 for ``S_0``.

        Points outside the grid frame, in unclustered cells, or in
        cells with no subscribers all fall into the catchall.
        """
        cell = self.grid.locate(point)
        if cell is None:
            return 0
        return self._cell_to_group.get(cell, 0)

    def group_of_cell(self, index: Tuple[int, ...]) -> int:
        """Subset owning grid cell ``index``: ``1..n``, or 0 (catchall).

        The cell-granular view of :meth:`locate`, for callers (the
        sharding router) that enumerate cells instead of points.
        """
        return self._cell_to_group.get(tuple(int(x) for x in index), 0)

    def group(self, q: int) -> MulticastGroup:
        """The group for subset ``S_q`` (``q`` must be 1-based)."""
        if not 1 <= q <= len(self.groups):
            raise IndexError(f"group index {q} out of range 1..{len(self.groups)}")
        return self.groups[q - 1]

    def group_sizes(self) -> List[int]:
        """Member counts of all groups (diagnostics)."""
        return [g.size for g in self.groups]

    def add_subscription(self, rectangle, subscriber: int) -> List[int]:
        """Incrementally admit one new subscription (churn support).

        Updates the grid's membership lists and enlarges every
        multicast group whose subset the rectangle overlaps, preserving
        the paper's invariant ``M_q ⊇ {interested subscribers of any
        event in S_q}``.  Returns the (1-based) ids of the groups that
        gained the subscriber.

        This is the cheap half of churn; removals shrink groups and
        therefore need a re-preprocess (see
        :class:`repro.core.dynamic.DynamicPubSubBroker`).
        """
        affected_cells = self.grid.add_subscription(rectangle, subscriber)
        grown: List[int] = []
        for index in affected_cells:
            q = self._cell_to_group.get(index)
            if q is None:
                continue
            group = self.groups[q - 1]
            if subscriber in group.members:
                continue
            self.groups[q - 1] = MulticastGroup(
                q=q,
                members=tuple(sorted(group.members + (subscriber,))),
                expected_waste=group.expected_waste,
            )
            grown.append(q)
        return grown

    # -- persistence (checkpoint/recovery support) --------------------------

    def to_state(self) -> Dict:
        """JSON-ready encoding of the assignment (not the grid).

        Captures everything a restarted broker needs to route exactly
        as before: the grid *geometry* (frame + resolution, so
        ``locate`` lands points in the same cells), the cell→group
        mapping and each group's member list.  The grid's membership
        bitmasks and densities are derived state — rebuilt from the
        subscription table on :meth:`restore`, never stored.
        """
        return {
            "algorithm": self.algorithm,
            "frame_lo": [float(x) for x in self.grid.frame_lo],
            "frame_hi": [float(x) for x in self.grid.frame_hi],
            "cells_per_dim": int(self.grid.cells_per_dim),
            "groups": [
                {
                    "q": group.q,
                    "members": [int(m) for m in group.members],
                    "expected_waste": float(group.expected_waste),
                }
                for group in self.groups
            ],
            "cell_to_group": [
                [list(index), q]
                for index, q in sorted(self._cell_to_group.items())
            ],
        }

    @classmethod
    def restore(cls, grid: EventGrid, state: Dict) -> SpacePartition:
        """Rebuild a partition from :meth:`to_state` output.

        ``grid`` must be built over the recovered subscription set with
        the frame/resolution recorded in ``state`` — the stored
        assignment is authoritative, so no clustering runs.
        """
        partition = cls.__new__(cls)
        partition.grid = grid
        partition.algorithm = state["algorithm"]
        partition._cell_to_group = {
            tuple(int(x) for x in index): int(q)
            for index, q in state["cell_to_group"]
        }
        partition.groups = [
            MulticastGroup(
                q=int(entry["q"]),
                members=tuple(int(m) for m in entry["members"]),
                expected_waste=float(entry["expected_waste"]),
            )
            for entry in sorted(state["groups"], key=lambda e: e["q"])
        ]
        return partition

    def covered_probability(self) -> float:
        """Publication mass covered by ``S_1 .. S_n`` (vs the catchall).

        Uses the grid's density; higher coverage means fewer events
        fall back to pure unicast.
        """
        mass = 0.0
        for index, q in self._cell_to_group.items():
            cell = self.grid.cells[index]
            mass += cell.probability
        return mass
