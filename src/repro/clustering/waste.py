"""The expected-waste (EW) objective and cluster state (Appendix A.2).

When a multicast group is formed for a set of grid cells ``G``, every
event landing in a cell ``g ∈ G`` is multicast to all of ``l(G)`` (the
union of the cells' subscriber sets), but only ``l(g)`` wanted it.  The
*expected waste* of the group is the expected number of unwanted copies
per event, conditioned on the event hitting the group::

    EW(G) = sum_{g in G} p(g) * (|l(G)| - |l(g)|) / p(G)
          = |l(G)| - ( sum_{g in G} p(g) * |l(g)| ) / p(G)

with ``p(G) = sum p(g)``.  The paper states the same quantity through a
recursion for adding one cell to a group; expanding the definition
above gives the exact recursion::

    EW_new = [ EW_old * p(G) + p(G) * |l(x) \\ l(G)|
                             + p(x) * |l(G) \\ l(x)| ] / (p(G) + p(x))

The paper's printed formula multiplies its first bracket as
``EW_old * p(G) * (1 + |l(x) \\ l(G)|)`` — under that reading the
recursion is order-dependent and does not telescope to any set
function, so we take it as a typesetting slip and implement the exact
closed form (also provided literally as
:func:`paper_recursive_expected_waste` for comparison).  The closed
form has three practical advantages the clustering code leans on: it
is order-independent, it supports O(1) merges, and removal needs only
a membership-mask rebuild.

Cell membership sets are bitmasks (Python ints), so all the set
algebra here is integer ``&``, ``|`` and ``bit_count``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from .grid import GridCell

__all__ = [
    "ClusterState",
    "expected_waste_of_cells",
    "paper_recursive_expected_waste",
]


@dataclass
class ClusterState:
    """Incremental EW bookkeeping for one cluster of grid cells.

    Tracks the three sufficient statistics of the closed form:
    ``members`` (the bitmask of ``l(G)``), ``probability`` (``p(G)``)
    and ``weighted_member_sum`` (``sum p(g) |l(g)|``), plus the member
    cell list (needed to rebuild the mask after a removal).
    """

    cells: List[GridCell] = field(default_factory=list)
    members: int = 0
    probability: float = 0.0
    weighted_member_sum: float = 0.0

    @classmethod
    def from_cells(cls, cells: Iterable[GridCell]) -> ClusterState:
        state = cls()
        for cell in cells:
            state.add(cell)
        return state

    # -- the objective -----------------------------------------------------

    @property
    def expected_waste(self) -> float:
        """``EW(G)``; zero for empty clusters and zero-probability ones."""
        if self.probability <= 0.0:
            return 0.0
        return (
            self.members.bit_count()
            - self.weighted_member_sum / self.probability
        )

    def waste_if_added(self, cell: GridCell) -> float:
        """``EW(G ∪ {x})`` without mutating the cluster."""
        probability = self.probability + cell.probability
        if probability <= 0.0:
            return 0.0
        members = self.members | cell.members
        weighted = (
            self.weighted_member_sum
            + cell.probability * cell.member_count
        )
        return members.bit_count() - weighted / probability

    def distance_to(self, cell: GridCell) -> float:
        """The paper's distance: the EW increase from adding ``cell``."""
        return self.waste_if_added(cell) - self.expected_waste

    def waste_if_merged(self, other: ClusterState) -> float:
        """``EW(A ∪ B)`` without mutating either cluster."""
        probability = self.probability + other.probability
        if probability <= 0.0:
            return 0.0
        members = self.members | other.members
        weighted = self.weighted_member_sum + other.weighted_member_sum
        return members.bit_count() - weighted / probability

    # -- mutation ------------------------------------------------------------

    def add(self, cell: GridCell) -> None:
        """Fold one cell into the cluster."""
        self.cells.append(cell)
        self.members |= cell.members
        self.probability += cell.probability
        self.weighted_member_sum += cell.probability * cell.member_count

    def remove(self, cell: GridCell) -> None:
        """Take one member cell out (k-means Step 2).

        The scalar statistics subtract exactly; the membership union is
        not invertible, so the mask is rebuilt from the remaining cells.
        """
        try:
            self.cells.remove(cell)
        except ValueError:
            raise ValueError(
                f"cell {cell.index} is not a member of this cluster"
            ) from None
        self.probability -= cell.probability
        self.weighted_member_sum -= cell.probability * cell.member_count
        if self.probability < 0.0:  # guard against float drift
            self.probability = 0.0
        members = 0
        for member in self.cells:
            members |= member.members
        self.members = members

    def merge(self, other: ClusterState) -> None:
        """Absorb another cluster (pairwise grouping's combine step)."""
        self.cells.extend(other.cells)
        self.members |= other.members
        self.probability += other.probability
        self.weighted_member_sum += other.weighted_member_sum

    def __len__(self) -> int:
        return len(self.cells)


def expected_waste_of_cells(cells: Sequence[GridCell]) -> float:
    """``EW`` of a cell set, straight from the closed-form definition."""
    return ClusterState.from_cells(cells).expected_waste


def paper_recursive_expected_waste(cells: Sequence[GridCell]) -> float:
    """The paper's printed recursion, applied in the given cell order.

    Provided for comparison and for the fidelity ablation benchmark;
    note the result depends on the fold order, unlike the closed form.
    """
    ew = 0.0
    members = 0
    probability = 0.0
    for cell in cells:
        if not members and probability == 0.0:
            members = cell.members
            probability = cell.probability
            ew = 0.0
            continue
        gained = (cell.members & ~members).bit_count()
        lost = (members & ~cell.members).bit_count()
        denominator = cell.probability + probability
        if denominator > 0.0:
            ew = (
                ew * probability * (1 + gained)
                + cell.probability * lost
            ) / denominator
        members |= cell.members
        probability += cell.probability
    return ew
