"""Minimum-spanning-tree clustering (Appendix A.3).

A simplified pairwise grouping: all pairwise distances between the
``T`` working cells are computed *once* (the expected waste of each
two-cell group), then edges are introduced in increasing distance
order — Kruskal's algorithm with union-find — until exactly ``n``
connected components remain.  Components become the clusters.

The paper reports this as the fastest of the three algorithms but the
weakest in solution quality, because distances are never refreshed as
components grow.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .base import DEFAULT_MAX_CELLS, CellClusteringAlgorithm, ClusteringResult
from .grid import EventGrid
from .waste import ClusterState

__all__ = ["MinimumSpanningTreeClustering"]


class _UnionFind:
    """Classic disjoint-set forest with path compression and ranks."""

    def __init__(self, size: int):
        self.parent = list(range(size))
        self.rank = [0] * size
        self.components = size

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.components -= 1
        return True


class MinimumSpanningTreeClustering(CellClusteringAlgorithm):
    """Single-linkage clustering under the pairwise-EW distance."""

    name = "mst"

    def cluster(
        self,
        grid: EventGrid,
        num_groups: int,
        max_cells: int = DEFAULT_MAX_CELLS,
    ) -> ClusteringResult:
        cells = self._working_cells(grid, num_groups, max_cells)
        if not cells:
            return ClusteringResult(algorithm=self.name, clusters=[])
        size = len(cells)
        target = min(num_groups, size)

        # All pairwise distances, computed exactly once.
        singletons = [ClusterState.from_cells([cell]) for cell in cells]
        edges: List[Tuple[float, int, int]] = []
        for i in range(size):
            for j in range(i + 1, size):
                edges.append(
                    (singletons[i].waste_if_merged(singletons[j]), i, j)
                )
        edges.sort(key=lambda e: e[0])

        forest = _UnionFind(size)
        added = 0
        for dist, i, j in edges:
            if forest.components <= target:
                break
            if forest.union(i, j):
                added += 1

        components: Dict[int, List[int]] = {}
        for i in range(size):
            components.setdefault(forest.find(i), []).append(i)
        return ClusteringResult(
            algorithm=self.name,
            clusters=[
                [cells[i] for i in member_indices]
                for member_indices in components.values()
            ],
            iterations=added,
        )
