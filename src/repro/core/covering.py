"""Redundant-subscription elimination (covering analysis).

A subscriber whose subscription ``a`` is entirely contained in another
of their own subscriptions ``b`` can never gain from ``a``: any event
matching ``a`` matches ``b`` too, and deliveries are per subscriber,
not per subscription.  Decomposition of multi-range predicates
(Section 1) and plain over-subscription both produce such redundancy;
pruning it shrinks the index ``I`` and the grid's work with zero
effect on delivery semantics.

Covering is checked per subscriber (cross-subscriber covering must
*not* prune — both parties need the delivery).  The check is the
O(r^2) pairwise containment test per subscriber, which is exact; with
the per-subscriber subscription counts the paper's workloads produce
(a handful each), this is never the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .subscription import Subscription, SubscriptionTable

__all__ = ["CoveringReport", "find_covered_subscriptions", "prune_covered"]


@dataclass(frozen=True)
class CoveringReport:
    """Outcome of a covering analysis."""

    total: int
    covered: Tuple[int, ...]  # subscription ids that are redundant

    @property
    def redundancy_fraction(self) -> float:
        """Share of subscriptions that are redundant."""
        if self.total == 0:
            return 0.0
        return len(self.covered) / self.total


def find_covered_subscriptions(table: SubscriptionTable) -> CoveringReport:
    """Identify every subscription covered by a same-subscriber one.

    Exact duplicates are reported symmetrically-broken: the higher id
    is considered redundant, so one representative always survives.
    """
    by_subscriber: Dict[int, List[Subscription]] = {}
    for subscription in table:
        by_subscriber.setdefault(subscription.subscriber, []).append(
            subscription
        )
    covered: List[int] = []
    for subscriptions in by_subscriber.values():
        for a in subscriptions:
            if a.rectangle.is_empty:
                covered.append(a.subscription_id)
                continue
            for b in subscriptions:
                if a.subscription_id == b.subscription_id:
                    continue
                if not b.rectangle.contains_rectangle(a.rectangle):
                    continue
                identical = b.rectangle == a.rectangle
                if identical and b.subscription_id > a.subscription_id:
                    continue  # the duplicate with the higher id goes
                covered.append(a.subscription_id)
                break
    covered.sort()
    return CoveringReport(total=len(table), covered=tuple(covered))


def prune_covered(
    table: SubscriptionTable,
) -> Tuple[SubscriptionTable, CoveringReport]:
    """A new table without the redundant subscriptions.

    Ids are re-assigned densely in the surviving subscriptions' order;
    matching semantics at the *subscriber* level are identical to the
    original table's (the pruning invariant, pinned by tests).
    """
    report = find_covered_subscriptions(table)
    redundant = set(report.covered)
    pruned = SubscriptionTable(table.ndim)
    for subscription in table:
        if subscription.subscription_id not in redundant:
            pruned.add(subscription.subscriber, subscription.rectangle)
    return pruned, report
