"""Subscription churn: matching and group maintenance under updates.

The paper treats preprocessing as static, acknowledging (via the
related work it cites, Wong/Katz/McCanne's initial + incremental
algorithms) that real systems face "ongoing and inevitable changes" in
subscriptions.  This module provides the standard production pattern
for a bulk-packed index under churn:

- **inserts** go to a small *overflow* side table scanned linearly at
  query time, and incrementally widen the affected multicast groups
  (cheap: group membership is a union, so adding never breaks the
  ``M_q ⊇ interested`` invariant);
- **deletes** become *tombstones* filtered out of match results
  (groups are left as supersets — deliveries stay correct, just
  slightly more wasteful, exactly like stale members in a real
  multicast group);
- once churn exceeds a configurable fraction of the index, the whole
  static preprocessing (S-tree packing + clustering) is **rebuilt**,
  amortizing its cost over many updates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from ..clustering.base import DEFAULT_MAX_CELLS, CellClusteringAlgorithm
from ..clustering.grid import CellProbability
from ..geometry.rectangle import Rectangle
from ..network.multicast import DeliveryCostModel
from ..network.topology import Topology
from ..spatial.base import QueryStats
from .broker import PubSubBroker
from .distribution import DistributionPolicy
from .event import Event
from .matching import MATCHER_BACKENDS, MatchingEngine, MatchResult
from .subscription import Subscription, SubscriptionTable

__all__ = ["DynamicMatchingEngine", "DynamicPubSubBroker"]

#: Rebuild once pending churn exceeds this fraction of the base index.
DEFAULT_REBUILD_FRACTION = 0.25


class DynamicMatchingEngine:
    """A matching engine that accepts subscribes and unsubscribes.

    Query semantics are identical to a freshly built
    :class:`~repro.core.matching.MatchingEngine` over the live
    subscription set; the overflow/tombstone machinery is invisible to
    callers.
    """

    def __init__(
        self,
        table: SubscriptionTable,
        backend: str = "stree",
        rebuild_fraction: float = DEFAULT_REBUILD_FRACTION,
        removed: Optional[Set[int]] = None,
        **backend_options,
    ):
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must lie in (0, 1]")
        if backend not in MATCHER_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from "
                f"{sorted(MATCHER_BACKENDS)}"
            )
        self.table = table
        self.backend = backend
        self.rebuild_fraction = rebuild_fraction
        self._backend_options = backend_options
        # ``removed`` seeds pre-existing tombstones (crash recovery
        # rebuilds an engine whose table still holds withdrawn rows).
        self._removed: Set[int] = set(removed) if removed else set()
        self._removals_since_rebuild = 0
        self._overflow_ids: List[int] = []
        self._overflow_lows: List[np.ndarray] = []
        self._overflow_highs: List[np.ndarray] = []
        self.rebuilds = 0
        self._build_base()

    def _build_base(self) -> None:
        """(Re)pack the base index over all live subscriptions."""
        live = [
            s for s in self.table
            if s.subscription_id not in self._removed
        ]
        if live:
            lows = np.array([s.rectangle.lows for s in live])
            highs = np.array([s.rectangle.highs for s in live])
            ids = [s.subscription_id for s in live]
            self._base = MATCHER_BACKENDS[self.backend].build(
                lows, highs, ids=ids, **self._backend_options
            )
        else:
            self._base = None
        self._overflow_ids.clear()
        self._overflow_lows.clear()
        self._overflow_highs.clear()
        self._removals_since_rebuild = 0

    # -- updates -------------------------------------------------------------

    def add(self, subscriber: int, rectangle: Rectangle) -> Subscription:
        """Register a new subscription; visible to queries immediately."""
        subscription = self.table.add(subscriber, rectangle)
        self._overflow_ids.append(subscription.subscription_id)
        lows, highs = rectangle.to_arrays()
        self._overflow_lows.append(lows)
        self._overflow_highs.append(highs)
        self._maybe_rebuild()
        return subscription

    def remove(self, subscription_id: int) -> None:
        """Withdraw a subscription; it stops matching immediately."""
        if not 0 <= subscription_id < len(self.table):
            raise KeyError(f"unknown subscription id {subscription_id}")
        if subscription_id in self._removed:
            raise KeyError(
                f"subscription {subscription_id} already removed"
            )
        self._removed.add(subscription_id)
        self._removals_since_rebuild += 1
        self._maybe_rebuild()

    def _maybe_rebuild(self) -> None:
        base_size = len(self._base) if self._base is not None else 0
        churn = len(self._overflow_ids) + self._removals_since_rebuild
        if base_size == 0 or churn > self.rebuild_fraction * base_size:
            self._build_base()
            self.rebuilds += 1

    def rebuild(self) -> None:
        """Force an immediate repack (e.g. during an idle period)."""
        self._build_base()
        self.rebuilds += 1

    # -- queries -----------------------------------------------------------------

    def match_point(self, point: Sequence[float]) -> MatchResult:
        """All live subscriptions (and subscribers) containing a point."""
        matched: List[int] = []
        if self._base is not None:
            matched.extend(self._base.match(point))
        if self._overflow_ids:
            lows = np.stack(self._overflow_lows)
            highs = np.stack(self._overflow_highs)
            p = np.asarray(point, dtype=np.float64)
            mask = np.all((lows < p) & (p <= highs), axis=1)
            matched.extend(
                self._overflow_ids[i] for i in np.flatnonzero(mask)
            )
        live = sorted(
            sid for sid in matched if sid not in self._removed
        )
        return MatchResult(
            subscription_ids=tuple(live),
            subscribers=tuple(self.table.subscribers_of(live)),
        )

    def match(self, event: Event) -> MatchResult:
        """Event-typed wrapper around :meth:`match_point`."""
        if event.ndim != self.table.ndim:
            raise ValueError(
                f"event has {event.ndim} dimensions, table has "
                f"{self.table.ndim}"
            )
        return self.match_point(event.point)

    @property
    def stats(self) -> QueryStats:
        """Work counters of the base index (overflow scans excluded)."""
        if self._base is None:
            return QueryStats()
        return self._base.stats

    @property
    def pending_churn(self) -> int:
        """Inserts + deletes absorbed since the last repack."""
        return len(self._overflow_ids) + self._removals_since_rebuild


class DynamicPubSubBroker(PubSubBroker):
    """A broker that accepts subscription churn between events.

    ``subscribe`` is fully incremental: the new rectangle joins the
    overflow index and widens overlapping multicast groups in place.
    ``unsubscribe`` tombstones the subscription (matching is exact
    immediately); groups keep the stale member until the next
    re-preprocess, mirroring how real deployments drain multicast
    groups lazily.  ``repreprocess`` reruns clustering from the live
    subscription set.
    """

    def __init__(
        self,
        topology: Topology,
        table: SubscriptionTable,
        partition,
        algorithm: CellClusteringAlgorithm,
        num_groups: int,
        density: Optional[CellProbability] = None,
        cells_per_dim: int = 10,
        max_cells: int = DEFAULT_MAX_CELLS,
        policy: Optional[DistributionPolicy] = None,
        matcher_backend: str = "stree",
        cost_model: Optional[DeliveryCostModel] = None,
        rebuild_fraction: float = DEFAULT_REBUILD_FRACTION,
    ):
        super().__init__(
            topology,
            table,
            partition,
            policy=policy,
            matcher_backend=matcher_backend,
            cost_model=cost_model,
        )
        # Swap in the churn-capable engine (same query interface).
        self.engine = DynamicMatchingEngine(
            table, backend=matcher_backend,
            rebuild_fraction=rebuild_fraction,
        )
        self._algorithm = algorithm
        self._num_groups = num_groups
        self._density = density
        self._cells_per_dim = cells_per_dim
        self._max_cells = max_cells
        self._removed: Set[int] = set()
        #: Optional durability hook (see :meth:`attach_journal`).
        self.journal = None

    @classmethod
    def preprocess_dynamic(
        cls,
        topology: Topology,
        table: SubscriptionTable,
        algorithm: CellClusteringAlgorithm,
        num_groups: int,
        **options,
    ) -> DynamicPubSubBroker:
        """Static preprocessing plus churn plumbing."""
        static = PubSubBroker.preprocess(
            topology,
            table,
            algorithm,
            num_groups,
            density=options.get("density"),
            cells_per_dim=options.get("cells_per_dim", 10),
            max_cells=options.get("max_cells", DEFAULT_MAX_CELLS),
            policy=options.get("policy"),
            matcher_backend=options.get("matcher_backend", "stree"),
            cost_model=options.get("cost_model"),
            grid_frame=options.get("grid_frame"),
        )
        return cls(
            topology,
            table,
            static.partition,
            algorithm,
            num_groups,
            density=options.get("density"),
            cells_per_dim=options.get("cells_per_dim", 10),
            max_cells=options.get("max_cells", DEFAULT_MAX_CELLS),
            policy=options.get("policy"),
            matcher_backend=options.get("matcher_backend", "stree"),
            cost_model=static.costs,
            rebuild_fraction=options.get(
                "rebuild_fraction", DEFAULT_REBUILD_FRACTION
            ),
        )

    # -- churn -----------------------------------------------------------------

    def attach_journal(self, journal) -> None:
        """Journal every subscribe/unsubscribe to durable storage.

        ``journal`` is a :class:`~repro.durability.journal.
        BrokerJournal` (duck-typed: anything with ``log_subscribe`` /
        ``log_unsubscribe``).  Publish intents and delivery
        completions are journaled by the transport harness, not here.
        """
        self.journal = journal

    def subscribe(
        self, subscriber: int, rectangle: Rectangle
    ) -> Subscription:
        """Admit a new subscription; effective for the next event."""
        subscription = self.engine.add(subscriber, rectangle)
        if self.journal is not None:
            self.journal.log_subscribe(subscription)
        grown = self.partition.add_subscription(rectangle, subscriber)
        if grown:
            # Group membership changed: memoized trees are stale.
            self.costs.clear_cache()
        return subscription

    def unsubscribe(self, subscription_id: int) -> None:
        """Withdraw a subscription; it stops matching immediately.

        The subscriber stays in its multicast groups (a harmless
        superset) until :meth:`repreprocess`.
        """
        self.engine.remove(subscription_id)
        self._removed.add(subscription_id)
        if self.journal is not None:
            self.journal.log_unsubscribe(subscription_id)

    def rebalance_partition(self, max_moves: int = 20) -> int:
        """Incrementally refresh and improve the live partition.

        The cheap alternative to :meth:`repreprocess` after a batch of
        ``subscribe`` calls: re-derive cluster statistics from the
        mutated grid cells, admit newly relevant top-weight cells, run
        a bounded number of rebalance moves, and swap the improved
        partition into service.  Returns the number of moves applied.

        (Tombstoned *removals* still require :meth:`repreprocess` —
        membership is only ever widened incrementally.)
        """
        from ..clustering.incremental import IncrementalClusterMaintainer

        grid = self.partition.grid
        maintainer = IncrementalClusterMaintainer(
            grid, self._snapshot_clusters()
        )
        maintainer.refresh()
        fresh = [
            cell
            for cell in grid.top_cells(self._max_cells)
            if not maintainer.contains(cell.index)
        ]
        maintainer.admit(fresh)
        moves = maintainer.rebalance(max_moves=max_moves)
        self.partition = maintainer.to_partition()
        self.costs.clear_cache()
        return moves

    def _snapshot_clusters(self):
        """Rebuild a ClusteringResult view of the current partition."""
        from ..clustering.base import ClusteringResult

        grid = self.partition.grid
        clusters: dict[int, list] = {}
        for index, q in self.partition._cell_to_group.items():
            clusters.setdefault(q, []).append(grid.cells[index])
        return ClusteringResult(
            algorithm=self.partition.algorithm,
            clusters=[clusters[q] for q in sorted(clusters)],
        )

    def repreprocess(self) -> None:
        """Re-run the static stage over the live subscription set."""
        live = SubscriptionTable(self.table.ndim)
        for subscription in self.table:
            if subscription.subscription_id not in self._removed:
                live.add(subscription.subscriber, subscription.rectangle)
        fresh = PubSubBroker.preprocess(
            self.topology,
            live,
            self._algorithm,
            self._num_groups,
            density=self._density,
            cells_per_dim=self._cells_per_dim,
            max_cells=self._max_cells,
            policy=self.policy,
            matcher_backend=self.engine.backend,
            cost_model=self.costs,
        )
        self.table = live
        self.partition = fresh.partition
        self.engine = DynamicMatchingEngine(
            live, backend=fresh.engine.backend
        )
        self._removed.clear()
        self.costs.clear_cache()

    @property
    def live_subscriptions(self) -> int:
        """Number of currently active subscriptions."""
        return len(self.table) - len(self._removed)
