"""Publication events.

An event is a point ``omega`` in the event space, published from a
network node.  Events carry a sequence number so delivery records can
be traced back through the experiment logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..geometry.point import as_point

__all__ = ["Event"]


@dataclass(frozen=True)
class Event:
    """One published event."""

    sequence: int
    publisher: int
    point: Tuple[float, ...]

    @classmethod
    def create(
        cls, sequence: int, publisher: int, coords: Sequence[float]
    ) -> "Event":
        """Validating constructor (finite coordinates enforced)."""
        return cls(
            sequence=int(sequence),
            publisher=int(publisher),
            point=as_point(coords),
        )

    @property
    def ndim(self) -> int:
        return len(self.point)
