"""Publication events.

An event is a point ``omega`` in the event space, published from a
network node.  Events carry a sequence number so delivery records can
be traced back through the experiment logs, and an optional
**deadline** (absolute simulated time) after which delivering them is
worthless — overload-protected pipelines drop expired events at every
stage (ingress queue, pre-route, receiver) instead of delivering them
late.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from ..geometry.point import as_point

__all__ = ["Event"]


@dataclass(frozen=True)
class Event:
    """One published event."""

    sequence: int
    publisher: int
    point: Tuple[float, ...]
    #: Absolute expiry time (simulated clock); ``None`` = never expires.
    deadline: Optional[float] = None

    @classmethod
    def create(
        cls,
        sequence: int,
        publisher: int,
        coords: Sequence[float],
        deadline: Optional[float] = None,
    ) -> Event:
        """Validating constructor (finite coordinates enforced)."""
        if deadline is not None:
            deadline = float(deadline)
        return cls(
            sequence=int(sequence),
            publisher=int(publisher),
            point=as_point(coords),
            deadline=deadline,
        )

    def with_deadline(self, deadline: Optional[float]) -> Event:
        """The same event carrying a (new) absolute expiry time."""
        return replace(
            self, deadline=float(deadline) if deadline is not None else None
        )

    def expired(self, now: float) -> bool:
        """Whether delivering this event at ``now`` would be too late."""
        return self.deadline is not None and now >= self.deadline

    @property
    def ndim(self) -> int:
        return len(self.point)
