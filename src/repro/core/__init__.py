"""The paper's primary contribution: matching + distribution method.

Ties the substrates together into a complete content-based pub-sub
system: :class:`~repro.core.subscription.SubscriptionTable` holds the
interest rectangles, :class:`~repro.core.matching.MatchingEngine`
answers point queries, :class:`~repro.core.distribution.ThresholdPolicy`
makes the online multicast-vs-unicast call, and
:class:`~repro.core.broker.PubSubBroker` runs the whole pipeline with
network cost accounting.
"""

from .adaptive import AdaptiveThresholdPolicy, run_adaptive
from .broker import DeliveryRecord, PubSubBroker
from .distribution import (
    DeliveryMethod,
    DistributionDecision,
    DistributionPolicy,
    PerGroupThresholdPolicy,
    ThresholdPolicy,
)
from .dynamic import DynamicMatchingEngine, DynamicPubSubBroker
from .event import Event
from .matching import MATCHER_BACKENDS, MatchingEngine, MatchResult
from .predicates import PredicateError, parse_subscription
from .subscription import Subscription, SubscriptionTable, decompose_predicates
from .tuning import (
    GroupEfficiency,
    GroupSample,
    ThresholdTuner,
    TuningReport,
    oracle_tally,
)

__all__ = [
    "AdaptiveThresholdPolicy",
    "run_adaptive",
    "DeliveryRecord",
    "PubSubBroker",
    "DeliveryMethod",
    "DistributionDecision",
    "DistributionPolicy",
    "PerGroupThresholdPolicy",
    "ThresholdPolicy",
    "DynamicMatchingEngine",
    "DynamicPubSubBroker",
    "Event",
    "MATCHER_BACKENDS",
    "MatchingEngine",
    "MatchResult",
    "PredicateError",
    "parse_subscription",
    "Subscription",
    "SubscriptionTable",
    "decompose_predicates",
    "GroupEfficiency",
    "GroupSample",
    "ThresholdTuner",
    "TuningReport",
    "oracle_tally",
]
