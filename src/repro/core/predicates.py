"""A small predicate language for human-written subscriptions.

The paper's subscriptions are conjunctions of per-attribute range
predicates ("name=IBM and 75 < price <= 80 and volume >= 1000").  This
module parses exactly that class of expressions into interval lists
ready for :meth:`~repro.core.subscription.SubscriptionTable.
add_predicates`:

>>> schema = ("bst", "name", "price", "volume")
>>> parse_subscription(
...     "name == 5 and price > 75 and price <= 80 and volume >= 1000",
...     schema,
... )   # doctest: +SKIP

Grammar (case-insensitive keywords, no parentheses — the language is
deliberately exactly as expressive as one rectangle disjunction):

- expression := clause ("and" clause)*
- clause := comparison | membership | wildcard
- comparison := NAME OP NUMBER | NUMBER OP NAME (OP in
  ``== != < <= > >=``; ``!=`` splits into two ranges)
- membership := NAME "in" "(" NUMBER ("," NUMBER)* ")" — a
  multi-range predicate, decomposed downstream
- wildcard := "any" NAME (or simply omitting the attribute)

Unmentioned attributes are wildcards.  ``A != v`` and ``in`` produce
multiple intervals on one attribute; the subscription table's
decomposition turns them into several rectangles.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Sequence, Tuple

from ..geometry.interval import FULL_LINE, Interval

__all__ = ["PredicateError", "parse_subscription"]


class PredicateError(ValueError):
    """Raised on syntax or schema errors in a predicate expression."""


_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|==|!=|<|>)"
    r"|(?P<punct>[(),])"
    r")"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise PredicateError(
                f"cannot tokenize near: {remainder[:20]!r}"
            )
        position = match.end()
        for kind in ("number", "name", "op", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


def _split_clauses(
    tokens: List[Tuple[str, str]]
) -> List[List[Tuple[str, str]]]:
    clauses: List[List[Tuple[str, str]]] = [[]]
    for kind, value in tokens:
        if kind == "name" and value.lower() == "and":
            if not clauses[-1]:
                raise PredicateError("empty clause before 'and'")
            clauses.append([])
        else:
            clauses[-1].append((kind, value))
    if not clauses[-1]:
        raise PredicateError("trailing 'and' with no clause")
    return clauses


def _comparison_interval(op: str, value: float) -> List[Interval]:
    prev = math.nextafter(value, -math.inf)
    if op == "==":
        return [Interval(prev, value)]
    if op == "!=":
        return [Interval(-math.inf, prev), Interval(value, math.inf)]
    if op == ">":
        return [Interval(value, math.inf)]
    if op == ">=":
        return [Interval(prev, math.inf)]
    if op == "<":
        return [Interval(-math.inf, prev)]
    if op == "<=":
        return [Interval(-math.inf, value)]
    raise PredicateError(f"unknown operator {op!r}")


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def parse_subscription(
    expression: str, schema: Sequence[str]
) -> List[List[Interval]]:
    """Parse a conjunction into per-attribute interval lists.

    The result has one entry per schema attribute, suitable for
    :meth:`SubscriptionTable.add_predicates`; attributes with several
    constraints get the *intersection* of their comparisons (and the
    union of their ``in``/``!=`` alternatives within one clause).
    """
    names = {name.lower(): i for i, name in enumerate(schema)}
    # Per attribute: a list of alternative intervals (the disjunction),
    # intersected across clauses.
    per_attribute: Dict[int, List[Interval]] = {}

    def combine(dim: int, alternatives: List[Interval]) -> None:
        current = per_attribute.get(dim)
        if current is None:
            per_attribute[dim] = alternatives
            return
        merged = [
            a.intersection(b)
            for a in current
            for b in alternatives
        ]
        merged = [iv for iv in merged if not iv.is_empty]
        if not merged:
            raise PredicateError(
                f"contradictory constraints on {schema[dim]!r}"
            )
        per_attribute[dim] = merged

    for clause in _split_clauses(_tokenize(expression)):
        kinds = [kind for kind, _ in clause]
        values = [value for _, value in clause]
        # wildcard: "any NAME"
        if (
            len(clause) == 2
            and kinds == ["name", "name"]
            and values[0].lower() == "any"
        ):
            dim = _resolve(values[1], names)
            combine(dim, [FULL_LINE])
            continue
        # membership: NAME in ( v , v , ... )
        if (
            len(clause) >= 5
            and kinds[0] == "name"
            and values[1].lower() == "in"
        ):
            dim = _resolve(values[0], names)
            if values[2] != "(" or values[-1] != ")":
                raise PredicateError("'in' requires a parenthesized list")
            body = clause[3:-1]
            alternatives: List[Interval] = []
            expect_number = True
            for kind, value in body:
                if expect_number:
                    if kind != "number":
                        raise PredicateError(
                            f"expected a number in 'in' list, got {value!r}"
                        )
                    alternatives.extend(
                        _comparison_interval("==", float(value))
                    )
                    expect_number = False
                else:
                    if (kind, value) != ("punct", ","):
                        raise PredicateError(
                            f"expected ',' in 'in' list, got {value!r}"
                        )
                    expect_number = True
            if expect_number or not alternatives:
                raise PredicateError("malformed 'in' list")
            combine(dim, alternatives)
            continue
        # comparison: NAME OP NUMBER or NUMBER OP NAME
        if len(clause) == 3 and kinds == ["name", "op", "number"]:
            dim = _resolve(values[0], names)
            combine(
                dim,
                _comparison_interval(values[1], float(values[2])),
            )
            continue
        if len(clause) == 3 and kinds == ["number", "op", "name"]:
            dim = _resolve(values[2], names)
            combine(
                dim,
                _comparison_interval(
                    _FLIP[values[1]], float(values[0])
                ),
            )
            continue
        raise PredicateError(
            "clause not understood: "
            + " ".join(value for _, value in clause)
        )

    return [
        per_attribute.get(dim, [FULL_LINE])
        for dim in range(len(schema))
    ]


def _resolve(name: str, names: Dict[str, int]) -> int:
    try:
        return names[name.lower()]
    except KeyError:
        raise PredicateError(
            f"unknown attribute {name!r}; schema has {sorted(names)}"
        ) from None
