"""Group-efficiency measures and threshold tuning (paper Section 6).

The paper closes with an open question:

    "It would be nice to have some theoretical and practical measures
    which could help determine how efficient a multicast group has to
    be in order to actually employ it. ... The question is where to
    draw the line on this.  We leave this for future work."

This module draws that line empirically.  Given a preprocessed broker
and a training workload it:

- collects, per multicast group, the joint samples the decision
  actually trades off — the interested ratio ``|s|/|M_q|``, the
  unicast cost to exactly the interested subscribers, and the group's
  multicast tree cost;
- computes the **oracle** delivery cost (per event, the cheaper of the
  two options) — the unbeatable bound for any threshold-type rule;
- for every group, picks the threshold that minimizes realized cost on
  the training sample, yielding a
  :class:`~repro.core.distribution.PerGroupThresholdPolicy`;
- reports per-group efficiency statistics (how often multicast wins,
  expected waste per multicast, the break-even ratio).

The resulting per-group policy can only improve on the best single
global threshold *on the training workload*; the generalization gap to
a held-out workload is measured by the extension benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..network.multicast import CostTally
from .broker import PubSubBroker
from .distribution import PerGroupThresholdPolicy
from .event import Event

__all__ = [
    "GroupSample",
    "GroupEfficiency",
    "TuningReport",
    "ThresholdTuner",
    "oracle_tally",
]

#: Candidate thresholds evaluated per group by default.
DEFAULT_CANDIDATES = (
    0.0, 0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.75, 1.01,
)


@dataclass(frozen=True)
class GroupSample:
    """One training event that landed in a given group."""

    interested: int
    group_size: int
    unicast_cost: float
    multicast_cost: float

    @property
    def ratio(self) -> float:
        """The interested proportion the threshold rule thresholds."""
        if self.group_size <= 0:
            return 0.0
        return self.interested / self.group_size

    @property
    def oracle_cost(self) -> float:
        """Cost of the per-event optimal choice."""
        return min(self.unicast_cost, self.multicast_cost)


@dataclass(frozen=True)
class GroupEfficiency:
    """Empirical efficiency measures for one multicast group."""

    group: int
    group_size: int
    events: int
    multicast_win_rate: float  # fraction of events where multicast wins
    mean_ratio: float
    best_threshold: float
    cost_at_best: float
    cost_at_oracle: float

    @property
    def threshold_regret(self) -> float:
        """Training-cost gap between the tuned rule and the oracle.

        Zero means a single threshold perfectly separates this group's
        unicast-better events from its multicast-better events (which
        happens exactly when the win/lose regions are ratio-monotone).
        """
        return self.cost_at_best - self.cost_at_oracle


@dataclass
class TuningReport:
    """Everything the tuner learned from the training workload."""

    policy: PerGroupThresholdPolicy
    per_group: List[GroupEfficiency]
    catchall_events: int
    unmatched_events: int

    def efficiency_of(self, group: int) -> GroupEfficiency:
        """Lookup by 1-based group id."""
        for row in self.per_group:
            if row.group == group:
                return row
        raise KeyError(f"no efficiency record for group {group}")


class ThresholdTuner:
    """Learns per-group thresholds from a training workload."""

    def __init__(
        self,
        broker: PubSubBroker,
        candidates: Sequence[float] = DEFAULT_CANDIDATES,
        default_threshold: float = 0.15,
    ):
        if not candidates:
            raise ValueError("need at least one candidate threshold")
        self.broker = broker
        self.candidates = tuple(sorted(candidates))
        self.default_threshold = default_threshold

    def collect(
        self, points: np.ndarray, publishers: Sequence[int]
    ) -> Tuple[Dict[int, List[GroupSample]], int, int]:
        """Gather per-group decision samples from a workload.

        Returns ``(samples_by_group, catchall_events, unmatched)``.
        """
        broker = self.broker
        samples: Dict[int, List[GroupSample]] = {}
        catchall = 0
        unmatched = 0
        points = np.asarray(points, dtype=np.float64)
        for sequence, (row, publisher) in enumerate(zip(points, publishers)):
            event = Event.create(sequence, int(publisher), row)
            match = broker.engine.match(event)
            if match.is_empty:
                unmatched += 1
                continue
            q = broker.partition.locate(event.point)
            if q == 0:
                catchall += 1
                continue
            group = broker.partition.group(q)
            recipients = [
                node for node in match.subscribers if node != event.publisher
            ]
            samples.setdefault(q, []).append(
                GroupSample(
                    interested=match.num_subscribers,
                    group_size=group.size,
                    unicast_cost=broker.costs.unicast_cost(
                        event.publisher, recipients
                    ),
                    multicast_cost=broker.costs.multicast_cost(
                        event.publisher, group.members
                    ),
                )
            )
        return samples, catchall, unmatched

    def tune(
        self, points: np.ndarray, publishers: Sequence[int]
    ) -> TuningReport:
        """Pick the cost-minimizing threshold for every group."""
        samples, catchall, unmatched = self.collect(points, publishers)
        per_group: List[GroupEfficiency] = []
        thresholds: Dict[int, float] = {}
        for q in sorted(samples):
            group_samples = samples[q]
            best_threshold, best_cost = self._best_threshold(group_samples)
            thresholds[q] = min(best_threshold, 1.0)
            oracle = sum(s.oracle_cost for s in group_samples)
            wins = sum(
                1
                for s in group_samples
                if s.multicast_cost < s.unicast_cost
            )
            per_group.append(
                GroupEfficiency(
                    group=q,
                    group_size=group_samples[0].group_size,
                    events=len(group_samples),
                    multicast_win_rate=wins / len(group_samples),
                    mean_ratio=float(
                        np.mean([s.ratio for s in group_samples])
                    ),
                    best_threshold=min(best_threshold, 1.0),
                    cost_at_best=best_cost,
                    cost_at_oracle=oracle,
                )
            )
        policy = PerGroupThresholdPolicy(
            default_threshold=self.default_threshold,
            per_group=thresholds,
        )
        return TuningReport(
            policy=policy,
            per_group=per_group,
            catchall_events=catchall,
            unmatched_events=unmatched,
        )

    def _best_threshold(
        self, group_samples: List[GroupSample]
    ) -> Tuple[float, float]:
        """Cost-minimizing candidate (ties -> smallest threshold)."""
        best_threshold = self.candidates[0]
        best_cost = float("inf")
        for candidate in self.candidates:
            cost = sum(
                s.unicast_cost
                if s.ratio < candidate
                else s.multicast_cost
                for s in group_samples
            )
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_threshold = candidate
        return best_threshold, best_cost


def oracle_tally(
    broker: PubSubBroker,
    points: np.ndarray,
    publishers: Sequence[int],
) -> CostTally:
    """Run a workload with per-event *optimal* unicast/multicast choices.

    This is the tightest bound any threshold-style rule can approach
    while restricted to the precomputed groups; the remaining gap to
    100% improvement is the price of the groups themselves.
    """
    tally = CostTally()
    points = np.asarray(points, dtype=np.float64)
    for sequence, (row, publisher) in enumerate(zip(points, publishers)):
        event = Event.create(sequence, int(publisher), row)
        match = broker.engine.match(event)
        if match.is_empty:
            tally.skip()
            continue
        recipients = [
            node for node in match.subscribers if node != event.publisher
        ]
        unicast = broker.costs.unicast_cost(event.publisher, recipients)
        ideal = broker.costs.ideal_cost(event.publisher, recipients)
        q = broker.partition.locate(event.point)
        if q == 0:
            scheme, used_multicast = unicast, False
        else:
            members = broker.partition.group(q).members
            multicast = broker.costs.multicast_cost(
                event.publisher, members
            )
            if multicast < unicast:
                scheme, used_multicast = multicast, True
            else:
                scheme, used_multicast = unicast, False
        tally.add(
            scheme_cost=scheme,
            unicast_cost=unicast,
            ideal_cost=ideal,
            recipients=match.num_subscribers,
            used_multicast=used_multicast,
        )
    return tally
