"""The matching engine: subscriptions in, interested subscribers out.

Wraps one of the spatial point-query indexes around a
:class:`~repro.core.subscription.SubscriptionTable` and answers, for a
published event, both the matched subscription ids and the distinct
interested subscribers (a subscriber with several matching
subscriptions is still delivered to once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type

from ..spatial.base import PointMatcher, QueryStats
from ..spatial.counting import CountingMatcher
from ..spatial.grid_index import GridIndexMatcher
from ..spatial.linear import LinearScanMatcher
from ..spatial.rtree import HilbertRTree
from ..spatial.stree import STree
from ..telemetry.base import Telemetry, or_null
from .event import Event
from .subscription import SubscriptionTable

__all__ = ["MatchResult", "MatchingEngine", "MATCHER_BACKENDS"]

#: Selectable index implementations.
MATCHER_BACKENDS: Dict[str, Type[PointMatcher]] = {
    "stree": STree,
    "rtree": HilbertRTree,
    "linear": LinearScanMatcher,
    "grid": GridIndexMatcher,
    "counting": CountingMatcher,
}


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one event."""

    subscription_ids: Tuple[int, ...]
    subscribers: Tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        return not self.subscription_ids

    @property
    def num_subscribers(self) -> int:
        return len(self.subscribers)


class MatchingEngine:
    """Point-query front end over a subscription table."""

    def __init__(
        self,
        table: SubscriptionTable,
        backend: str = "stree",
        telemetry: Telemetry | None = None,
        **backend_options,
    ):
        if len(table) == 0:
            raise ValueError("cannot build a matching engine over no subscriptions")
        try:
            matcher_cls = MATCHER_BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; choose from "
                f"{sorted(MATCHER_BACKENDS)}"
            ) from None
        self.table = table
        self.backend = backend
        self.telemetry = or_null(telemetry)
        lows, highs = table.to_arrays()
        self.matcher = matcher_cls.build(lows, highs, **backend_options)

    def match_point(self, point: Sequence[float]) -> MatchResult:
        """Match raw coordinates (most callers use :meth:`match`)."""
        subscription_ids = self.matcher.match(point)
        subscribers = self.table.subscribers_of(subscription_ids)
        if self.telemetry.enabled:
            self.telemetry.counter("match.queries").inc()
            self.telemetry.counter("match.matched_subscriptions").inc(
                len(subscription_ids)
            )
            self.telemetry.histogram(
                "match.selectivity",
                help="distinct interested subscribers per query",
            ).observe(len(subscribers))
        return MatchResult(
            subscription_ids=tuple(subscription_ids),
            subscribers=tuple(subscribers),
        )

    def match(self, event: Event) -> MatchResult:
        """All subscriptions (and distinct subscribers) for an event."""
        if event.ndim != self.table.ndim:
            raise ValueError(
                f"event has {event.ndim} dimensions, table has "
                f"{self.table.ndim}"
            )
        return self.match_point(event.point)

    @property
    def stats(self) -> QueryStats:
        """The underlying index's work counters."""
        return self.matcher.stats
