"""The distribution-method scheme (paper Section 4).

Given a published event, the matched interested subscribers ``s`` and
the precomputed multicast group ``M_q`` whose subset ``S_q`` contains
the event, decide *online* how to deliver:

- no interested subscribers → the publication is **not sent**;
- the event fell into the catchall ``S_0`` (no group covers it) →
  **unicast** to the interested subscribers;
- otherwise **unicast** iff the interested proportion is below the
  threshold: ``|s| / |M_q| < t``; else **multicast** to the group.

Threshold 0 reproduces the static scheme (always multicast when a
group exists); threshold just above 1 degenerates to always-unicast.
The paper's Figure 6 sweeps ``t`` and finds ~15% consistently best.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Protocol

__all__ = [
    "DeliveryMethod",
    "DistributionDecision",
    "DistributionPolicy",
    "ThresholdPolicy",
    "PerGroupThresholdPolicy",
    "degraded_flood",
    "record_decision",
]


class DeliveryMethod(enum.Enum):
    """How (or whether) one message is sent."""

    NOT_SENT = "not_sent"
    UNICAST = "unicast"
    MULTICAST = "multicast"


@dataclass(frozen=True)
class DistributionDecision:
    """One decision, with the quantities it was based on."""

    method: DeliveryMethod
    interested: int
    group_size: int = 0
    group: int = 0  # 1-based group id; 0 when no group applies

    @property
    def interested_ratio(self) -> float:
        """``|s| / |M_q|``; zero when no group applies."""
        if self.group_size <= 0:
            return 0.0
        return self.interested / self.group_size


class DistributionPolicy(Protocol):
    """Anything that can make the per-event delivery decision."""

    def decide(
        self, interested: int, group_size: int, group: int
    ) -> DistributionDecision:
        """Decide for one event (``group`` is 1-based; 0 = catchall)."""
        ...


@dataclass(frozen=True)
class ThresholdPolicy:
    """The paper's fixed-level rule ``|s|/|M_q| < t  =>  unicast``."""

    threshold: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"threshold must lie in [0, 1], got {self.threshold}"
            )

    def decide(
        self, interested: int, group_size: int, group: int
    ) -> DistributionDecision:
        """Decide for one event that landed in group ``group`` (1-based).

        ``group = 0`` means the event fell into the catchall ``S_0``.
        """
        if interested < 0 or group_size < 0:
            raise ValueError("counts must be non-negative")
        if interested == 0:
            return DistributionDecision(
                DeliveryMethod.NOT_SENT, 0, group_size, group
            )
        if group == 0 or group_size == 0:
            return DistributionDecision(
                DeliveryMethod.UNICAST, interested, group_size, group
            )
        if interested / group_size < self.threshold:
            method = DeliveryMethod.UNICAST
        else:
            method = DeliveryMethod.MULTICAST
        return DistributionDecision(method, interested, group_size, group)

    @classmethod
    def static_multicast(cls) -> ThresholdPolicy:
        """Threshold 0: the no-dynamic-decision baseline of Figure 6."""
        return cls(threshold=0.0)


@dataclass(frozen=True)
class PerGroupThresholdPolicy:
    """Per-group thresholds — the paper's future-work direction.

    Section 6 asks for "measures which could help determine how
    efficient a multicast group has to be in order to actually employ
    it": groups differ in size, geography and tree cost, so a single
    global ``t`` is a compromise.  This policy carries one threshold
    per group (falling back to a default), typically produced by
    :class:`repro.core.tuning.ThresholdTuner` from a training workload.
    """

    default_threshold: float = 0.15
    per_group: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.default_threshold <= 1.0:
            raise ValueError("default_threshold must lie in [0, 1]")
        for group, threshold in self.per_group.items():
            if not 0.0 <= threshold <= 1.0:
                raise ValueError(
                    f"threshold for group {group} out of [0, 1]: "
                    f"{threshold}"
                )

    def threshold_for(self, group: int) -> float:
        """The threshold applied to one group."""
        return self.per_group.get(group, self.default_threshold)

    def decide(
        self, interested: int, group_size: int, group: int
    ) -> DistributionDecision:
        """Same rule as :class:`ThresholdPolicy`, group-specific ``t``."""
        return ThresholdPolicy(self.threshold_for(group)).decide(
            interested, group_size, group
        )


def degraded_flood(
    interested: int, group_size: int, group: int
) -> DistributionDecision:
    """The overload DEGRADED decision: multicast unconditionally.

    When the broker's :class:`~repro.overload.HealthMonitor` reports
    DEGRADED, the threshold rule is skipped entirely — the paper's
    multicast arm taken unconditionally, flooding the whole group
    ``M_q`` without the exact match that ``|s|`` would require.  Only
    valid for events with a covering group (``group >= 1``); catchall
    events have nothing to flood and must take the exact path.
    """
    if group <= 0:
        raise ValueError(
            f"degraded_flood: group must be >= 1 (got {group})"
        )
    return DistributionDecision(
        DeliveryMethod.MULTICAST,
        interested=interested,
        group_size=group_size,
        group=group,
    )


def record_decision(telemetry, decision: DistributionDecision) -> None:
    """Meter one distribution decision into a telemetry registry.

    Counts the per-method decision rate (the unicast-vs-multicast
    split ``repro stats`` reports) and, when a group applied, the
    interested-ratio the threshold rule saw — the distribution of the
    very quantity the paper's Figure 6 sweeps ``t`` over.  A no-op
    under :class:`~repro.telemetry.base.NullTelemetry`.
    """
    if not telemetry.enabled:
        return
    telemetry.counter(
        "decision.total", help="distribution decisions made"
    ).inc()
    telemetry.counter(
        "decision.method",
        help="decisions per delivery method",
        method=decision.method.value,
    ).inc()
    if decision.group_size > 0:
        telemetry.histogram(
            "decision.interested_ratio",
            help="|s| / |M_q| seen by the threshold rule",
            bounds=tuple(i / 20.0 for i in range(1, 21)),
        ).observe(decision.interested_ratio)
