"""Subscriptions: rectangles bound to subscribers, plus predicate sugar.

A subscription is the conjunction of one range predicate per attribute
— an aligned rectangle in the event space.  Following Section 1 of the
paper, a predicate with *multiple* ranges in one attribute (e.g.
``price in (10, 20] or (30, 40]``) is decomposed into several
single-range subscriptions ("at a cost of more subscriptions"), which
keeps every indexed object a plain rectangle.

:class:`SubscriptionTable` is the collection type the rest of the
library builds on: it owns the id spaces and the packed bounds arrays
the spatial indexes consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..geometry.interval import FULL_LINE, Interval
from ..geometry.rectangle import Rectangle

__all__ = ["Subscription", "SubscriptionTable", "decompose_predicates"]


@dataclass(frozen=True)
class Subscription:
    """One single-range-per-attribute subscription.

    Parameters
    ----------
    subscription_id:
        Unique id within a :class:`SubscriptionTable`.
    subscriber:
        The subscriber's identity — in the networked experiments this
        is the subscriber's node id; several subscriptions may share
        one subscriber.
    rectangle:
        The interest rectangle ``b_ij``.
    """

    subscription_id: int
    subscriber: int
    rectangle: Rectangle

    @property
    def ndim(self) -> int:
        return self.rectangle.ndim

    def matches(self, point: Sequence[float]) -> bool:
        """Whether an event satisfies every predicate."""
        return self.rectangle.contains_point(point)


def decompose_predicates(
    predicates: Sequence[Sequence[Interval]],
) -> List[Rectangle]:
    """Cross-product decomposition of multi-range predicates.

    ``predicates[d]`` lists the acceptable intervals of attribute ``d``
    (an empty list means "don't care" — the full line).  The result is
    one rectangle per combination; empty intervals are dropped.
    """
    cleaned: List[List[Interval]] = []
    for dim_intervals in predicates:
        options = [iv for iv in dim_intervals if not iv.is_empty]
        if not options:
            options = [FULL_LINE]
        cleaned.append(options)
    return [
        Rectangle.from_intervals(combo) for combo in product(*cleaned)
    ]


class SubscriptionTable:
    """The full set ``I`` of subscription rectangles, with id plumbing."""

    def __init__(self, ndim: int):
        if ndim < 1:
            raise ValueError("ndim must be positive")
        self.ndim = ndim
        self._subscriptions: List[Subscription] = []

    # -- population ---------------------------------------------------------

    def add(self, subscriber: int, rectangle: Rectangle) -> Subscription:
        """Register one rectangle; returns the new subscription."""
        if rectangle.ndim != self.ndim:
            raise ValueError(
                f"rectangle has {rectangle.ndim} dimensions, "
                f"table expects {self.ndim}"
            )
        subscription = Subscription(
            subscription_id=len(self._subscriptions),
            subscriber=int(subscriber),
            rectangle=rectangle,
        )
        self._subscriptions.append(subscription)
        return subscription

    def add_predicates(
        self,
        subscriber: int,
        predicates: Sequence[Sequence[Interval]],
    ) -> List[Subscription]:
        """Register a (possibly multi-range) predicate conjunction.

        Returns one subscription per decomposed rectangle.
        """
        if len(predicates) != self.ndim:
            raise ValueError(
                f"need predicates for all {self.ndim} attributes"
            )
        return [
            self.add(subscriber, rectangle)
            for rectangle in decompose_predicates(predicates)
        ]

    def extend(
        self, entries: Iterable["tuple[int, Rectangle]"]
    ) -> List[Subscription]:
        """Bulk-add ``(subscriber, rectangle)`` pairs."""
        return [self.add(subscriber, rect) for subscriber, rect in entries]

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __iter__(self):
        return iter(self._subscriptions)

    def __getitem__(self, subscription_id: int) -> Subscription:
        return self._subscriptions[subscription_id]

    @property
    def subscribers(self) -> List[int]:
        """Distinct subscriber identities, sorted."""
        return sorted({s.subscriber for s in self._subscriptions})

    def subscriber_of(self, subscription_id: int) -> int:
        return self._subscriptions[subscription_id].subscriber

    def subscribers_of(self, subscription_ids: Iterable[int]) -> List[int]:
        """Distinct subscribers behind a set of matched subscriptions."""
        return sorted(
            {
                self._subscriptions[sid].subscriber
                for sid in subscription_ids
            }
        )

    def rectangles(self) -> List[Rectangle]:
        return [s.rectangle for s in self._subscriptions]

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Packed ``(k, N)`` lows/highs arrays for index construction."""
        if not self._subscriptions:
            raise ValueError("table is empty")
        lows = np.array(
            [s.rectangle.lows for s in self._subscriptions],
            dtype=np.float64,
        )
        highs = np.array(
            [s.rectangle.highs for s in self._subscriptions],
            dtype=np.float64,
        )
        return lows, highs

    @classmethod
    def from_placed(
        cls, placed: Sequence, ndim: int = 4
    ) -> SubscriptionTable:
        """Build from workload ``PlacedSubscription`` records."""
        table = cls(ndim)
        for item in placed:
            table.add(item.node, item.rectangle)
        return table
