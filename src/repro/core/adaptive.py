"""Online (adaptive) threshold control.

The offline :class:`~repro.core.tuning.ThresholdTuner` needs a
training workload and a sweep; this module learns the same per-group
thresholds *while operating*, from the feedback each delivery already
produces.  For every group it maintains running cost averages for the
two actions as a function of the observed interested ratio, and sets
its threshold to the empirical break-even point.

The estimator is deliberately simple and deterministic: per group it
keeps ratio-bucketed averages of the unicast cost of the interested
set and of the group's multicast cost, explores both actions while a
bucket is cold, and places the threshold at the lowest bucket boundary
where multicast's estimated cost drops below unicast's.  The extension
benchmark shows it converging toward the offline-tuned policy within a
few hundred events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from .distribution import DeliveryMethod, DistributionDecision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.multicast import CostTally
    from .broker import PubSubBroker

__all__ = ["AdaptiveThresholdPolicy", "run_adaptive"]

#: Default ratio-bucket boundaries (upper edges).
DEFAULT_BUCKETS = (0.02, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60, 1.01)


@dataclass
class _Bucket:
    """Running averages for one (group, ratio-bucket) pair."""

    unicast_total: float = 0.0
    unicast_count: int = 0
    multicast_total: float = 0.0
    multicast_count: int = 0

    def unicast_mean(self) -> float:
        if self.unicast_count == 0:
            return float("inf")
        return self.unicast_total / self.unicast_count

    def multicast_mean(self) -> float:
        if self.multicast_count == 0:
            return float("inf")
        return self.multicast_total / self.multicast_count

    @property
    def warm(self) -> bool:
        return self.unicast_count >= 1 and self.multicast_count >= 1


class AdaptiveThresholdPolicy:
    """A distribution policy that learns thresholds from feedback.

    Usage pattern (see
    :meth:`~repro.core.broker.PubSubBroker.publish`): the broker calls
    :meth:`decide` like any policy; the *caller* then reports what the
    delivery cost via :meth:`observe` — both the realized action's
    cost and (when cheaply available) the counterfactual's.  The
    simulation harness knows both, which makes the feedback loop exact;
    a live system would estimate the counterfactual from its routing
    tables exactly as the cost model here does.
    """

    def __init__(
        self,
        initial_threshold: float = 0.15,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        exploration: int = 3,
    ):
        if not 0.0 <= initial_threshold <= 1.0:
            raise ValueError("initial_threshold must lie in [0, 1]")
        if sorted(buckets) != list(buckets) or len(buckets) < 2:
            raise ValueError("buckets must be a sorted tuple (>= 2 edges)")
        if exploration < 1:
            raise ValueError("exploration must be positive")
        self.initial_threshold = initial_threshold
        self.buckets = buckets
        self.exploration = exploration
        self._stats: Dict[int, List[_Bucket]] = {}
        self._thresholds: Dict[int, float] = {}
        self._flip = 0  # deterministic explore alternator

    # -- policy interface ------------------------------------------------------

    def threshold_for(self, group: int) -> float:
        """The group's current learned threshold."""
        return self._thresholds.get(group, self.initial_threshold)

    def decide(
        self, interested: int, group_size: int, group: int
    ) -> DistributionDecision:
        """Same contract as the static policies."""
        if interested < 0 or group_size < 0:
            raise ValueError("counts must be non-negative")
        if interested == 0:
            return DistributionDecision(
                DeliveryMethod.NOT_SENT, 0, group_size, group
            )
        if group == 0 or group_size == 0:
            return DistributionDecision(
                DeliveryMethod.UNICAST, interested, group_size, group
            )
        ratio = interested / group_size
        bucket = self._bucket_of(group, ratio)
        if not bucket.warm or (
            bucket.unicast_count + bucket.multicast_count
            < self.exploration * 2
        ):
            # Cold bucket: alternate actions deterministically so both
            # arms collect samples.
            self._flip ^= 1
            method = (
                DeliveryMethod.MULTICAST
                if self._flip
                else DeliveryMethod.UNICAST
            )
        elif ratio < self.threshold_for(group):
            method = DeliveryMethod.UNICAST
        else:
            method = DeliveryMethod.MULTICAST
        return DistributionDecision(method, interested, group_size, group)

    # -- learning -----------------------------------------------------------------

    def observe(
        self,
        group: int,
        interested: int,
        group_size: int,
        unicast_cost: float,
        multicast_cost: float,
    ) -> None:
        """Feed one event's cost pair back into the estimator."""
        if group <= 0 or group_size <= 0 or interested <= 0:
            return
        ratio = interested / group_size
        bucket = self._bucket_of(group, ratio)
        bucket.unicast_total += unicast_cost
        bucket.unicast_count += 1
        bucket.multicast_total += multicast_cost
        bucket.multicast_count += 1
        self._refresh_threshold(group)

    def _bucket_of(self, group: int, ratio: float) -> _Bucket:
        buckets = self._stats.get(group)
        if buckets is None:
            buckets = [_Bucket() for _ in self.buckets]
            self._stats[group] = buckets
        return buckets[self._bucket_index(ratio)]

    def _bucket_index(self, ratio: float) -> int:
        for i, edge in enumerate(self.buckets):
            if ratio < edge:
                return i
        return len(self.buckets) - 1

    def _refresh_threshold(self, group: int) -> None:
        """Threshold = lower edge of the first warm bucket where
        multicast wins on average (buckets above stay multicast)."""
        buckets = self._stats[group]
        threshold = 1.0
        for i in range(len(buckets) - 1, -1, -1):
            bucket = buckets[i]
            if not bucket.warm:
                continue
            if bucket.multicast_mean() <= bucket.unicast_mean():
                threshold = 0.0 if i == 0 else self.buckets[i - 1]
            else:
                break
        self._thresholds[group] = min(threshold, 1.0)


def run_adaptive(
    broker: PubSubBroker,
    points: np.ndarray,
    publishers: Sequence[int],
    policy: Optional[AdaptiveThresholdPolicy] = None,
) -> tuple[CostTally, AdaptiveThresholdPolicy]:
    """Run a workload under an adaptive policy with exact feedback.

    Like :meth:`PubSubBroker.run`, but after each event the realized
    and counterfactual delivery costs are fed back into the policy so
    its per-group thresholds converge while the workload runs.
    """
    from ..network.multicast import CostTally
    from .event import Event

    if policy is None:
        policy = AdaptiveThresholdPolicy()
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] != len(publishers):
        raise ValueError("points must be (m, N) with one publisher per row")
    tally = CostTally()
    for sequence, (row, publisher) in enumerate(zip(points, publishers)):
        event = Event.create(sequence, int(publisher), row)
        match = broker.engine.match(event)
        q = broker.partition.locate(event.point)
        group_size = broker.partition.group(q).size if q > 0 else 0
        decision = policy.decide(
            interested=match.num_subscribers,
            group_size=group_size,
            group=q,
        )
        if decision.method is DeliveryMethod.NOT_SENT:
            tally.skip()
            continue
        recipients = [
            node for node in match.subscribers if node != event.publisher
        ]
        unicast_cost = broker.costs.unicast_cost(
            event.publisher, recipients
        )
        ideal_cost = broker.costs.ideal_cost(event.publisher, recipients)
        if q > 0:
            members = broker.partition.group(q).members
            multicast_cost = broker.costs.multicast_cost(
                event.publisher, members
            )
            policy.observe(
                group=q,
                interested=match.num_subscribers,
                group_size=group_size,
                unicast_cost=unicast_cost,
                multicast_cost=multicast_cost,
            )
        else:
            multicast_cost = unicast_cost
        used_multicast = decision.method is DeliveryMethod.MULTICAST
        tally.add(
            scheme_cost=multicast_cost if used_multicast else unicast_cost,
            unicast_cost=unicast_cost,
            ideal_cost=ideal_cost,
            recipients=match.num_subscribers,
            used_multicast=used_multicast,
        )
    return tally, policy
