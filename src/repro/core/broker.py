"""The end-to-end content-based pub-sub broker.

Composes everything the paper describes into one object:

1. **preprocessing** — cluster the subscriptions' grid cells into
   multicast groups (:mod:`repro.clustering`);
2. **matching** — locate each event's interested subscribers with a
   spatial index (:mod:`repro.spatial` via
   :class:`~repro.core.matching.MatchingEngine`);
3. **distribution method** — apply the threshold rule
   (:class:`~repro.core.distribution.ThresholdPolicy`);
4. **cost accounting** — charge the delivery to network links
   (:mod:`repro.network`), tracking the paper's unicast/ideal
   references alongside.

The broker is deliberately deterministic: same inputs, same decisions,
same costs — all randomness lives in the workload generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..clustering.base import DEFAULT_MAX_CELLS, CellClusteringAlgorithm
from ..clustering.grid import CellProbability, EventGrid
from ..clustering.groups import SpacePartition
from ..network.multicast import CostTally, DeliveryCostModel
from ..network.topology import Topology
from ..telemetry.base import Telemetry, or_null
from .distribution import (
    DeliveryMethod,
    DistributionDecision,
    DistributionPolicy,
    ThresholdPolicy,
    degraded_flood,
    record_decision,
)
from .event import Event
from .matching import MatchingEngine, MatchResult
from .subscription import SubscriptionTable

__all__ = ["DeliveryRecord", "PubSubBroker"]


@dataclass(frozen=True)
class DeliveryRecord:
    """Everything that happened to one published event.

    ``repaired`` and ``undeliverable`` are only populated when the
    event was published against a fault snapshot (see
    :meth:`PubSubBroker.publish`): repaired recipients needed a detour
    or fallback unicast around dead components, undeliverable ones were
    partitioned away entirely.
    """

    event: Event
    match: MatchResult
    decision: DistributionDecision
    scheme_cost: float
    unicast_cost: float
    ideal_cost: float
    repaired: Tuple[int, ...] = ()
    undeliverable: Tuple[int, ...] = ()

    @property
    def method(self) -> DeliveryMethod:
        return self.decision.method


class PubSubBroker:
    """A complete simulated content-based pub-sub system."""

    def __init__(
        self,
        topology: Topology,
        table: SubscriptionTable,
        partition: SpacePartition,
        policy: Optional[DistributionPolicy] = None,
        matcher_backend: str = "stree",
        cost_model: Optional[DeliveryCostModel] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.topology = topology
        self.table = table
        self.partition = partition
        self.policy = policy or ThresholdPolicy()
        self.telemetry = or_null(telemetry)
        self.engine = MatchingEngine(
            table, backend=matcher_backend, telemetry=telemetry
        )
        self.costs = cost_model or DeliveryCostModel(
            topology, telemetry=telemetry
        )
        #: Optional :class:`~repro.sessions.session.SessionManager`
        #: observing the publish path (see :meth:`attach_sessions`).
        self.sessions = None

    # -- construction -------------------------------------------------------

    @classmethod
    def preprocess(
        cls,
        topology: Topology,
        table: SubscriptionTable,
        algorithm: CellClusteringAlgorithm,
        num_groups: int,
        density: Optional[CellProbability] = None,
        cells_per_dim: int = 10,
        max_cells: int = DEFAULT_MAX_CELLS,
        policy: Optional[DistributionPolicy] = None,
        matcher_backend: str = "stree",
        cost_model: Optional[DeliveryCostModel] = None,
        grid_frame: Optional[tuple[Sequence[float], Sequence[float]]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> PubSubBroker:
        """Run the full preprocessing stage and return a ready broker.

        This is the paper's static phase: impose the grid, cluster the
        top-``max_cells`` cells into ``num_groups`` groups, and derive
        the space partition.

        ``grid_frame`` optionally pins the grid's bounding box to the
        known event domain; by default the frame is fitted to the
        subscriptions' finite coordinates, which is right for dense
        generated workloads but can under-cover hand-built ones.
        """
        grid = EventGrid(
            table.rectangles(),
            [s.subscriber for s in table],
            density=density,
            cells_per_dim=cells_per_dim,
            frame=grid_frame,
        )
        result = algorithm.cluster(grid, num_groups, max_cells=max_cells)
        partition = SpacePartition(grid, result)
        return cls(
            topology,
            table,
            partition,
            policy=policy,
            matcher_backend=matcher_backend,
            cost_model=cost_model,
            telemetry=telemetry,
        )

    # -- the dynamic path --------------------------------------------------------

    def publish(
        self, event: Event, faults=None, degraded: bool = False
    ) -> DeliveryRecord:
        """Match, decide and cost one event (paper Section 4's loop).

        With a fault snapshot (``faults`` exposing ``dead_links`` /
        ``dead_nodes``, e.g. a :class:`~repro.faults.plan.FaultState`),
        the delivery degrades gracefully instead of assuming a healthy
        network: multicast trees are pruned at dead links/brokers and
        stranded interested subscribers are repaired by unicasts over
        the surviving graph; unicast fan-outs pay surviving-path
        prices.  The unicast/ideal reference costs stay fault-free, so
        the repair overhead is visible in the improvement percentage.

        With ``degraded=True`` (the overload HealthMonitor's DEGRADED
        state) the broker skips the exact S-tree point query and
        floods the precomputed cluster group ``S_q`` falls in — the
        paper's multicast arm taken unconditionally.  Group membership
        is a superset of the interested set by the clustering
        invariant, so correctness is preserved; the price is the
        expected-waste bandwidth the paper's EW metric quantifies.
        Catchall events (``q = 0``, no covering group) have no group to
        flood and take the exact path regardless.
        """
        if degraded:
            record = self._publish_degraded(event, faults)
            if record is not None:
                return record
        telemetry = self.telemetry
        instrumented = telemetry.enabled
        if instrumented:
            root = telemetry.start_span(
                "event",
                trace_id=event.sequence,
                publisher=event.publisher,
            )
            match_span = telemetry.start_span("match", parent=root)
            match_started = perf_counter()
        match = self.engine.match(event)
        q = self.partition.locate(event.point)
        if instrumented:
            telemetry.histogram(
                "broker.match_latency_us",
                help="wall time of one match+locate, microseconds",
            ).observe((perf_counter() - match_started) * 1e6)
            match_span.set_attribute(
                "subscribers", match.num_subscribers
            ).finish()
        if self.sessions is not None:
            # Retain the event and charge it to every durable session
            # it matches, *before* any delivery attempt (write-ahead).
            self.sessions.on_publish(event, match)
        group_size = (
            self.partition.group(q).size if q > 0 else 0
        )
        if instrumented:
            decision_span = telemetry.start_span(
                "distribution-decision", parent=root
            )
        decision = self.policy.decide(
            interested=match.num_subscribers,
            group_size=group_size,
            group=q,
        )
        record_decision(telemetry, decision)
        if instrumented:
            decision_span.set_attribute(
                "method", decision.method.value
            ).set_attribute("group", q).set_attribute(
                "interested", decision.interested
            ).finish()

        record = self._cost(
            event,
            match,
            decision,
            q,
            faults,
            telemetry,
            parent_span=root if instrumented else None,
        )
        if instrumented:
            telemetry.counter("broker.events").inc()
            root.set_attribute("method", record.method.value).finish()
        return record

    def _publish_degraded(
        self, event: Event, faults
    ) -> Optional[DeliveryRecord]:
        """The DEGRADED fast path: locate, flood ``M_q``, no matching.

        Returns ``None`` for catchall events (no covering group) so
        :meth:`publish` falls back to the exact path.
        """
        telemetry = self.telemetry
        q = self.partition.locate(event.point)
        if q <= 0:
            return None
        members = self.partition.group(q).members
        recipients = [node for node in members if node != event.publisher]
        # The exact interested set is unknown by design; the whole
        # group is treated as interested (``M_q ⊇ interested``).
        match = MatchResult(
            subscription_ids=(), subscribers=tuple(sorted(recipients))
        )
        decision = degraded_flood(
            interested=len(recipients),
            group_size=self.partition.group(q).size,
            group=q,
        )
        instrumented = telemetry.enabled
        if instrumented:
            root = telemetry.start_span(
                "event",
                trace_id=event.sequence,
                publisher=event.publisher,
                degraded=True,
            )
            telemetry.counter(
                "broker.degraded_events",
                help="events delivered by group flood (match skipped)",
            ).inc()
        record = self._cost(
            event,
            match,
            decision,
            q,
            faults,
            telemetry,
            parent_span=root if instrumented else None,
        )
        if instrumented:
            telemetry.counter("broker.events").inc()
            root.set_attribute("method", record.method.value).finish()
        return record

    def _cost(
        self,
        event: Event,
        match: MatchResult,
        decision: DistributionDecision,
        q: int,
        faults,
        telemetry: Telemetry,
        parent_span=None,
    ) -> DeliveryRecord:
        """The routing/costing stage of :meth:`publish` (one ``route`` span)."""
        if decision.method is DeliveryMethod.NOT_SENT:
            return DeliveryRecord(event, match, decision, 0.0, 0.0, 0.0)

        if telemetry.enabled:
            route_span = telemetry.start_span(
                "route",
                trace_id=event.sequence,
                parent=parent_span,
                method=decision.method.value,
            )
        recipients = [
            node for node in match.subscribers if node != event.publisher
        ]
        unicast_cost = self.costs.unicast_cost(event.publisher, recipients)
        ideal_cost = self.costs.ideal_cost(event.publisher, recipients)

        if faults is not None:
            if decision.method is DeliveryMethod.UNICAST:
                degraded = self.costs.degraded_unicast_cost(
                    event.publisher,
                    recipients,
                    dead_links=faults.dead_links,
                    dead_nodes=faults.dead_nodes,
                )
            else:
                members = self.partition.group(q).members
                degraded = self.costs.degraded_multicast_cost(
                    event.publisher,
                    members,
                    interested=recipients,
                    dead_links=faults.dead_links,
                    dead_nodes=faults.dead_nodes,
                )
            record = DeliveryRecord(
                event,
                match,
                decision,
                degraded.cost,
                unicast_cost,
                ideal_cost,
                repaired=degraded.repaired,
                undeliverable=degraded.unreachable,
            )
        elif decision.method is DeliveryMethod.UNICAST:
            record = DeliveryRecord(
                event, match, decision, unicast_cost, unicast_cost,
                ideal_cost,
            )
        else:
            members = self.partition.group(q).members
            record = DeliveryRecord(
                event,
                match,
                decision,
                self.costs.multicast_cost(event.publisher, members),
                unicast_cost,
                ideal_cost,
            )
        if telemetry.enabled:
            telemetry.histogram(
                "broker.scheme_cost", help="edge-cost units per message"
            ).observe(record.scheme_cost)
            route_span.set_attribute(
                "scheme_cost", record.scheme_cost
            ).set_attribute("recipients", len(recipients)).finish()
        return record

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        collect_records: bool = False,
    ) -> Tuple[CostTally, List[DeliveryRecord]]:
        """Publish a whole workload and tally the costs.

        Returns the tally and (when ``collect_records``) the
        per-event records for detailed inspection.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] != len(publishers):
            raise ValueError(
                "points must be (m, N) with one publisher per row"
            )
        tally = CostTally()
        records: List[DeliveryRecord] = []
        for sequence, (row, publisher) in enumerate(zip(points, publishers)):
            event = Event.create(sequence, int(publisher), row)
            record = self.publish(event)
            if record.method is DeliveryMethod.NOT_SENT:
                tally.skip()
            else:
                tally.add(
                    scheme_cost=record.scheme_cost,
                    unicast_cost=record.unicast_cost,
                    ideal_cost=record.ideal_cost,
                    recipients=record.match.num_subscribers,
                    used_multicast=(
                        record.method is DeliveryMethod.MULTICAST
                    ),
                )
            if collect_records:
                records.append(record)
        return tally, records

    # -- maintenance ------------------------------------------------------------

    def durable_state(self) -> dict:
        """The broker's durable state, JSON-ready.

        Everything a restarted broker cannot re-derive: the
        subscription table (full id space, tombstones included), the
        withdrawn ids, and the partition's group assignment.  The
        S-tree, the grid's membership lists and the routing caches are
        all recomputed from these on recovery (see
        :mod:`repro.durability`).
        """
        from .. import io as _io

        state = {
            "table": _io.table_to_dict(self.table),
            "removed": sorted(getattr(self, "_removed", ()) or ()),
            "partition": self.partition.to_state(),
        }
        if self.sessions is not None:
            state["sessions"] = self.sessions.to_state()
        return state

    def attach_sessions(self, manager) -> None:
        """Attach a :class:`~repro.sessions.session.SessionManager`.

        Every subsequent :meth:`publish` hands its match result to the
        manager (retained-log append + per-session outstanding
        tracking) before routing, and :meth:`durable_state` includes
        the cursor table so checkpoints cover sessions too.
        """
        self.sessions = manager

    def with_policy(self, policy: DistributionPolicy) -> PubSubBroker:
        """A sibling broker sharing all state except the threshold.

        Threshold sweeps (Figure 6) reuse the expensive pieces — the
        index, the partition, the routing tables and the memoized
        group trees — and vary only the decision rule.
        """
        return PubSubBroker(
            topology=self.topology,
            table=self.table,
            partition=self.partition,
            policy=policy,
            matcher_backend=self.engine.backend,
            cost_model=self.costs,
            telemetry=(
                self.telemetry if self.telemetry.enabled else None
            ),
        )
