"""Construction of the shared simulation testbed.

Builds, from an :class:`~repro.experiments.config.ExperimentConfig`,
the pieces every experiment shares: the transit-stub topology, the
placed subscriptions and their table, and (per scenario) the event
density, publication workload and preprocessed brokers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..clustering.base import CellClusteringAlgorithm
from ..core.broker import PubSubBroker
from ..core.distribution import ThresholdPolicy
from ..core.subscription import SubscriptionTable
from ..network.multicast import DeliveryCostModel
from ..network.topology import Topology, TransitStubGenerator
from ..workload.publications import (
    ProductMixtureDistribution,
    PublicationGenerator,
    publication_distribution,
)
from ..workload.subscriptions import (
    PlacedSubscription,
    StockSubscriptionGenerator,
)
from .config import ExperimentConfig

__all__ = ["Testbed", "build_testbed"]


@dataclass
class Testbed:
    """The static part of the simulation, shared across experiments."""

    config: ExperimentConfig
    topology: Topology
    placed: List[PlacedSubscription]
    table: SubscriptionTable
    cost_model: DeliveryCostModel

    def density(self, modes: int) -> ProductMixtureDistribution:
        """Event density for one of the paper's scenarios."""
        return publication_distribution(modes)

    def publications(
        self, modes: int, count: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """A seeded publication workload ``(points, publishers)``.

        The seed mixes in the mode count so scenarios differ, while
        repeated calls for the same scenario are identical.
        """
        generator = PublicationGenerator(
            self.density(modes),
            self.topology.all_stub_nodes(),
            seed=self.config.seed * 1000 + modes,
        )
        return generator.generate(count or self.config.num_events)

    def make_broker(
        self,
        algorithm: CellClusteringAlgorithm,
        num_groups: int,
        modes: int,
        threshold: float = 0.15,
    ) -> PubSubBroker:
        """Preprocess one broker (clustering + index + partition)."""
        return PubSubBroker.preprocess(
            self.topology,
            self.table,
            algorithm,
            num_groups=num_groups,
            density=self.density(modes),
            cells_per_dim=self.config.cells_per_dim,
            max_cells=self.config.max_cells,
            policy=ThresholdPolicy(threshold),
            matcher_backend=self.config.matcher_backend,
            cost_model=self.cost_model,
        )


def build_testbed(config: ExperimentConfig) -> Testbed:
    """Generate the topology and subscriptions for a config."""
    topology = TransitStubGenerator(seed=config.seed).generate()
    placed = StockSubscriptionGenerator(
        topology, seed=config.seed + 1
    ).generate(config.num_subscriptions)
    table = SubscriptionTable.from_placed(placed)
    return Testbed(
        config=config,
        topology=topology,
        placed=placed,
        table=table,
        cost_model=DeliveryCostModel(topology),
    )
