"""Figure 6 — the headline experiment: threshold sweeps.

For each clustering algorithm (Forgy k-means, pairwise grouping,
minimum spanning tree), group count (11 and 61) and publication
scenario (1, 4 and 9 modes), sweep the distribution-method threshold
``t`` over [0, 1] and record the improvement percentage over pure
unicast delivery.  ``t = 0`` reproduces the static scheme (no dynamic
decision); the paper finds an interior optimum around ``t ≈ 0.15``.

Expected shape (what the paper's Figure 6 shows, and what the
benchmark asserts): the curve rises from its ``t = 0`` value to an
interior maximum and then decays toward 0% as ``t → 1`` (everything
unicast); 61 groups dominate 11 groups; Forgy is the consistently
strong algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..clustering.base import CellClusteringAlgorithm
from ..clustering.kmeans import ForgyKMeansClustering
from ..clustering.mst import MinimumSpanningTreeClustering
from ..clustering.pairwise import PairwiseGroupingClustering
from ..core.broker import PubSubBroker
from ..core.distribution import ThresholdPolicy
from .config import ExperimentConfig
from .testbed import Testbed, build_testbed

__all__ = [
    "ThresholdPoint",
    "SweepResult",
    "sweep_thresholds",
    "run_figure6",
    "default_algorithms",
]


@dataclass(frozen=True)
class ThresholdPoint:
    """One point on a Figure 6 curve."""

    threshold: float
    improvement_percent: float
    multicasts: int
    unicasts: int
    not_sent: int


@dataclass(frozen=True)
class SweepResult:
    """One full curve: an algorithm/groups/modes combination."""

    algorithm: str
    num_groups: int
    modes: int
    points: Tuple[ThresholdPoint, ...]

    def best(self) -> ThresholdPoint:
        """The sweep's maximum-improvement point."""
        return max(self.points, key=lambda p: p.improvement_percent)

    def at(self, threshold: float) -> ThresholdPoint:
        """The point for an exact threshold value."""
        for point in self.points:
            if abs(point.threshold - threshold) < 1e-12:
                return point
        raise KeyError(f"threshold {threshold} not in sweep")

    @property
    def static_improvement(self) -> float:
        """Improvement of the no-dynamic-decision baseline (t = 0)."""
        return self.at(0.0).improvement_percent

    @property
    def dynamic_gain(self) -> float:
        """How much the dynamic scheme adds over the static one."""
        return self.best().improvement_percent - self.static_improvement


def default_algorithms() -> List[CellClusteringAlgorithm]:
    """The paper's three clustering algorithms."""
    return [
        ForgyKMeansClustering(),
        PairwiseGroupingClustering(),
        MinimumSpanningTreeClustering(),
    ]


def sweep_thresholds(
    broker: PubSubBroker,
    points: np.ndarray,
    publishers: Sequence[int],
    thresholds: Sequence[float],
) -> List[ThresholdPoint]:
    """Evaluate one broker across threshold values.

    The expensive state (index, partition, routing, memoized group
    trees) is shared across the sweep; only the decision rule varies.
    """
    curve: List[ThresholdPoint] = []
    for threshold in thresholds:
        sibling = broker.with_policy(ThresholdPolicy(threshold))
        tally, _ = sibling.run(points, publishers)
        curve.append(
            ThresholdPoint(
                threshold=float(threshold),
                improvement_percent=tally.improvement_percent,
                multicasts=tally.multicasts_sent,
                unicasts=tally.unicasts_sent,
                not_sent=tally.messages
                - tally.multicasts_sent
                - tally.unicasts_sent,
            )
        )
    return curve


def run_figure6(
    config: ExperimentConfig,
    testbed: Optional[Testbed] = None,
    algorithms: Optional[Sequence[CellClusteringAlgorithm]] = None,
) -> List[SweepResult]:
    """Run the full Figure 6 campaign."""
    if testbed is None:
        testbed = build_testbed(config)
    if algorithms is None:
        algorithms = default_algorithms()
    results: List[SweepResult] = []
    for modes in config.mode_counts:
        points, publishers = testbed.publications(modes)
        for num_groups in config.group_counts:
            for algorithm in algorithms:
                broker = testbed.make_broker(
                    algorithm, num_groups=num_groups, modes=modes
                )
                curve = sweep_thresholds(
                    broker, points, publishers, config.thresholds
                )
                results.append(
                    SweepResult(
                        algorithm=algorithm.name,
                        num_groups=num_groups,
                        modes=modes,
                        points=tuple(curve),
                    )
                )
    return results
