"""Shared configuration for the paper's experiments.

One frozen dataclass gathers every knob of the Section 5 testbed, with
defaults matching the paper: a ~600-node transit-stub network, 1000
subscriptions, the three publication scenarios (1/4/9 modes), group
counts 11 and 61, and a threshold sweep over [0, 1].

Everything is seeded; two runs with the same config produce identical
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["ExperimentConfig", "SMALL_CONFIG"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one experimental campaign."""

    seed: int = 2003  # the paper's publication year, for flavour
    num_subscriptions: int = 1000
    num_events: int = 1000
    cells_per_dim: int = 10
    max_cells: int = 200  # the paper's constant T
    group_counts: Tuple[int, ...] = (11, 61)
    mode_counts: Tuple[int, ...] = (1, 4, 9)
    thresholds: Tuple[float, ...] = (
        0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 0.75, 1.0,
    )
    matcher_backend: str = "stree"

    def __post_init__(self) -> None:
        if self.num_subscriptions < 1 or self.num_events < 1:
            raise ValueError("need at least one subscription and one event")
        if any(not 0.0 <= t <= 1.0 for t in self.thresholds):
            raise ValueError("thresholds must lie in [0, 1]")
        if any(g < 1 for g in self.group_counts):
            raise ValueError("group counts must be positive")


#: A scaled-down config for tests and quick sanity runs.
SMALL_CONFIG = ExperimentConfig(
    seed=7,
    num_subscriptions=200,
    num_events=200,
    cells_per_dim=6,
    max_cells=60,
    group_counts=(5,),
    mode_counts=(4,),
    thresholds=(0.0, 0.1, 0.3),
)
