"""Experiment drivers: one module per paper table/figure.

=================  ==============================================
module             reproduces
=================  ==============================================
``figure3``        the generated transit-stub topology
``table1``         the subscription parameter table (Section 5)
``figure4``        trade price / popularity / amount distributions
``figure5``        per-stock panels for the top-3 stocks
``figure6``        the threshold sweeps (the headline result)
``matching_*``     the S-tree vs baseline index comparison (§3)
``clustering_*``   the Appendix algorithm comparison
=================  ==============================================

``python -m repro.experiments.runner`` runs everything.
"""

from .clustering_experiment import ClusteringRow, run_clustering_comparison
from .config import SMALL_CONFIG, ExperimentConfig
from .figure3 import TopologySummary, run_figure3, summarize_topology
from .figure4 import Figure4Result, run_figure4
from .figure5 import StockPanel, run_figure5
from .figure6 import (
    SweepResult,
    ThresholdPoint,
    default_algorithms,
    run_figure6,
    sweep_thresholds,
)
from .latency_experiment import LatencyRow, run_latency_experiment
from .matching_experiment import MatchingRow, run_matching_comparison
from .replication import Replicate, ReplicationSummary, run_replication
from .table1 import BranchFrequencies, Table1Row, measure_field, run_table1
from .testbed import Testbed, build_testbed

__all__ = [
    "ClusteringRow",
    "run_clustering_comparison",
    "SMALL_CONFIG",
    "ExperimentConfig",
    "TopologySummary",
    "run_figure3",
    "summarize_topology",
    "Figure4Result",
    "run_figure4",
    "StockPanel",
    "run_figure5",
    "SweepResult",
    "ThresholdPoint",
    "default_algorithms",
    "run_figure6",
    "sweep_thresholds",
    "LatencyRow",
    "run_latency_experiment",
    "MatchingRow",
    "run_matching_comparison",
    "Replicate",
    "ReplicationSummary",
    "run_replication",
    "BranchFrequencies",
    "Table1Row",
    "measure_field",
    "run_table1",
    "Testbed",
    "build_testbed",
]
