"""Figure 5 — the three most frequently traded stocks.

Per-stock drill-down of the data study: for each of the top-``k``
stocks by trade count, the normalized price distribution (bell shaped
around the mean) and the trade-amount tail (approximately Pareto).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.distributions import (
    NormalFit,
    PowerLawFit,
    fit_normal,
    fit_pareto_tail,
)
from ..analysis.histograms import HistogramSeries, density_histogram
from ..workload.stock import StockMarketModel, TradingDay
from .config import ExperimentConfig

__all__ = ["StockPanel", "run_figure5"]


@dataclass(frozen=True)
class StockPanel:
    """One stock's pair of panels."""

    stock: int
    num_trades: int
    price_histogram: HistogramSeries
    price_fit: NormalFit
    amount_fit: PowerLawFit


def run_figure5(
    config: ExperimentConfig,
    day: Optional[TradingDay] = None,
    top_k: int = 3,
) -> List[StockPanel]:
    """Analyze the ``top_k`` most-traded stocks of a trading day."""
    if top_k < 1:
        raise ValueError("top_k must be positive")
    if day is None:
        day = StockMarketModel(seed=config.seed + 4).generate_day()
    panels: List[StockPanel] = []
    for stock in day.top_stocks(top_k):
        prices, amounts = day.trades_of(int(stock))
        panels.append(
            StockPanel(
                stock=int(stock),
                num_trades=len(prices),
                price_histogram=density_histogram(prices, bins=40),
                price_fit=fit_normal(prices),
                amount_fit=fit_pareto_tail(amounts),
            )
        )
    return panels
