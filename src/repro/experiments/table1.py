"""Section 5's parameter table — workload verification.

The paper's only table specifies the parametric interval distribution
for the ``price`` and ``volume`` subscription fields (branch
probabilities q0/q1/q2 and the normal/Pareto parameters).  This
experiment regenerates the subscription workload and *measures* the
realized branch frequencies and moments against the table — the
reproduction's check that the generator implements the spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..workload.schema import DIM_QUOTE, DIM_VOLUME
from ..workload.subscriptions import (
    IntervalDistributionParams,
    PlacedSubscription,
)
from .config import ExperimentConfig
from .testbed import Testbed, build_testbed

__all__ = ["BranchFrequencies", "Table1Row", "measure_field", "run_table1"]


@dataclass(frozen=True)
class BranchFrequencies:
    """Realized frequencies of the four interval branches."""

    wildcard: float       # ``*``           (expected: q0)
    lower_ray: float      # ``[n, +inf)``   (expected: q1)
    upper_ray: float      # ``(-inf, n]``   (expected: q2)
    bounded: float        # ``[n1, n2]``    (expected: 1 - q0 - q1 - q2)
    bounded_center_mean: float
    bounded_min_length: float


@dataclass(frozen=True)
class Table1Row:
    """Expected-vs-measured comparison for one field."""

    field: str
    expected: IntervalDistributionParams
    measured: BranchFrequencies

    def within_tolerance(self, tol: float = 0.05) -> bool:
        """Whether every branch frequency is within ``tol`` of spec."""
        return (
            abs(self.measured.wildcard - self.expected.q0) <= tol
            and abs(self.measured.lower_ray - self.expected.q1) <= tol
            and abs(self.measured.upper_ray - self.expected.q2) <= tol
            and abs(
                self.measured.bounded - self.expected.bounded_probability
            )
            <= tol
        )


def measure_field(
    placed: Sequence[PlacedSubscription], dim: int
) -> BranchFrequencies:
    """Classify one dimension of every subscription into its branch."""
    if not placed:
        raise ValueError("no subscriptions to measure")
    wildcard = lower = upper = bounded = 0
    centers: List[float] = []
    lengths: List[float] = []
    for sub in placed:
        lo = sub.rectangle.lows[dim]
        hi = sub.rectangle.highs[dim]
        lo_inf = math.isinf(lo)
        hi_inf = math.isinf(hi)
        if lo_inf and hi_inf:
            wildcard += 1
        elif hi_inf:
            lower += 1
        elif lo_inf:
            upper += 1
        else:
            bounded += 1
            centers.append((lo + hi) / 2.0)
            lengths.append(hi - lo)
    total = len(placed)
    return BranchFrequencies(
        wildcard=wildcard / total,
        lower_ray=lower / total,
        upper_ray=upper / total,
        bounded=bounded / total,
        bounded_center_mean=float(np.mean(centers)) if centers else math.nan,
        bounded_min_length=float(min(lengths)) if lengths else math.nan,
    )


def run_table1(
    config: ExperimentConfig, testbed: Optional[Testbed] = None
) -> List[Table1Row]:
    """Measure the generated workload against the paper's table."""
    if testbed is None:
        testbed = build_testbed(config)
    from ..workload.subscriptions import PRICE_PARAMS, VOLUME_PARAMS

    return [
        Table1Row(
            field="price",
            expected=PRICE_PARAMS,
            measured=measure_field(testbed.placed, DIM_QUOTE),
        ),
        Table1Row(
            field="volume",
            expected=VOLUME_PARAMS,
            measured=measure_field(testbed.placed, DIM_VOLUME),
        ),
    ]
