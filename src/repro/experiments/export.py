"""CSV export of experiment results.

Every experiment driver returns typed rows; these helpers flatten them
into CSV files so the figures can be re-plotted with any external
tool.  (The evaluation environment is plot-free by design — series and
fits are asserted numerically — but downstream users will want the
data.)
"""

from __future__ import annotations

import csv
import os
import tempfile
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from .figure4 import Figure4Result
from .figure6 import SweepResult
from .matching_experiment import MatchingRow

__all__ = [
    "write_csv",
    "figure4_to_csv",
    "figure6_to_csv",
    "matching_to_csv",
]


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> int:
    """Write one CSV file; returns the number of data rows written.

    The write is atomic: rows stream into a temp file in the target
    directory, which replaces ``path`` only after every row validated
    and flushed — an error mid-export (bad row, crash, full disk)
    leaves any previous file at ``path`` untouched.
    """
    path = Path(path)
    count = 0
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent or "."), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(list(headers))
            for row in rows:
                if len(row) != len(headers):
                    raise ValueError(
                        f"row has {len(row)} cells, expected {len(headers)}"
                    )
                writer.writerow(list(row))
                count += 1
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return count


def figure4_to_csv(result: Figure4Result, directory: Union[str, Path]) -> List[Path]:
    """Write the three Figure 4 panels as separate CSV files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    price = directory / "figure4a_price_histogram.csv"
    write_csv(
        price,
        ("center", "density"),
        zip(
            result.price_histogram.centers.tolist(),
            result.price_histogram.density.tolist(),
        ),
    )
    popularity = directory / "figure4b_popularity.csv"
    write_csv(
        popularity,
        ("rank", "trades"),
        zip(
            result.popularity_ranks.tolist(),
            result.popularity_counts.tolist(),
        ),
    )
    amounts = directory / "figure4c_amount_survival.csv"
    write_csv(
        amounts,
        ("amount", "survival"),
        zip(
            result.amount_values.tolist(),
            result.amount_survival.tolist(),
        ),
    )
    return [price, popularity, amounts]


def figure6_to_csv(
    results: Sequence[SweepResult], path: Union[str, Path]
) -> int:
    """Write every Figure 6 curve point as one long-format CSV."""
    rows = [
        (
            sweep.algorithm,
            sweep.modes,
            sweep.num_groups,
            point.threshold,
            point.improvement_percent,
            point.multicasts,
            point.unicasts,
            point.not_sent,
        )
        for sweep in results
        for point in sweep.points
    ]
    return write_csv(
        path,
        (
            "algorithm",
            "modes",
            "groups",
            "threshold",
            "improvement_percent",
            "multicasts",
            "unicasts",
            "not_sent",
        ),
        rows,
    )


def matching_to_csv(
    rows: Sequence[MatchingRow], path: Union[str, Path]
) -> int:
    """Write the matching comparison table."""
    return write_csv(
        path,
        (
            "backend",
            "subscriptions",
            "build_seconds",
            "query_microseconds",
            "nodes_per_query",
            "entries_per_query",
            "mean_matches",
        ),
        [
            (
                r.backend,
                r.num_subscriptions,
                r.build_seconds,
                r.query_microseconds,
                r.nodes_per_query,
                r.entries_per_query,
                r.mean_matches,
            )
            for r in rows
        ],
    )
