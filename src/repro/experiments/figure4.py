"""Figure 4 — distributions of one day of stock trades.

Regenerates the three panels of the paper's data study over the
synthetic trading day:

- **(a)** normalized trade prices (price / opening price), which the
  paper approximates "reasonably closely by a normal distribution";
- **(b)** trades per stock against popularity rank — "approximately a
  Zipf-like distribution";
- **(c)** the trade-amount distribution — "can also be approximated by
  a Zipf-like distribution" (a heavy power-law tail).

The result carries both the raw series (for plotting) and fitted
parameters with goodness scores (for assertions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..analysis.distributions import (
    NormalFit,
    PowerLawFit,
    fit_normal,
    fit_pareto_tail,
    fit_zipf,
)
from ..analysis.histograms import (
    HistogramSeries,
    density_histogram,
    rank_frequency,
    survival_curve,
)
from ..workload.stock import StockMarketModel, TradingDay
from .config import ExperimentConfig

__all__ = ["Figure4Result", "run_figure4"]


@dataclass(frozen=True)
class Figure4Result:
    """The three panels plus their fits."""

    price_histogram: HistogramSeries          # panel (a) series
    price_fit: NormalFit                      # panel (a) fit
    popularity_ranks: np.ndarray              # panel (b) x
    popularity_counts: np.ndarray             # panel (b) y
    popularity_fit: PowerLawFit               # panel (b) fit
    amount_values: np.ndarray                 # panel (c) x (survival grid)
    amount_survival: np.ndarray               # panel (c) y
    amount_fit: PowerLawFit                   # panel (c) fit


def run_figure4(
    config: ExperimentConfig, day: Optional[TradingDay] = None
) -> Figure4Result:
    """Generate (or accept) a trading day and analyze it."""
    if day is None:
        day = StockMarketModel(seed=config.seed + 4).generate_day()

    prices = day.normalized_prices()
    price_histogram = density_histogram(prices, bins=60)
    price_fit = fit_normal(prices)

    ranks, counts = rank_frequency(day.trades_per_stock())
    popularity_fit = fit_zipf(counts)

    xs, survival = survival_curve(day.amount)
    amount_fit = fit_pareto_tail(day.amount)

    return Figure4Result(
        price_histogram=price_histogram,
        price_fit=price_fit,
        popularity_ranks=ranks,
        popularity_counts=counts,
        popularity_fit=popularity_fit,
        amount_values=xs,
        amount_survival=survival,
        amount_fit=amount_fit,
    )
