"""Multi-seed replication of the headline result.

A reproduction's conclusions should not hinge on one lucky random
testbed.  This experiment regenerates the *entire* stack — topology,
subscriptions, publications — under several independent seeds and
re-runs the Figure 6 scenario (Forgy, 11 groups, 9 modes) on each,
reporting the distribution of the static improvement, the best
dynamic improvement and the optimal threshold across replicates.

The shape claims that must survive every replicate: positive
improvement, dynamic ≥ static, and a small optimal threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..clustering.kmeans import ForgyKMeansClustering
from .config import ExperimentConfig
from .figure6 import SweepResult, sweep_thresholds
from .testbed import build_testbed

__all__ = ["Replicate", "ReplicationSummary", "run_replication"]


@dataclass(frozen=True)
class Replicate:
    """One seed's outcome."""

    seed: int
    static_improvement: float
    best_improvement: float
    best_threshold: float

    @property
    def dynamic_gain(self) -> float:
        return self.best_improvement - self.static_improvement


@dataclass(frozen=True)
class ReplicationSummary:
    """Across-seed statistics."""

    replicates: Tuple[Replicate, ...]

    def _values(self, attribute: str) -> np.ndarray:
        return np.asarray(
            [getattr(r, attribute) for r in self.replicates]
        )

    def mean_best(self) -> float:
        return float(self._values("best_improvement").mean())

    def std_best(self) -> float:
        return float(self._values("best_improvement").std())

    def min_best(self) -> float:
        return float(self._values("best_improvement").min())

    def max_threshold(self) -> float:
        return float(self._values("best_threshold").max())

    def all_shapes_hold(self) -> bool:
        """The reproduction's qualitative claims, on every seed."""
        return all(
            r.best_improvement > 0.0
            and r.dynamic_gain >= -1e-9
            and r.best_threshold <= 0.5
            for r in self.replicates
        )


def run_replication(
    base_config: ExperimentConfig,
    seeds: Sequence[int] = (11, 23, 47, 89, 151),
    num_groups: int = 11,
    modes: int = 9,
) -> ReplicationSummary:
    """Re-run the headline scenario under independent seeds."""
    replicates: List[Replicate] = []
    for seed in seeds:
        config = ExperimentConfig(
            seed=int(seed),
            num_subscriptions=base_config.num_subscriptions,
            num_events=base_config.num_events,
            cells_per_dim=base_config.cells_per_dim,
            max_cells=base_config.max_cells,
            group_counts=(num_groups,),
            mode_counts=(modes,),
            thresholds=base_config.thresholds,
        )
        testbed = build_testbed(config)
        broker = testbed.make_broker(
            ForgyKMeansClustering(), num_groups=num_groups, modes=modes
        )
        points, publishers = testbed.publications(modes)
        curve = sweep_thresholds(
            broker, points, publishers, config.thresholds
        )
        sweep = SweepResult(
            algorithm="forgy",
            num_groups=num_groups,
            modes=modes,
            points=tuple(curve),
        )
        best = sweep.best()
        replicates.append(
            Replicate(
                seed=int(seed),
                static_improvement=sweep.static_improvement,
                best_improvement=best.improvement_percent,
                best_threshold=best.threshold,
            )
        )
    return ReplicationSummary(replicates=tuple(replicates))
