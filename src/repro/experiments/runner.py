"""Run the whole experimental campaign and print the paper's tables.

Usage::

    python -m repro.experiments.runner            # full-scale campaign
    python -m repro.experiments.runner --small    # quick sanity run
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List

from ..analysis.report import format_table, sparkline
from .clustering_experiment import run_clustering_comparison
from .config import SMALL_CONFIG, ExperimentConfig
from .figure3 import run_figure3
from .figure4 import run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6
from .matching_experiment import run_matching_comparison
from .table1 import run_table1
from .testbed import build_testbed

__all__ = ["main"]

#: All campaign output flows through this logger; ``--quiet`` raises its
#: level so only warnings escape, while the default handler reproduces
#: the historical ``print`` output byte for byte.
_log = logging.getLogger("repro.experiments")


def _configure_logging(quiet: bool) -> None:
    _log.setLevel(logging.WARNING if quiet else logging.INFO)
    # Rebind the handler on every call: ``print`` resolves
    # ``sys.stdout`` per call, and callers (tests, notebooks) that swap
    # the stream between runs expect the same behaviour.
    for handler in list(_log.handlers):
        _log.removeHandler(handler)
    handler = logging.StreamHandler(sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    _log.addHandler(handler)
    _log.propagate = False


def _emit(message: str = "") -> None:
    """Log one line of campaign output (the former ``print``)."""
    _log.info("%s", message)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down configuration (seconds instead of minutes)",
    )
    parser.add_argument(
        "--extensions",
        action="store_true",
        help="also run the beyond-the-paper extension experiments",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress campaign output (results still computed; "
        "warnings still shown)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also export the figure series as CSV files into DIR",
    )
    args = parser.parse_args(argv)
    _configure_logging(args.quiet)
    config = SMALL_CONFIG if args.small else ExperimentConfig()
    testbed = build_testbed(config)

    _emit("== Figure 3: generated network topology ==")
    summary = run_figure3(config)
    _emit(format_table(("property", "value"), summary.rows()))

    _emit("\n== Section 5 parameter table: workload verification ==")
    rows = []
    for row in run_table1(config, testbed):
        rows.append(
            (
                row.field,
                f"{row.measured.wildcard:.3f}/{row.expected.q0:.2f}",
                f"{row.measured.lower_ray:.3f}/{row.expected.q1:.2f}",
                f"{row.measured.upper_ray:.3f}/{row.expected.q2:.2f}",
                f"{row.measured.bounded:.3f}/"
                f"{row.expected.bounded_probability:.2f}",
                "ok" if row.within_tolerance() else "OFF-SPEC",
            )
        )
    _emit(
        format_table(
            ("field", "wildcard", "lower-ray", "upper-ray", "bounded", "check"),
            rows,
        )
    )

    _emit("\n== Figure 4: stock trade distributions ==")
    fig4 = run_figure4(config)
    _emit(
        format_table(
            ("panel", "fit", "goodness"),
            [
                (
                    "(a) normalized price",
                    f"N({fig4.price_fit.mean:.3f}, {fig4.price_fit.std:.3f})",
                    f"KS={fig4.price_fit.ks_statistic:.3f}",
                ),
                (
                    "(b) popularity",
                    f"rank^{fig4.popularity_fit.slope:.2f}",
                    f"R2={fig4.popularity_fit.r_squared:.3f}",
                ),
                (
                    "(c) amounts",
                    f"tail x^{fig4.amount_fit.slope:.2f}",
                    f"R2={fig4.amount_fit.r_squared:.3f}",
                ),
            ],
        )
    )

    _emit("\n== Figure 5: top-3 most traded stocks ==")
    rows = []
    for panel in run_figure5(config):
        rows.append(
            (
                panel.stock,
                panel.num_trades,
                f"N({panel.price_fit.mean:.3f}, {panel.price_fit.std:.3f})",
                f"x^{panel.amount_fit.slope:.2f}",
            )
        )
    _emit(format_table(("stock", "trades", "price fit", "amount tail"), rows))

    _emit("\n== Figure 6: threshold sweeps ==")
    figure6_results = run_figure6(config, testbed)
    for sweep in figure6_results:
        improvements = [p.improvement_percent for p in sweep.points]
        best = sweep.best()
        _emit(
            f"{sweep.algorithm:>9}  modes={sweep.modes}  "
            f"groups={sweep.num_groups:>3}  "
            f"[{sparkline(improvements)}]  "
            f"static={sweep.static_improvement:6.2f}%  "
            f"best={best.improvement_percent:6.2f}% @ t={best.threshold:.2f}"
        )

    _emit("\n== Clustering comparison ==")
    rows = [
        (
            r.algorithm,
            r.num_groups,
            f"{r.cluster_seconds * 1000:.0f}ms",
            f"{r.expected_waste:.1f}",
            f"{r.covered_probability:.2f}",
            f"{r.improvement_static:.1f}%",
            f"{r.improvement_at_15:.1f}%",
        )
        for r in run_clustering_comparison(config, testbed)
    ]
    _emit(
        format_table(
            ("algorithm", "groups", "time", "EW", "coverage", "t=0", "t=0.15"),
            rows,
        )
    )

    _emit("\n== Matching comparison ==")
    matching_rows = run_matching_comparison(config, testbed)
    rows = [
        (
            r.backend,
            r.num_subscriptions,
            f"{r.build_seconds * 1000:.1f}ms",
            f"{r.query_microseconds:.0f}us",
            f"{r.nodes_per_query:.1f}",
            f"{r.entries_per_query:.0f}",
        )
        for r in matching_rows
    ]
    _emit(
        format_table(
            ("backend", "k", "build", "query", "nodes/q", "entries/q"), rows
        )
    )

    if args.csv:
        from pathlib import Path

        from .export import figure4_to_csv, figure6_to_csv, matching_to_csv

        directory = Path(args.csv)
        directory.mkdir(parents=True, exist_ok=True)
        figure4_to_csv(fig4, directory)
        figure6_to_csv(figure6_results, directory / "figure6.csv")
        matching_to_csv(matching_rows, directory / "matching.csv")
        _emit(f"\nCSV series written to {directory}/")

    if args.extensions:
        _run_extensions(config, testbed)
    return 0


def _run_extensions(config, testbed) -> None:
    """The beyond-the-paper experiments (see EXPERIMENTS.md)."""
    from .latency_experiment import run_latency_experiment
    from .replication import run_replication

    _emit("\n== Extension: packet-level transport ==")
    rows = [
        (
            row.label,
            row.report.deliveries,
            f"{row.report.transmissions_per_delivery:.2f}",
            f"{row.report.latency.p95:.1f}",
            f"{row.report.queueing_delay:.0f}",
        )
        for row in run_latency_experiment(
            config,
            testbed,
            thresholds=(0.0, 0.10, 1.0),
            num_events=min(config.num_events, 150),
        )
    ]
    _emit(
        format_table(
            ("policy", "deliveries", "tx/delivery", "p95", "queueing"),
            rows,
        )
    )

    _emit("\n== Extension: replication across seeds ==")
    summary = run_replication(config, seeds=(11, 23, 47))
    _emit(
        format_table(
            ("seed", "static", "best", "best t"),
            [
                (
                    r.seed,
                    f"{r.static_improvement:.1f}%",
                    f"{r.best_improvement:.1f}%",
                    f"{r.best_threshold:.2f}",
                )
                for r in summary.replicates
            ],
        )
    )
    _emit(
        f"shapes hold on every replicate: {summary.all_shapes_hold()}"
    )


if __name__ == "__main__":
    sys.exit(main())
