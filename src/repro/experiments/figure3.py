"""Figure 3 — the generated network topology.

The paper's Figure 3 is a drawing of the 600-node GT-ITM transit-stub
network.  The reproducible content is the topology's *structure*; this
experiment regenerates the network and reports the structural summary
(node/edge counts per tier, stub statistics, degree distribution,
connectivity) that characterizes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import networkx as nx
import numpy as np

from ..network.topology import Topology
from .config import ExperimentConfig
from .testbed import build_testbed

__all__ = ["TopologySummary", "summarize_topology", "run_figure3"]


@dataclass(frozen=True)
class TopologySummary:
    """Structural facts about one generated topology."""

    num_nodes: int
    num_edges: int
    num_transit_blocks: int
    num_transit_nodes: int
    num_stubs: int
    num_stub_nodes: int
    mean_stub_size: float
    mean_degree: float
    max_degree: int
    diameter_cost: float
    is_connected: bool

    def rows(self) -> List[Tuple[str, object]]:
        """Key/value rows for table rendering."""
        return [
            ("nodes", self.num_nodes),
            ("edges", self.num_edges),
            ("transit blocks", self.num_transit_blocks),
            ("transit nodes", self.num_transit_nodes),
            ("stubs", self.num_stubs),
            ("stub nodes", self.num_stub_nodes),
            ("mean stub size", round(self.mean_stub_size, 2)),
            ("mean degree", round(self.mean_degree, 2)),
            ("max degree", self.max_degree),
            ("weighted diameter", round(self.diameter_cost, 1)),
            ("connected", self.is_connected),
        ]


def summarize_topology(topology: Topology) -> TopologySummary:
    """Compute the Figure 3 structural summary."""
    graph = topology.graph
    degrees = [d for _, d in graph.degree()]
    stub_sizes = [len(m) for m in topology.stub_members]
    # Weighted diameter via two-sweep upper bound is inexact; with a
    # few hundred nodes exact eccentricities are affordable.
    lengths = dict(
        nx.all_pairs_dijkstra_path_length(graph, weight="cost")
    )
    diameter = max(max(d.values()) for d in lengths.values())
    return TopologySummary(
        num_nodes=topology.num_nodes,
        num_edges=topology.num_edges,
        num_transit_blocks=topology.num_blocks,
        num_transit_nodes=len(topology.all_transit_nodes()),
        num_stubs=topology.num_stubs,
        num_stub_nodes=len(topology.all_stub_nodes()),
        mean_stub_size=float(np.mean(stub_sizes)),
        mean_degree=float(np.mean(degrees)),
        max_degree=int(max(degrees)),
        diameter_cost=float(diameter),
        is_connected=nx.is_connected(graph),
    )


def run_figure3(config: ExperimentConfig) -> TopologySummary:
    """Regenerate the testbed topology and summarize it."""
    testbed = build_testbed(config)
    return summarize_topology(testbed.topology)
