"""Packet-level latency/congestion study (extension experiment).

The paper scores delivery schemes in summed edge-cost units.  This
experiment replays the same workloads through the store-and-forward
simulator (:mod:`repro.simulation`) and reports what cost units hide:
per-recipient latency percentiles, link transmission counts, and
queueing under bursty publication.

The shape to expect: as the threshold moves from always-multicast
(t=0) through the tuned region to always-unicast (t→1), transmissions
per delivery change with the amount of group waste vs path sharing,
and under a burst the unicast storm pays visibly more queueing delay
on the publishers' access links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..clustering.kmeans import ForgyKMeansClustering
from ..core.distribution import ThresholdPolicy
from ..simulation.delivery import DeliverySimulation, SimulationReport
from .config import ExperimentConfig
from .testbed import Testbed, build_testbed

__all__ = ["LatencyRow", "run_latency_experiment"]


@dataclass(frozen=True)
class LatencyRow:
    """One threshold x arrival-pattern measurement."""

    threshold: float
    arrival: str  # "burst" or "paced"
    report: SimulationReport

    @property
    def label(self) -> str:
        return f"t={self.threshold:.2f}/{self.arrival}"


def run_latency_experiment(
    config: ExperimentConfig,
    testbed: Optional[Testbed] = None,
    modes: int = 9,
    num_groups: int = 11,
    thresholds: Sequence[float] = (0.0, 0.10, 1.0),
    num_events: int = 200,
) -> List[LatencyRow]:
    """Replay one scenario through the packet simulator."""
    if testbed is None:
        testbed = build_testbed(config)
    broker = testbed.make_broker(
        ForgyKMeansClustering(), num_groups=num_groups, modes=modes
    )
    points, publishers = testbed.publications(modes, count=num_events)

    rows: List[LatencyRow] = []
    for threshold in thresholds:
        sibling = broker.with_policy(ThresholdPolicy(threshold))
        for arrival, schedule in (
            ("burst", [0.0] * num_events),
            ("paced", None),
        ):
            simulation = DeliverySimulation(sibling)
            if schedule is None:
                report = simulation.run(
                    points, publishers, inter_arrival=10.0
                )
            else:
                report = simulation.run(
                    points, publishers, arrival_times=schedule
                )
            rows.append(
                LatencyRow(
                    threshold=float(threshold),
                    arrival=arrival,
                    report=report,
                )
            )
    return rows
