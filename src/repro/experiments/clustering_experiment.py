"""Clustering-algorithm comparison (paper Appendix / Section 5.2).

The paper's qualitative claims, which this experiment quantifies on
the reproduction testbed:

- Forgy k-means "performs the best in most of the experiments" and
  "has the shortest running time on a fixed set of input data";
- pairwise grouping "can achieve better performance than k-means
  [but] its running time characteristics are significantly worse";
- minimum spanning tree "did not perform as well as the others...
  but its running time characteristics are much better than those of
  pairwise grouping".

Reported per algorithm and group count: preprocessing runtime, the
expected-waste objective, catchall coverage, and the realized
improvement percentage at the static (t=0) and recommended (t=0.15)
thresholds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..clustering.base import CellClusteringAlgorithm
from ..clustering.grid import EventGrid
from ..clustering.groups import SpacePartition
from .config import ExperimentConfig
from .figure6 import default_algorithms, sweep_thresholds
from .testbed import Testbed, build_testbed

__all__ = ["ClusteringRow", "run_clustering_comparison"]


@dataclass(frozen=True)
class ClusteringRow:
    """One algorithm × group-count measurement."""

    algorithm: str
    num_groups: int
    cluster_seconds: float
    expected_waste: float
    covered_probability: float
    improvement_static: float
    improvement_at_15: float


def run_clustering_comparison(
    config: ExperimentConfig,
    testbed: Optional[Testbed] = None,
    modes: int = 9,
    algorithms: Optional[Sequence[CellClusteringAlgorithm]] = None,
) -> List[ClusteringRow]:
    """Compare the clustering algorithms on one scenario."""
    if testbed is None:
        testbed = build_testbed(config)
    if algorithms is None:
        algorithms = default_algorithms()
    density = testbed.density(modes)
    grid = EventGrid(
        testbed.table.rectangles(),
        [s.subscriber for s in testbed.table],
        density=density,
        cells_per_dim=config.cells_per_dim,
    )
    points, publishers = testbed.publications(modes)

    rows: List[ClusteringRow] = []
    for num_groups in config.group_counts:
        for algorithm in algorithms:
            start = time.perf_counter()
            result = algorithm.cluster(
                grid, num_groups, max_cells=config.max_cells
            )
            cluster_seconds = time.perf_counter() - start
            partition = SpacePartition(grid, result)

            from ..core.broker import PubSubBroker

            broker = PubSubBroker(
                testbed.topology,
                testbed.table,
                partition,
                matcher_backend=config.matcher_backend,
                cost_model=testbed.cost_model,
            )
            curve = sweep_thresholds(
                broker, points, publishers, (0.0, 0.15)
            )
            rows.append(
                ClusteringRow(
                    algorithm=algorithm.name,
                    num_groups=num_groups,
                    cluster_seconds=cluster_seconds,
                    expected_waste=result.total_expected_waste(),
                    covered_probability=partition.covered_probability(),
                    improvement_static=curve[0].improvement_percent,
                    improvement_at_15=curve[1].improvement_percent,
                )
            )
    return rows
