"""One shard as a replicated service: primary, standbys, takeover.

:class:`ReplicatedShard` is the per-shard analogue of
:class:`~repro.replication.group.ReplicatedBrokerGroup`: the shard's
acting primary journals every entry mutation and publish intent
through a :class:`~repro.cluster.journal.ShardJournal`, whose taps
feed a :class:`~repro.replication.shipping.LogShipper` streaming the
WAL to each standby's
:class:`~repro.replication.shipping.StandbyReplica`.  The same epoch
fencing applies (:class:`~repro.replication.epoch.EpochState`): a
deposed primary's stale batches and heartbeats bounce off the higher
epoch and demote it to ``FENCED``.

Two deliberate differences from the single-broker group:

- **no internal failure detectors** — suspicion and confirmation
  belong to the cluster-wide :class:`~repro.cluster.membership.
  Membership` layer, which sees every node once instead of per-shard;
  the shard only offers :meth:`candidate` and :meth:`takeover` and
  lets the coordinator decide *when*;
- **cluster-stamped epochs** — takeovers are stamped with the epoch
  the coordinator passes in (the membership view epoch), so all
  shards share one monotone counter and one
  :class:`~repro.replication.epoch.EpochDirectory` for transport
  redirects.

Takeover replays the candidate's shipped WAL via
:func:`~repro.cluster.journal.recover_shard`, installs the recovered
entry set into the live :class:`~repro.sharding.router.ShardBroker`
(journaling suppressed — recovery is not new history), re-homes the
shard, and rebinds journal + shipper toward the surviving standbys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..durability.snapshot import MemorySnapshotStore, SnapshotStore
from ..durability.wal import MemoryWAL, WriteAheadLog
from ..replication.epoch import EpochDirectory, EpochState, ReplicaRole
from ..replication.shipping import LogShipper, ShippingConfig, StandbyReplica
from ..telemetry.base import Telemetry, or_null
from .journal import RecoveredShardState, ShardJournal, recover_shard

__all__ = ["TakeoverResult", "ShardReplicationStats", "ReplicatedShard"]


@dataclass(frozen=True)
class TakeoverResult:
    """What one fenced standby takeover produced."""

    shard_id: int
    old_home: int
    new_home: int
    epoch: int
    #: Recovery digest — the determinism witness.
    digest: str
    entries: int
    #: sequence → recovered unfinished delivery, for re-hand.
    inflight: Dict[int, object]
    truncated_bytes: int


@dataclass
class ShardReplicationStats:
    """What one shard's replica set did during a run."""

    takeovers: int = 0
    takeover_digests: List[str] = field(default_factory=list)
    heartbeats_sent: int = 0
    stale_rejections: int = 0
    fenced_writes: int = 0
    final_epoch: int = 0


class ReplicatedShard:
    """One shard broker, one ranked standby set, fenced takeover.

    ``send(source, target, payload)`` puts one replication message on
    the (simulated) wire; ``None`` means synchronous lossless delivery
    (unit tests).  ``alive(node, time)`` is the fail-stop ground truth
    — a partitioned node is still *alive* and keeps shipping with its
    stale epoch, which is how it eventually gets fenced.
    """

    def __init__(
        self,
        shard_broker,
        primary: int,
        standbys: Sequence[int],
        simulator,
        send: Optional[Callable[[int, int, Dict], None]] = None,
        shipping: Optional[ShippingConfig] = None,
        alive: Optional[Callable[[int, float], bool]] = None,
        checkpoint_every: int = 64,
        breakers=None,
        telemetry: Optional[Telemetry] = None,
    ):
        if not standbys:
            raise ValueError(
                "ReplicatedShard: at least one standby is required "
                f"(shard {shard_broker.shard_id} got none)"
            )
        ranked = [int(s) for s in standbys]
        if int(primary) in ranked or len(set(ranked)) != len(ranked):
            raise ValueError(
                "ReplicatedShard: standbys must be distinct and exclude "
                f"the primary (primary={primary}, standbys={ranked})"
            )
        self.shard_broker = shard_broker
        self.shard_id = int(shard_broker.shard_id)
        self.primary = int(primary)
        self.ranked = ranked
        self.members = [self.primary] + ranked
        self.simulator = simulator
        self._send = send
        self.shipping = shipping or ShippingConfig()
        self.alive = alive or (lambda node, time: True)
        self.checkpoint_every = checkpoint_every
        self.breakers = breakers
        self.telemetry = or_null(telemetry)
        #: The shard's current configuration epoch (cluster-stamped).
        self.epoch = 0
        self.stats = ShardReplicationStats()
        self._suppress_journal = False

        self.wals: Dict[int, WriteAheadLog] = {
            node: MemoryWAL(clock=lambda: self.simulator.now)
            for node in self.members
        }
        self.stores: Dict[int, SnapshotStore] = {
            node: MemorySnapshotStore() for node in self.members
        }
        self.epochs: Dict[int, EpochState] = {
            node: EpochState(
                node=node,
                role=(
                    ReplicaRole.PRIMARY
                    if node == self.primary
                    else ReplicaRole.STANDBY
                ),
            )
            for node in self.members
        }
        self.replicas: Dict[int, StandbyReplica] = {
            node: StandbyReplica(
                self.epochs[node],
                self.wals[node],
                self.stores[node],
                telemetry=telemetry,
            )
            for node in ranked
        }
        self._shippers: Dict[int, LogShipper] = {}
        self.journal = self._bind_primary(self.primary)
        # Every entry mutation on the live shard broker hits the acting
        # primary's journal — scatter, migration installs, withdrawals.
        shard_broker.on_register = self._entry_registered
        shard_broker.on_withdraw = self._entry_withdrawn

    # -- wiring --------------------------------------------------------------

    def _bind_primary(self, node: int) -> ShardJournal:
        epoch_state = self.epochs[node]
        shipper = LogShipper(
            epoch_state,
            [
                s
                for s in self.members
                if self.epochs[s].role is ReplicaRole.STANDBY
            ],
            send=lambda standby, payload, source=node: self._transmit(
                source, standby, payload
            ),
            wal=self.wals[node],
            snapshots=self.stores[node],
            config=self.shipping,
            breakers=self.breakers,
            telemetry=self.telemetry,
        )
        self._shippers[node] = shipper
        journal = ShardJournal(
            self.shard_broker,
            self.wals[node],
            self.stores[node],
            checkpoint_every=self.checkpoint_every,
            telemetry=self.telemetry,
        )
        journal.on_record = (
            lambda lsn, kind, body, s=shipper: self._on_record(
                s, lsn, kind, body
            )
        )
        journal.on_checkpoint = (
            lambda snapshot, truncate_lsn, s=shipper: self._on_checkpoint(
                s, snapshot, truncate_lsn
            )
        )
        return journal

    def _on_record(self, shipper: LogShipper, lsn, kind, body) -> None:
        shipper.record(lsn, kind, body)
        if shipper.due:
            shipper.flush(self.simulator.now)

    def _on_checkpoint(self, shipper, snapshot, truncate_lsn) -> None:
        shipper.checkpoint(snapshot, truncate_lsn)
        # Eager: a standby holding the snapshot can take over even if
        # it missed every incremental batch since.
        shipper.flush(self.simulator.now)

    def _entry_registered(self, gid, subscriber, rectangle) -> None:
        if not self._suppress_journal:
            self.journal.log_register(gid, subscriber, rectangle)

    def _entry_withdrawn(self, gid) -> None:
        if not self._suppress_journal:
            self.journal.log_withdraw(gid)

    def _transmit(self, source: int, target: int, payload: Dict) -> None:
        payload = {**payload, "from": int(source), "shard": self.shard_id}
        if self._send is None:
            self.deliver(target, payload, self.simulator.now)
        else:
            self._send(int(source), int(target), payload)

    # -- the receive path ----------------------------------------------------

    def deliver(self, node: int, payload: Dict, time: float) -> None:
        """One replication message arrived at member ``node``."""
        node = int(node)
        if not self.alive(node, time):
            return
        kind = payload.get("type")
        sender = int(payload.get("from", -1))
        if kind == "heartbeat":
            if not self.epochs[node].admit(payload["epoch"]):
                self._transmit(
                    node,
                    sender,
                    {"type": "fence", "epoch": self.epochs[node].epoch},
                )
        elif kind in ("batch", "catchup"):
            replica = self.replicas.get(node)
            if replica is None:
                # Aimed at a node that is no longer a standby (it took
                # over); its epoch state answers for it.
                if not self.epochs[node].admit(payload["epoch"]):
                    self._transmit(
                        node,
                        sender,
                        {"type": "fence", "epoch": self.epochs[node].epoch},
                    )
                return
            reply = replica.receive(payload)
            if reply is not None:
                self._transmit(node, sender, reply)
        elif kind == "ack":
            epoch_state = self.epochs[node]
            if not epoch_state.admit(payload["epoch"]):
                return
            shipper = self._shippers.get(node)
            if shipper is not None and epoch_state.is_primary:
                shipper.ack(
                    payload["node"],
                    payload["applied"],
                    payload["end_lsn"],
                    time,
                )
        elif kind == "resync":
            epoch_state = self.epochs[node]
            if not epoch_state.admit(payload["epoch"]):
                return
            shipper = self._shippers.get(node)
            if shipper is not None and epoch_state.is_primary:
                shipper.force_catchup(payload["node"], time)
        elif kind == "fence":
            was_primary = self.epochs[node].is_primary
            self.epochs[node].adopt(payload["epoch"])
            if was_primary and self.telemetry.enabled:
                self.telemetry.counter(
                    "cluster.fenced",
                    help="ex-primary shard homes fenced by a higher epoch",
                ).inc()
        else:
            raise ValueError(
                f"ReplicatedShard: unknown payload type {kind!r}"
            )

    # -- the clock loop ------------------------------------------------------

    def tick(self, now: float) -> None:
        """One heartbeat/shipping round, driven by the coordinator.

        Every member that *believes* it is primary beats and ships —
        including a partitioned zombie, whose stale epoch is how it
        eventually learns the truth.
        """
        for node, shipper in self._shippers.items():
            epoch_state = self.epochs[node]
            if not epoch_state.is_primary or not self.alive(node, now):
                continue
            for standby in shipper.standbys:
                self._transmit(
                    node,
                    standby,
                    {"type": "heartbeat", "epoch": epoch_state.epoch},
                )
                self.stats.heartbeats_sent += 1
            shipper.flush(now)

    # -- failover ------------------------------------------------------------

    def mark_dead(self, node: int) -> None:
        """Ground truth: ``node`` is permanently gone (fail-stop kill)."""
        self.epochs[int(node)].role = ReplicaRole.DEAD

    def candidate(
        self,
        now: float,
        eligible: Optional[Callable[[int], bool]] = None,
    ) -> Optional[int]:
        """Highest-ranked standby able to take over right now.

        ``eligible`` lets the coordinator veto standbys it cannot
        reach (e.g. stranded on the wrong side of a partition).
        """
        for node in self.ranked:
            if self.epochs[node].role is not ReplicaRole.STANDBY:
                continue
            if not self.alive(node, now):
                continue
            if eligible is not None and not eligible(node):
                continue
            return node
        return None

    def takeover(
        self,
        now: float,
        epoch: int,
        directory: Optional[EpochDirectory] = None,
        eligible: Optional[Callable[[int], bool]] = None,
    ) -> Optional[TakeoverResult]:
        """Promote the best standby under cluster epoch ``epoch``.

        Returns ``None`` when no standby is usable — the coordinator
        falls back to ring exclusion (the pre-cluster stranding path).
        """
        candidate = self.candidate(now, eligible)
        if candidate is None:
            return None
        old = self.primary
        del self.replicas[candidate]
        state = recover_shard(
            self.wals[candidate],
            self.stores[candidate],
            telemetry=self.telemetry,
        )
        self._install(state, candidate)
        if epoch <= self.epoch:
            raise ValueError(
                f"ReplicatedShard: takeover epoch must advance "
                f"(have {self.epoch}, got {epoch})"
            )
        self.epoch = int(epoch)
        epoch_state = self.epochs[candidate]
        epoch_state.role = ReplicaRole.PRIMARY
        epoch_state.epoch = self.epoch
        if directory is not None:
            directory.advance(old, candidate, self.epoch)
        self.primary = candidate
        self.journal = self._bind_primary(candidate)
        self.journal.rearm(state)
        self.stats.takeovers += 1
        self.stats.takeover_digests.append(state.digest())
        if self.telemetry.enabled:
            self.telemetry.counter(
                "cluster.takeovers", help="shard takeovers completed"
            ).inc()
            self.telemetry.gauge(
                "cluster.shard_epoch",
                help="per-shard configuration epoch",
                shard=self.shard_id,
            ).set(self.epoch)
        return TakeoverResult(
            shard_id=self.shard_id,
            old_home=old,
            new_home=candidate,
            epoch=self.epoch,
            digest=state.digest(),
            entries=len(state.entries),
            inflight=dict(state.inflight),
            truncated_bytes=state.truncated_bytes,
        )

    def _install(self, state: RecoveredShardState, new_home: int) -> None:
        """Point the live shard broker at the recovered entry set.

        Journaling is suppressed: recovery is not new history, and the
        fresh primary's WAL already contains these records (it was the
        shipped copy).
        """
        self._suppress_journal = True
        try:
            self.shard_broker._entries = dict(state.entries)
            self.shard_broker._dirty = True
            self.shard_broker.home = int(new_home)
        finally:
            self._suppress_journal = False

    # -- admission & reporting ----------------------------------------------

    def write_allowed(self, node: int) -> bool:
        """Whether a write stamped with the shard's epoch may proceed
        at ``node`` — the split-brain probe the harness asserts on."""
        allowed = self.epochs[int(node)].admit_write(self.epoch)
        if not allowed and self.telemetry.enabled:
            self.telemetry.counter(
                "cluster.fenced_writes",
                help="shard writes rejected by epoch fencing",
            ).inc()
        return allowed

    @property
    def shipper(self) -> LogShipper:
        return self._shippers[self.primary]

    def lag_of(self, standby: int) -> int:
        """Ops ``standby`` is behind the acting primary's stream."""
        shipper = self._shippers[self.primary]
        if int(standby) not in shipper.acked:
            return 0
        return shipper.lag(int(standby))

    def shipping_stats(self):
        """Shipping counters summed over every (ex-)primary's shipper."""
        from ..replication.shipping import ShippingStats

        total = ShippingStats()
        for shipper in self._shippers.values():
            s = shipper.stats
            total.batches += s.batches
            total.ops_shipped += s.ops_shipped
            total.acks += s.acks
            total.catchups += s.catchups
            total.backpressure_skips += s.backpressure_skips
            total.breaker_failures += s.breaker_failures
            total.trimmed_ops += s.trimmed_ops
        return total

    def finalize_stats(self) -> ShardReplicationStats:
        """Fold per-replica counters into the shard stats."""
        self.stats.stale_rejections = sum(
            e.stale_rejected for e in self.epochs.values()
        )
        self.stats.fenced_writes = sum(
            e.writes_rejected for e in self.epochs.values()
        )
        self.stats.final_epoch = self.epoch
        return self.stats
