"""Per-shard journaling and recovery over the durability stack.

A shard's durable state is its *entry set* — the scattered
subscriptions it owns, keyed by **global** subscription id — plus the
publish intents it has not finished delivering.  :class:`ShardJournal`
write-ahead-logs both onto the same WAL/snapshot machinery a whole
broker uses (:mod:`repro.durability`), and exposes the identical
``on_record`` / ``on_checkpoint`` taps, so the replication layer's
:class:`~repro.replication.shipping.LogShipper` streams a shard's log
to its standbys without knowing it is a shard at all.

The snapshot ``table`` field carries a shard-specific encoding —
``{"kind": "shard-entries", "entries": [[gid, subscriber, lows,
highs], ...]}`` — because shard entries live in a *sparse* global id
space (an ordinary broker snapshot assumes the dense positional
table).  :func:`recover_shard` is the matching replay: newest valid
snapshot, then the WAL tail (SUBSCRIBE/UNSUBSCRIBE past the
checkpoint LSN; PUBLISH/DELIVER always, since the in-flight low-water
mark retains them below it), never raising on a torn or bit-flipped
log.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..durability.snapshot import Snapshot, SnapshotStore
from ..durability.wal import RecordKind, WriteAheadLog
from ..geometry.rectangle import Rectangle
from ..io import _decode_bound, _encode_bound
from ..telemetry.base import Telemetry, or_null

__all__ = [
    "ShardJournal",
    "ShardInflight",
    "RecoveredShardState",
    "recover_shard",
]

_TABLE_KIND = "shard-entries"


@dataclass(frozen=True)
class ShardInflight:
    """One journaled publish intent with its still-unacked targets."""

    sequence: int
    publisher: int
    targets: Tuple[int, ...]
    #: LSN of the PUBLISH record (the truncation low-water mark).
    lsn: int


@dataclass
class RecoveredShardState:
    """What :func:`recover_shard` reconstructed from a shard's storage."""

    #: gid → (subscriber, Rectangle), the shard's entry set.
    entries: Dict[int, Tuple[int, Rectangle]] = field(default_factory=dict)
    #: sequence → unfinished delivery, for post-takeover re-hand.
    inflight: Dict[int, ShardInflight] = field(default_factory=dict)
    checkpoint_lsn: int = 0
    snapshot_id: Optional[int] = None
    replayed: int = 0
    skipped: int = 0
    truncated_bytes: int = 0
    corruption: Optional[str] = None

    def digest(self) -> str:
        """Deterministic fingerprint of the recovered shard state."""
        body = {
            "entries": [
                [
                    gid,
                    subscriber,
                    [_encode_bound(x) for x in rectangle.lows],
                    [_encode_bound(x) for x in rectangle.highs],
                ]
                for gid, (subscriber, rectangle) in sorted(
                    self.entries.items()
                )
            ],
            "inflight": [
                [seq, entry.publisher, list(entry.targets)]
                for seq, entry in sorted(self.inflight.items())
            ],
            "checkpoint_lsn": self.checkpoint_lsn,
        }
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=16
        ).hexdigest()


class ShardJournal:
    """Write-ahead journaling + periodic checkpoints for one shard.

    The caller (a :class:`~repro.cluster.shard.ReplicatedShard`) wires
    the owning :class:`~repro.sharding.router.ShardBroker`'s mutation
    hooks to :meth:`log_register` / :meth:`log_withdraw`, so scatter,
    migration installs and refresh withdrawals all hit the log before
    they hit the matcher.
    """

    def __init__(
        self,
        shard_broker,
        wal: WriteAheadLog,
        store: SnapshotStore,
        checkpoint_every: int = 64,
        telemetry: Optional[Telemetry] = None,
    ):
        if checkpoint_every < 1:
            raise ValueError(
                f"ShardJournal: checkpoint_every must be >= 1 "
                f"(got {checkpoint_every})"
            )
        self.shard_broker = shard_broker
        self.wal = wal
        self.store = store
        self.checkpoint_every = checkpoint_every
        self.telemetry = or_null(telemetry)
        self._intent_lsn: Dict[int, int] = {}
        self._intent_targets: Dict[int, Set[int]] = {}
        self._appends_since_checkpoint = 0
        existing = self.store.ids()
        self._next_snapshot_id = (max(existing) + 1) if existing else 0
        self.checkpoints = 0
        #: Replication taps — same contract as ``BrokerJournal``.
        self.on_record: Optional[
            Callable[[int, RecordKind, Dict], None]
        ] = None
        self.on_checkpoint: Optional[Callable[[Snapshot, int], None]] = None

    # -- record writers ------------------------------------------------------

    def _append(self, kind: RecordKind, body: Dict) -> int:
        # Stamp the clock here so the body handed to ``on_record`` is
        # the stored body verbatim — a standby re-appending it produces
        # byte-identical records.
        if "t" not in body:
            body = {**body, "t": float(self.wal.clock())}
        lsn = self.wal.append(kind, body)
        if self.telemetry.enabled:
            self.telemetry.counter(
                "wal.appends",
                help="WAL records appended",
                kind=kind.name.lower(),
            ).inc()
        self._appends_since_checkpoint += 1
        if self.on_record is not None:
            self.on_record(lsn, kind, body)
        return lsn

    def log_register(
        self, gid: int, subscriber: int, rectangle: Rectangle
    ) -> int:
        """Journal one entry admitted to the shard (global id keyed)."""
        return self._append(
            RecordKind.SUBSCRIBE,
            {
                "sid": int(gid),
                "subscriber": int(subscriber),
                "lows": [_encode_bound(x) for x in rectangle.lows],
                "highs": [_encode_bound(x) for x in rectangle.highs],
            },
        )

    def log_withdraw(self, gid: int) -> int:
        """Journal one entry leaving the shard (migration/refresh)."""
        return self._append(RecordKind.UNSUBSCRIBE, {"sid": int(gid)})

    def log_publish(
        self,
        sequence: int,
        publisher: int,
        targets: Iterable[int],
        method: str = "",
        group: int = 0,
    ) -> int:
        """Journal a publish intent with its full recipient set."""
        target_set = {int(t) for t in targets}
        lsn = self._append(
            RecordKind.PUBLISH,
            {
                "seq": int(sequence),
                "publisher": int(publisher),
                "targets": sorted(target_set),
                "method": method,
                "group": int(group),
            },
        )
        if target_set:
            self._intent_lsn[int(sequence)] = lsn
            self._intent_targets[int(sequence)] = target_set
        return lsn

    def log_delivery(self, sequence: int, target: int) -> int:
        """Journal one target's acked delivery; retires finished intents."""
        lsn = self._append(
            RecordKind.DELIVER,
            {"seq": int(sequence), "target": int(target)},
        )
        remaining = self._intent_targets.get(int(sequence))
        if remaining is not None:
            remaining.discard(int(target))
            if not remaining:
                del self._intent_targets[int(sequence)]
                del self._intent_lsn[int(sequence)]
        self.maybe_checkpoint()
        return lsn

    # -- checkpointing -------------------------------------------------------

    def low_water_mark(self, checkpoint_lsn: int) -> int:
        """The highest LSN the WAL prefix may be truncated at."""
        candidates = list(self._intent_lsn.values())
        candidates.append(checkpoint_lsn)
        return min(candidates)

    def maybe_checkpoint(self) -> bool:
        if self._appends_since_checkpoint >= self.checkpoint_every:
            self.checkpoint()
            return True
        return False

    def checkpoint(self) -> Snapshot:
        """Snapshot the shard's entry set and truncate the WAL prefix."""
        checkpoint_lsn = self.wal.end_lsn
        entries = [
            [
                int(gid),
                int(subscriber),
                [_encode_bound(x) for x in rectangle.lows],
                [_encode_bound(x) for x in rectangle.highs],
            ]
            for gid, (subscriber, rectangle) in sorted(
                self.shard_broker._entries.items()
            )
        ]
        snapshot = Snapshot(
            snapshot_id=self._next_snapshot_id,
            checkpoint_lsn=checkpoint_lsn,
            table={"kind": _TABLE_KIND, "entries": entries},
            removed=[],
            partition=None,
            taken_at=self.wal.clock(),
        )
        self.store.save(snapshot)
        self._next_snapshot_id += 1
        self._append(
            RecordKind.CHECKPOINT,
            {"snapshot_id": snapshot.snapshot_id, "lsn": checkpoint_lsn},
        )
        truncate_lsn = self.low_water_mark(checkpoint_lsn)
        self.wal.truncate_prefix(truncate_lsn)
        self._appends_since_checkpoint = 0
        self.checkpoints += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(snapshot, truncate_lsn)
        if self.telemetry.enabled:
            self.telemetry.counter(
                "wal.checkpoints", help="checkpoints taken"
            ).inc()
        return snapshot

    # -- recovery hand-off ---------------------------------------------------

    def rearm(self, state: RecoveredShardState) -> None:
        """Resume journaling after a takeover recovery."""
        self._intent_lsn = {
            seq: entry.lsn for seq, entry in state.inflight.items()
        }
        self._intent_targets = {
            seq: set(entry.targets)
            for seq, entry in state.inflight.items()
        }
        self._appends_since_checkpoint = 0
        existing = self.store.ids()
        self._next_snapshot_id = (max(existing) + 1) if existing else 0

    @property
    def inflight_sequences(self) -> Set[int]:
        return set(self._intent_targets)


def recover_shard(
    wal: WriteAheadLog,
    store: SnapshotStore,
    telemetry: Optional[Telemetry] = None,
) -> RecoveredShardState:
    """Rebuild one shard's entry set + in-flight intents from storage.

    Never raises on damaged input: a torn or corrupt WAL tail is
    repaired at the last valid record, a damaged snapshot falls back
    to the previous valid one (the store's ``latest`` contract), and
    undecodable bodies are counted in ``skipped``.
    """
    telemetry = or_null(telemetry)
    snapshot = store.latest()
    scan = wal.scan()
    truncated = wal.end_lsn - scan.valid_end
    if not scan.clean:
        wal.repair()

    state = RecoveredShardState(
        truncated_bytes=truncated, corruption=scan.corruption
    )
    if snapshot is not None:
        table = snapshot.table or {}
        if table.get("kind") == _TABLE_KIND:
            for gid, subscriber, lows, highs in table.get("entries", []):
                state.entries[int(gid)] = (
                    int(subscriber),
                    Rectangle(
                        tuple(_decode_bound(x) for x in lows),
                        tuple(_decode_bound(x) for x in highs),
                    ),
                )
            state.checkpoint_lsn = snapshot.checkpoint_lsn
            state.snapshot_id = snapshot.snapshot_id
        else:
            state.skipped += 1  # foreign snapshot encoding: ignore, loud

    pending: Dict[int, Dict] = {}
    for record in scan.records:
        body = record.body
        try:
            if record.kind is RecordKind.SUBSCRIBE:
                if record.lsn < state.checkpoint_lsn:
                    continue  # already folded into the snapshot
                state.entries[int(body["sid"])] = (
                    int(body["subscriber"]),
                    Rectangle(
                        tuple(_decode_bound(x) for x in body["lows"]),
                        tuple(_decode_bound(x) for x in body["highs"]),
                    ),
                )
            elif record.kind is RecordKind.UNSUBSCRIBE:
                if record.lsn < state.checkpoint_lsn:
                    continue
                state.entries.pop(int(body["sid"]), None)
            elif record.kind is RecordKind.PUBLISH:
                pending[int(body["seq"])] = {
                    "publisher": int(body["publisher"]),
                    "targets": {int(t) for t in body["targets"]},
                    "lsn": record.lsn,
                }
            elif record.kind is RecordKind.DELIVER:
                entry = pending.get(int(body["seq"]))
                if entry is not None:
                    entry["targets"].discard(int(body["target"]))
                    if not entry["targets"]:
                        del pending[int(body["seq"])]
            # CHECKPOINT / MIGRATE_* markers are informational here.
        except (KeyError, TypeError, ValueError):
            state.skipped += 1
            continue
        state.replayed += 1

    state.inflight = {
        seq: ShardInflight(
            sequence=seq,
            publisher=entry["publisher"],
            targets=tuple(sorted(entry["targets"])),
            lsn=entry["lsn"],
        )
        for seq, entry in sorted(pending.items())
    }
    if telemetry.enabled:
        telemetry.counter(
            "cluster.recoveries", help="shard recoveries performed"
        ).inc()
        telemetry.counter(
            "cluster.recovery_replayed",
            help="WAL records replayed during shard recoveries",
        ).inc(state.replayed)
    return state
