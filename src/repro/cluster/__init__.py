"""Replicated shard cluster: membership, per-shard failover, takeover.

The paper's §4 placement maps clustered subsets S_1..S_n onto servers
and assumes the servers stay up.  This package is the high-availability
closure of that assignment: each shard (one subset group from
:mod:`repro.sharding`) becomes a :class:`ReplicatedShard` — a primary
plus a ranked standby set kept current by the log-shipping and epoch
fencing machinery of :mod:`repro.replication` over the durable WAL of
:mod:`repro.durability` — while a cluster-wide :class:`Membership`
detector (suspicion → confirmed-dead hysteresis, epoch-stamped views)
decides when a shard home is gone and a fenced standby takeover must
re-home the subset.  The hash ring's ``exclude()`` stranding path from
PR 6 survives only as the last resort when a shard loses its primary
*and* every standby.

- :mod:`repro.cluster.membership` — who is alive, suspected, dead;
  one monotone view epoch over all configuration changes.
- :mod:`repro.cluster.journal` — :class:`ShardJournal` write-ahead
  logging of shard entry mutations and publish intents, plus
  :func:`recover_shard` replay onto the newest valid snapshot.
- :mod:`repro.cluster.shard` — :class:`ReplicatedShard` wiring one
  shard broker to its standby set, with :meth:`~ReplicatedShard.
  takeover` performing the fenced promotion.

The full-stack chaos harness exercising all of it under combined
failures lives in :mod:`repro.faults.cluster`.
"""

from .journal import (
    RecoveredShardState,
    ShardInflight,
    ShardJournal,
    recover_shard,
)
from .membership import ClusterView, Membership, MemberState, MembershipConfig
from .shard import ReplicatedShard, ShardReplicationStats, TakeoverResult

__all__ = [
    "ClusterView",
    "Membership",
    "MemberState",
    "MembershipConfig",
    "RecoveredShardState",
    "ReplicatedShard",
    "ShardInflight",
    "ShardJournal",
    "ShardReplicationStats",
    "TakeoverResult",
    "recover_shard",
]
