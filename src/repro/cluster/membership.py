"""Cluster membership: who is alive, suspected, or confirmed dead.

The sharded cluster needs one shared answer to "which nodes are up?"
— per-shard failure detectors would let two shards disagree about a
node that hosts a primary for one and a standby for the other.
:class:`Membership` keeps that answer: every participating node
(shard homes and standbys alike) is tracked by a per-node
:class:`~repro.replication.detector.FailureDetector`-style silence
clock, and transitions run through a two-stage hysteresis:

- ``ALIVE → SUSPECT`` after ``suspect_after`` of silence — cheap to
  enter, cheap to leave (one heartbeat recovers the node);
- ``SUSPECT → DEAD`` after ``confirm_after`` of *total* silence — the
  irreversible verdict that triggers a shard takeover.  ``DEAD`` is
  sticky: a partitioned zombie that heals and beats again stays dead
  in the view (its heartbeats are counted as stale, and epoch fencing
  rejects its writes at the replication layer).

Every transition bumps the cluster **view epoch**, and takeovers bump
it again through :meth:`advance_epoch` — one monotone counter stamps
both membership changes and shard reconfigurations, which is what lets
all shards share a single
:class:`~repro.replication.epoch.EpochDirectory` (its ``advance``
demands strictly increasing epochs).

All timing lives on the caller's injected clock: the chaos harness
feeds :meth:`heard` from its deterministic liveness oracle and calls
:meth:`tick` on a fixed cadence, so suspicion and confirmation — and
therefore failover — are pure functions of the seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = [
    "MemberState",
    "MembershipConfig",
    "ClusterView",
    "Membership",
]


class MemberState(enum.Enum):
    """One node's standing in the cluster view."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass(frozen=True)
class MembershipConfig:
    """Cadence and patience of the cluster detector (simulated time)."""

    #: How often members heartbeat (and the view is re-evaluated).
    heartbeat_interval: float = 10.0
    #: Silence longer than this moves ALIVE → SUSPECT (recoverable).
    suspect_after: float = 25.0
    #: Silence longer than this moves SUSPECT → DEAD (irreversible).
    confirm_after: float = 55.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0.0:
            raise ValueError(
                f"MembershipConfig: heartbeat_interval must be positive "
                f"(got {self.heartbeat_interval})"
            )
        if self.suspect_after <= self.heartbeat_interval:
            raise ValueError(
                f"MembershipConfig: suspect_after must exceed "
                f"heartbeat_interval (got {self.suspect_after} vs "
                f"{self.heartbeat_interval})"
            )
        if self.confirm_after <= self.suspect_after:
            raise ValueError(
                f"MembershipConfig: confirm_after must exceed "
                f"suspect_after (got {self.confirm_after} vs "
                f"{self.suspect_after})"
            )


@dataclass(frozen=True)
class ClusterView:
    """An immutable epoch-stamped snapshot of the membership."""

    epoch: int
    alive: FrozenSet[int]
    suspect: FrozenSet[int]
    dead: FrozenSet[int]

    @property
    def members(self) -> FrozenSet[int]:
        return self.alive | self.suspect | self.dead


class Membership:
    """The cluster-wide failure detector with suspicion hysteresis."""

    def __init__(
        self,
        nodes: Iterable[int],
        config: MembershipConfig = MembershipConfig(),
        now: float = 0.0,
    ):
        members = sorted({int(n) for n in nodes})
        if not members:
            raise ValueError(
                "Membership: need at least one member node (got none)"
            )
        self.config = config
        self.nodes: Tuple[int, ...] = tuple(members)
        self._state: Dict[int, MemberState] = {
            n: MemberState.ALIVE for n in members
        }
        self._last_heard: Dict[int, float] = {n: float(now) for n in members}
        self.epoch = 0
        #: ALIVE → SUSPECT transitions (including recovered ones).
        self.suspicions = 0
        #: SUSPECT → ALIVE recoveries (a heartbeat beat the verdict).
        self.recoveries = 0
        #: SUSPECT → DEAD confirmations.
        self.confirmed_deaths = 0
        #: Heartbeats from nodes the view already confirmed dead.
        self.stale_heartbeats = 0

    # -- inputs --------------------------------------------------------------

    def heard(self, node: int, now: float) -> bool:
        """One heartbeat from ``node``; returns whether it was admitted.

        A SUSPECT node recovers to ALIVE (epoch bump); a DEAD node
        stays dead — the heartbeat is the zombie talking, and the
        counter is the proof the hysteresis held.
        """
        node = int(node)
        state = self._state[node]
        if state is MemberState.DEAD:
            self.stale_heartbeats += 1
            return False
        if now > self._last_heard[node]:
            self._last_heard[node] = float(now)
        if state is MemberState.SUSPECT:
            self._state[node] = MemberState.ALIVE
            self.recoveries += 1
            self.epoch += 1
        return True

    def mark_dead(self, node: int) -> None:
        """Ground truth (fail-stop kill): skip the hysteresis entirely."""
        node = int(node)
        if self._state[node] is not MemberState.DEAD:
            self._state[node] = MemberState.DEAD
            self.confirmed_deaths += 1
            self.epoch += 1

    def tick(self, now: float) -> List[Tuple[int, MemberState]]:
        """Re-evaluate every member; returns the transitions, in node
        order, each already folded into the view (epoch bumped)."""
        transitions: List[Tuple[int, MemberState]] = []
        for node in self.nodes:
            state = self._state[node]
            if state is MemberState.DEAD:
                continue
            silence = now - self._last_heard[node]
            if (
                state is MemberState.SUSPECT
                and silence > self.config.confirm_after
            ):
                self._state[node] = MemberState.DEAD
                self.confirmed_deaths += 1
                self.epoch += 1
                transitions.append((node, MemberState.DEAD))
            elif (
                state is MemberState.ALIVE
                and silence > self.config.suspect_after
            ):
                self._state[node] = MemberState.SUSPECT
                self.suspicions += 1
                self.epoch += 1
                transitions.append((node, MemberState.SUSPECT))
        return transitions

    def advance_epoch(self) -> int:
        """Bump and return the view epoch (a takeover reconfigured a
        shard — the cluster configuration changed without a membership
        transition).  Keeping takeovers on the same counter makes the
        epoch a total order over *all* configuration changes."""
        self.epoch += 1
        return self.epoch

    # -- queries -------------------------------------------------------------

    def state_of(self, node: int) -> MemberState:
        return self._state[int(node)]

    def is_usable(self, node: int) -> bool:
        """Whether ``node`` may hold a primary/standby role right now."""
        return self._state[int(node)] is MemberState.ALIVE

    def last_heard(self, node: int) -> float:
        return self._last_heard[int(node)]

    def view(self) -> ClusterView:
        return ClusterView(
            epoch=self.epoch,
            alive=frozenset(
                n
                for n, s in self._state.items()
                if s is MemberState.ALIVE
            ),
            suspect=frozenset(
                n
                for n, s in self._state.items()
                if s is MemberState.SUSPECT
            ),
            dead=frozenset(
                n for n, s in self._state.items() if s is MemberState.DEAD
            ),
        )
