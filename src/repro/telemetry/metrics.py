"""Counters, gauges and fixed-bucket histograms for hot paths.

The pipeline's hot loops (matching, per-link forwarding, retry
timers) cannot afford per-observation allocation or locking, so every
metric here is a plain mutable object with ``__slots__`` and integer/
float arithmetic only:

- :class:`Counter` — monotone float accumulator;
- :class:`Gauge` — last-write-wins level;
- :class:`Histogram` — fixed upper-bound buckets (chosen at creation,
  never resized), with quantile *estimates* by linear interpolation
  inside the winning bucket — the classic Prometheus scheme, accurate
  to one bucket width, O(#buckets) per quantile and O(log #buckets)
  per observation.

A :class:`MetricsRegistry` names metrics and fans each name out into
label children (``registry.counter("net.link.tx", link="3-7")``), so
per-link / per-group series stay cheap: one dict lookup per
observation.  The :class:`NullMetricsRegistry` twin returns shared
do-nothing instruments, which is what makes ``NullTelemetry`` a true
no-op (see :mod:`repro.telemetry.base`).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
    "exponential_buckets",
]


def exponential_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """``count`` upper bounds ``start, start*factor, ...`` (no +inf)."""
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


#: Default histogram layout: 1e-2 .. ~1e5 in half-decade steps, wide
#: enough for both microsecond match latencies (recorded in µs) and
#: simulated delivery times (recorded in engine time units).
DEFAULT_BUCKETS = exponential_buckets(0.01, 10.0**0.5, 15)


class Counter:
    """Monotonically increasing accumulator."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A level that can move both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimates.

    ``bounds`` are the finite bucket upper edges in increasing order;
    an implicit +inf bucket catches the overflow.  ``quantile`` walks
    the cumulative counts and interpolates linearly inside the winning
    bucket (the overflow bucket reports its lower edge — there is no
    upper edge to interpolate toward), so estimates are exact to one
    bucket width, which is what fixed-cost instrumentation can promise.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "_min", "_max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self.sum = 0.0
        self.count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) of the sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index == len(self.bounds):  # overflow bucket
                    return max(self.bounds[-1], self._min)
                hi = self.bounds[index]
                lo = self.bounds[index - 1] if index > 0 else min(
                    0.0, self._min
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lo + (hi - lo) * fraction
                # Never report outside the observed range.
                return min(max(estimate, self._min), self._max)
            cumulative += bucket_count
        return self._max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


_LabelKey = Tuple[Tuple[str, str], ...]


class MetricFamily:
    """All label children of one metric name."""

    __slots__ = ("name", "kind", "help", "bounds", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = bounds
        self.children: Dict[_LabelKey, object] = {}

    def child(self, labels: _LabelKey):
        instrument = self.children.get(labels)
        if instrument is None:
            if self.kind == "counter":
                instrument = Counter()
            elif self.kind == "gauge":
                instrument = Gauge()
            else:
                instrument = Histogram(self.bounds or DEFAULT_BUCKETS)
            self.children[labels] = instrument
        return instrument


class MetricsRegistry:
    """Names → metric families; the single source for exporters.

    Metrics are created on first touch and shared thereafter — calling
    ``registry.counter("x")`` twice returns the same object, so
    instrumented code never needs set-up ceremony.  Re-registering a
    name as a different kind is an error (it would silently fork the
    series).
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        bounds: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, bounds)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"cannot re-register as {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        family = self._family(name, "counter", help)
        return family.child(tuple(sorted(labels.items())))

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        family = self._family(name, "gauge", help)
        return family.child(tuple(sorted(labels.items())))

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        family = self._family(name, "histogram", help, bounds)
        return family.child(tuple(sorted(labels.items())))

    def families(self) -> Iterator[MetricFamily]:
        """Families in registration order (exporters iterate this)."""
        return iter(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def value(self, name: str, default: float = 0.0, **labels: str) -> float:
        """Convenience: a counter/gauge child's value, or ``default``."""
        family = self._families.get(name)
        if family is None:
            return default
        child = family.children.get(tuple(sorted(labels.items())))
        if child is None or isinstance(child, Histogram):
            return default
        return child.value  # type: ignore[union-attr]


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry(MetricsRegistry):
    """Accepts every call, records nothing, allocates nothing."""

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        return _NULL_HISTOGRAM
