"""repro.telemetry — metrics + event-lifecycle tracing for the pipeline.

The measurement substrate for every layer of the pub-sub system:

- :mod:`~repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms with p50/p95/p99 estimates, behind a
  :class:`MetricsRegistry`;
- :mod:`~repro.telemetry.tracing` — parent/child spans over the event
  lifecycle (``match → distribution-decision → route → deliver →
  ack/retry``) with deterministic, seedable span ids and an injected
  clock (the simulator's, inside simulations);
- :mod:`~repro.telemetry.exporters` — JSONL span dumps and Prometheus
  text exposition;
- :mod:`~repro.telemetry.base` — the :class:`Telemetry` facade and its
  :class:`NullTelemetry` twin, the default for every ``telemetry=``
  hook, which guarantees uninstrumented runs are unchanged.

Attach to any entry point::

    from repro.telemetry import Telemetry

    telemetry = Telemetry(seed=7)
    broker = PubSubBroker.preprocess(..., telemetry=telemetry)
    broker.run(points, publishers)
    print(telemetry.histogram("broker.match_latency_us").p95)

or drive the whole instrumented pipeline from the CLI: ``repro stats``
(run summary + exporters) and ``repro trace --event <id>`` (one
event's span tree as JSONL).
"""

from .base import NULL_TELEMETRY, NullTelemetry, Telemetry, or_null
from .exporters import (
    format_span_tree,
    prometheus_text,
    span_tree,
    spans_to_jsonl,
    write_prometheus,
    write_spans_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    exponential_buckets,
)
from .tracing import NULL_SPAN, NullTracer, Span, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "or_null",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "exponential_buckets",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_SPAN",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "prometheus_text",
    "write_prometheus",
    "span_tree",
    "format_span_tree",
]
