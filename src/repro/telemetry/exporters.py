"""Trace and metrics exporters (JSONL spans, Prometheus text).

Two wire formats, both line-oriented and dependency-free:

- **JSONL traces** — one JSON object per finished span, in finish
  order, with stable key order; ``jq``/pandas-friendly and diffable
  across deterministic reruns.
- **Prometheus text exposition** — ``# HELP``/``# TYPE`` headers plus
  one sample line per label child; histograms emit cumulative
  ``_bucket{le=...}`` series with ``_sum``/``_count``, exactly as a
  scrape endpoint would.

Plus :func:`span_tree` / :func:`format_span_tree`, the tree-assembly
helpers behind ``repro trace``.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, Iterator, List, Optional, Sequence, Union

from .metrics import Histogram, MetricsRegistry
from .tracing import Span, TraceId

__all__ = [
    "spans_to_jsonl",
    "write_spans_jsonl",
    "prometheus_text",
    "write_prometheus",
    "span_tree",
    "format_span_tree",
]


# -- JSONL traces -----------------------------------------------------------


def spans_to_jsonl(spans: Iterable[Span]) -> Iterator[str]:
    """One compact JSON line per span (no trailing newline)."""
    for span in spans:
        yield json.dumps(
            span.to_dict(), sort_keys=True, separators=(",", ":")
        )


def write_spans_jsonl(
    spans: Iterable[Span], destination: Union[str, IO[str]]
) -> int:
    """Write spans as JSONL to a path or open file; returns the count."""
    written = 0
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_spans_jsonl(spans, handle)
    for line in spans_to_jsonl(spans):
        destination.write(line + "\n")
        written += 1
    return written


# -- Prometheus text format -------------------------------------------------


def _prom_name(name: str) -> str:
    """Dots and dashes become underscores; Prometheus-legal output."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(labels: Sequence, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_number(value: float) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        name = _prom_name(family.name)
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for labels, instrument in family.children.items():
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(
                    instrument.bounds, instrument.counts
                ):
                    cumulative += count
                    le = 'le="' + _prom_number(bound) + '"'
                    lines.append(
                        f"{name}_bucket{_prom_labels(labels, le)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_bucket" + _prom_labels(labels, 'le="+Inf"')
                    + f" {instrument.count}"
                )
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} "
                    f"{_prom_number(instrument.sum)}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} {instrument.count}"
                )
            else:
                lines.append(
                    f"{name}{_prom_labels(labels)} "
                    f"{_prom_number(instrument.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    registry: MetricsRegistry, destination: Union[str, IO[str]]
) -> None:
    """Write the exposition to a path or open file."""
    text = prometheus_text(registry)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)


# -- span trees (repro trace) -----------------------------------------------


def span_tree(
    spans: Sequence[Span], trace_id: Optional[TraceId] = None
) -> List[Span]:
    """Spans of one trace, reordered parents-before-children.

    Orphans (parent not in the selection — e.g. evicted by the tracer's
    retention cap) are kept and treated as roots, so the output never
    silently loses spans.
    """
    selected = [
        s for s in spans if trace_id is None or s.trace_id == trace_id
    ]
    by_parent: Dict[Optional[str], List[Span]] = {}
    ids = {s.span_id for s in selected}
    # Tie-break same-start siblings by their position in the input
    # (finish order) so e.g. match precedes distribution-decision even
    # when both are instantaneous on the simulated clock.
    position = {id(s): index for index, s in enumerate(selected)}
    for span in selected:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)

    ordered: List[Span] = []

    def visit(parent_id: Optional[str]) -> None:
        for span in sorted(
            by_parent.get(parent_id, []),
            key=lambda s: (s.start, position[id(s)]),
        ):
            ordered.append(span)
            visit(span.span_id)

    visit(None)
    return ordered


def format_span_tree(spans: Sequence[Span]) -> str:
    """Human-readable indented rendering of one trace's spans."""
    ordered = span_tree(spans)
    depth: Dict[Optional[str], int] = {None: -1}
    lines = []
    for span in ordered:
        level = depth.get(span.parent_id, -1) + 1
        depth[span.span_id] = level
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        end = "…" if span.end is None else f"{span.end:.3f}"
        lines.append(
            f"{'  ' * level}{span.name} [{span.start:.3f} → {end}]"
            + (f" {attrs}" if attrs else "")
            + ("" if span.status == "ok" else f" status={span.status}")
        )
    return "\n".join(lines)
