"""The telemetry facade the rest of the pipeline is instrumented with.

Every instrumentable component (broker, matcher, cost model, relay
service, reliable transport, packet network, chaos harness) takes an
optional ``telemetry=`` argument.  Passing nothing gets the shared
:data:`NULL_TELEMETRY` — a true no-op whose counters, histograms and
spans are inert singletons — so an uninstrumented run executes the
exact same decision/cost code paths it always did.

A real :class:`Telemetry` bundles one :class:`~repro.telemetry.metrics.
MetricsRegistry` and one :class:`~repro.telemetry.tracing.Tracer`
behind convenience pass-throughs, so call sites read as::

    telemetry.counter("broker.events").inc()
    with telemetry.span("match", trace_id=event.sequence) as span:
        ...

Clocks: span timestamps come from ``telemetry.clock``.  Simulated
components rebind it to the simulator clock (:meth:`Telemetry.
bind_clock`) so traces carry simulated time and stay deterministic;
outside a simulation the default is ``time.perf_counter``.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .tracing import NULL_SPAN, NullTracer, Span, Tracer

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY", "or_null"]


class Telemetry:
    """A live metrics registry + tracer pair."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        seed: int = 0,
        max_spans: int = 1_000_000,
    ):
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            clock=lambda: self.clock(), seed=seed, max_spans=max_spans
        )

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point span timestamps at a different time source.

        Simulations call this with the engine's ``now`` so traces are
        in simulated time (and therefore reproducible); already-open
        spans pick the new clock up on finish.
        """
        self.clock = clock

    # -- metrics pass-throughs ------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self.metrics.counter(name, help, **labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self.metrics.gauge(name, help, **labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        return self.metrics.histogram(name, help, bounds, **labels)

    # -- tracing pass-throughs ------------------------------------------------

    def start_span(self, name: str, **kwargs) -> Span:
        return self.tracer.start_span(name, **kwargs)

    def span(self, name: str, **kwargs):
        return self.tracer.span(name, **kwargs)

    def event(self, name: str, **kwargs) -> Span:
        return self.tracer.event(name, **kwargs)


class NullTelemetry(Telemetry):
    """Same interface, guaranteed to do nothing.

    ``enabled`` is False so hot paths can skip even the cheap
    bookkeeping (``if telemetry.enabled: ...``); calls that are made
    anyway land on shared inert instruments.
    """

    enabled = False

    def __init__(self) -> None:
        self.clock = lambda: 0.0
        self.metrics = NullMetricsRegistry()
        self.tracer = NullTracer()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass


#: The shared default for every ``telemetry=`` parameter.
NULL_TELEMETRY = NullTelemetry()


def or_null(telemetry: Optional[Telemetry]) -> Telemetry:
    """Resolve an optional telemetry argument to a usable object."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
