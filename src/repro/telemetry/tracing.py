"""Span-based tracing of the event lifecycle.

One published event produces one *trace* (its trace id is the event
sequence number) made of parent/child *spans*:

    event ─┬─ match
           ├─ distribution-decision
           └─ route ─┬─ deliver(target) ─┬─ retry(attempt 2)
                     │                   └─ ack
                     └─ deliver(target') ...

Two properties are deliberate and load-bearing:

- **Deterministic span ids.**  Ids derive from ``(tracer seed,
  creation ordinal)`` via BLAKE2b — never from a clock or a global
  RNG.  The discrete-event engine already guarantees a reproducible
  creation order, so the same seeded run emits byte-identical traces.
- **Injected clock.**  Timestamps come from whatever callable the
  tracer was given: ``time.perf_counter`` for live (non-simulated)
  code, the simulator's ``now`` inside a simulation.  Nothing in this
  module ever consults the wall clock on its own.

The :class:`NullTracer` twin hands out one shared, inert span, making
tracing free when disabled.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Union

__all__ = ["Span", "Tracer", "NullTracer", "NULL_SPAN"]

TraceId = Union[int, str]


class Span:
    """One timed operation inside a trace."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "status",
        "attributes",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: TraceId,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        tracer: Optional[Tracer] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attributes: Dict[str, object] = {}
        self._tracer = tracer

    @property
    def is_recording(self) -> bool:
        return True

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attribute(self, key: str, value: object) -> Span:
        self.attributes[key] = value
        return self

    def finish(
        self, time: Optional[float] = None, status: Optional[str] = None
    ) -> Span:
        """End the span (idempotent); at the injected clock by default."""
        if self.end is None:
            if status is not None:
                self.status = status
            if time is not None:
                self.end = time
            elif self._tracer is not None:
                self.end = self._tracer.clock()
            else:
                self.end = self.start
            if self._tracer is not None:
                self._tracer._finished(self)
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (exporters and tests use this)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"id={self.span_id}, parent={self.parent_id})"
        )


class _NullSpan(Span):
    """A shared span that records nothing and parents nothing."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("", 0, "", None, 0.0, tracer=None)

    @property
    def is_recording(self) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> Span:
        return self

    def finish(
        self, time: Optional[float] = None, status: Optional[str] = None
    ) -> Span:
        return self


#: The single inert span every NullTracer call returns.
NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans with deterministic ids and collects finished ones.

    Parameters
    ----------
    clock:
        Zero-argument callable giving the current time.  Use the
        simulator clock in simulations; defaults to a logical counter
        (0, 1, 2, ...) so a bare tracer is still fully deterministic.
    seed:
        Folded into every span id; two tracers with equal seeds and
        equal call orders produce identical ids.
    max_spans:
        Retention cap on the finished-span buffer (oldest dropped),
        bounding memory on long runs.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        seed: int = 0,
        max_spans: int = 1_000_000,
    ):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.clock = clock if clock is not None else self._logical_clock()
        self.seed = int(seed)
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._ordinal = 0

    @staticmethod
    def _logical_clock() -> Callable[[], float]:
        state = {"tick": -1.0}

        def tick() -> float:
            state["tick"] += 1.0
            return state["tick"]

        return tick

    def _span_id(self) -> str:
        ordinal = self._ordinal
        self._ordinal += 1
        digest = hashlib.blake2b(
            f"{self.seed}:{ordinal}".encode(), digest_size=8
        )
        return digest.hexdigest()

    def start_span(
        self,
        name: str,
        trace_id: Optional[TraceId] = None,
        parent: Optional[Span] = None,
        start: Optional[float] = None,
        **attributes: object,
    ) -> Span:
        """Open a span; inherit the trace from ``parent`` when given."""
        if parent is not None and parent.is_recording:
            trace = parent.trace_id if trace_id is None else trace_id
            parent_id = parent.span_id
        else:
            trace = trace_id if trace_id is not None else 0
            parent_id = None
        span = Span(
            name,
            trace,
            self._span_id(),
            parent_id,
            self.clock() if start is None else start,
            tracer=self,
        )
        if attributes:
            span.attributes.update(attributes)
        return span

    def event(
        self,
        name: str,
        parent: Optional[Span] = None,
        trace_id: Optional[TraceId] = None,
        **attributes: object,
    ) -> Span:
        """A zero-duration span (instant marker, e.g. one retry)."""
        span = self.start_span(
            name, trace_id=trace_id, parent=parent, **attributes
        )
        return span.finish(time=span.start)

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: Optional[TraceId] = None,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Iterator[Span]:
        """Context-managed span: finished (status=error on raise) at exit."""
        span = self.start_span(
            name, trace_id=trace_id, parent=parent, **attributes
        )
        try:
            yield span
        except BaseException:
            span.finish(status="error")
            raise
        span.finish()

    def _finished(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            # Drop the oldest half in one move: amortized O(1).
            keep = self.max_spans // 2
            self.dropped += len(self.spans) - keep
            self.spans = self.spans[-keep:]
        self.spans.append(span)

    def trace(self, trace_id: TraceId) -> List[Span]:
        """All finished spans of one trace, in finish order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0


class NullTracer(Tracer):
    """Hands out the shared inert span; never stores anything."""

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0, seed=0, max_spans=1)

    def start_span(
        self,
        name: str,
        trace_id: Optional[TraceId] = None,
        parent: Optional[Span] = None,
        start: Optional[float] = None,
        **attributes: object,
    ) -> Span:
        return NULL_SPAN

    def event(
        self,
        name: str,
        parent: Optional[Span] = None,
        trace_id: Optional[TraceId] = None,
        **attributes: object,
    ) -> Span:
        return NULL_SPAN

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: Optional[TraceId] = None,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Iterator[Span]:
        yield NULL_SPAN

    def _finished(self, span: Span) -> None:
        pass
