"""The reprolint rule set: project invariants as AST checks.

Every rule encodes an invariant the reproduction's guarantees rest on
(deterministic-per-seed ledgers, ``python -O``-safe validation,
crash-atomic persistence) and carries a code, a one-line invariant, a
rationale, and a fix-it hint — ``repro lint --list-rules`` prints the
full table.  Rules are deliberately narrow: each flags a specific
hazardous *shape* of code, and near-misses (a seeded ``default_rng``,
a typed ``except OSError``) must not trigger.

Escape hatches, in increasing order of ceremony:

- ``# repro: ordered`` — DET03 only: asserts that the iteration order
  at this line is intentional and deterministic.
- ``# repro: noqa CODE`` — suppress one rule at one line, forever.
- the baseline file — grandfathers existing findings so the CI gate
  starts green; see :mod:`repro.statics.baseline`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    ClassVar,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from .findings import Finding
from .resolve import ImportMap, resolve_call

__all__ = [
    "LintContext",
    "Rule",
    "ALL_RULES",
    "rules_by_code",
    "DET01WallClock",
    "DET02UnseededRandomness",
    "DET03UnorderedIteration",
    "ASSERT01AssertValidation",
    "ANN01QuotedAnnotation",
    "ERR01EmptyErrorMessage",
    "IO01NonAtomicWrite",
    "EXC01SwallowedException",
]


@dataclass
class LintContext:
    """Everything a rule may inspect about the file under lint."""

    path: str
    tree: ast.Module
    imports: ImportMap
    lines: Sequence[str]
    ordered_lines: FrozenSet[int] = field(default_factory=frozenset)

    def parts(self) -> Tuple[str, ...]:
        return tuple(self.path.replace("\\", "/").split("/"))

    def in_tests(self) -> bool:
        parts = self.parts()
        return "tests" in parts or parts[-1].startswith("test_")

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.code,
            path=self.path,
            line=int(line),
            col=int(col) + 1,
            message=message,
            hint=rule.hint,
            snippet=self.snippet(int(line)),
        )


class Rule:
    """Base class: one code, one invariant, one AST visitor."""

    code: ClassVar[str] = ""
    invariant: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    hint: ClassVar[str] = ""
    #: AST node types this rule wants to see (engine dispatch filter).
    interests: ClassVar[Tuple[Type[ast.AST], ...]] = ()

    def applies_to(self, ctx: LintContext) -> bool:
        """Whether this rule runs on the file at all (path scoping)."""
        return not ctx.in_tests()

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> Tuple[str, str, str, str]:
        """(code, invariant, rationale, hint) for ``--list-rules``."""
        return (cls.code, cls.invariant, cls.rationale, cls.hint)


# --------------------------------------------------------------------------
# DET01 — no wall clock
# --------------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.clock_gettime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Modules allowed to touch the host clock: they *define* the injected
#: clock seam everything else must consume.
_CLOCK_MODULE_SUFFIXES = (
    "repro/telemetry/base.py",
    "repro/telemetry/tracing.py",
)


class DET01WallClock(Rule):
    code = "DET01"
    invariant = "no wall-clock reads outside the injected-clock modules"
    rationale = (
        "chaos ledgers and failover timers must replay identically per "
        "seed; an ambient time.time()/datetime.now() read makes a run "
        "unreproducible"
    )
    hint = (
        "accept a clock callable (see repro.telemetry.base) or take the "
        "simulator's time as an argument"
    )
    interests = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        if ctx.in_tests():
            return False
        normalized = ctx.path.replace("\\", "/")
        return not normalized.endswith(_CLOCK_MODULE_SUFFIXES)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        name = resolve_call(node.func, ctx.imports)
        if name in _WALL_CLOCK_CALLS:
            yield ctx.finding(
                self, node, f"wall-clock read: {name}() is nondeterministic"
            )


# --------------------------------------------------------------------------
# DET02 — no unseeded randomness
# --------------------------------------------------------------------------

_LEGACY_NUMPY_RANDOM = frozenset(
    {
        "numpy.random.seed",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.exponential",
    }
)


def _has_seed_argument(node: ast.Call) -> bool:
    if node.args:
        return True
    return any(
        kw.arg in ("seed", "x") or kw.arg is None for kw in node.keywords
    )


class DET02UnseededRandomness(Rule):
    code = "DET02"
    invariant = "all randomness flows from an explicitly seeded generator"
    rationale = (
        "same seed must mean same tables, same fault schedule, same "
        "digests; the module-level random.* state and unseeded "
        "default_rng() draw entropy from the OS"
    )
    hint = (
        "thread a seeded numpy Generator / random.Random through the "
        "constructor instead"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        name = resolve_call(node.func, ctx.imports)
        if name is None:
            return
        if name == "random.Random" or name == "numpy.random.RandomState":
            if not _has_seed_argument(node):
                yield ctx.finding(
                    self, node, f"{name}() constructed without a seed"
                )
        elif name == "numpy.random.default_rng":
            if not _has_seed_argument(node):
                yield ctx.finding(
                    self,
                    node,
                    "numpy.random.default_rng() without a seed draws "
                    "OS entropy",
                )
        elif name in _LEGACY_NUMPY_RANDOM:
            yield ctx.finding(
                self,
                node,
                f"{name}() uses numpy's hidden module-level RNG state",
            )
        elif name.startswith("random.") and name.count(".") == 1:
            yield ctx.finding(
                self,
                node,
                f"{name}() uses the hidden module-level random state",
            )


# --------------------------------------------------------------------------
# DET03 — no bare unordered iteration feeding ordered output
# --------------------------------------------------------------------------

_ORDERING_SINKS = frozenset({"list", "tuple", "enumerate"})


def _is_unordered_source(expr: ast.expr, imports: ImportMap) -> Optional[str]:
    """Name the unordered collection ``expr`` denotes, if any."""
    if isinstance(expr, ast.Set):
        return "set literal"
    if isinstance(expr, ast.SetComp):
        return "set comprehension"
    if isinstance(expr, ast.Call):
        name = resolve_call(expr.func, imports)
        if name in ("set", "frozenset"):
            return f"{name}(...)"
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "keys"
            and not expr.args
        ):
            return ".keys() view"
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        left = _is_unordered_source(expr.left, imports)
        right = _is_unordered_source(expr.right, imports)
        if left is not None or right is not None:
            return "set expression"
    return None


class DET03UnorderedIteration(Rule):
    code = "DET03"
    invariant = (
        "iteration that feeds ordered output never ranges over a bare "
        "set or .keys() view"
    )
    rationale = (
        "set iteration order depends on PYTHONHASHSEED; a ledger, "
        "digest, or report built from it differs between identical "
        "runs"
    )
    hint = (
        "wrap the iterable in sorted(...), or append '# repro: ordered' "
        "if this order is provably deterministic"
    )
    interests = (
        ast.For,
        ast.AsyncFor,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
        ast.Call,
    )

    def _check(
        self, expr: ast.expr, anchor: ast.AST, ctx: LintContext
    ) -> Iterator[Finding]:
        kind = _is_unordered_source(expr, ctx.imports)
        if kind is None:
            return
        line = int(getattr(anchor, "lineno", 1))
        expr_line = int(getattr(expr, "lineno", line))
        if line in ctx.ordered_lines or expr_line in ctx.ordered_lines:
            return
        yield ctx.finding(
            self,
            anchor,
            f"iteration over a {kind} has hash-dependent order",
        )

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from self._check(node.iter, node, ctx)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for comp in node.generators:
                yield from self._check(comp.iter, node, ctx)
        elif isinstance(node, ast.Call) and node.args:
            name = resolve_call(node.func, ctx.imports)
            is_join = (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            )
            if name in _ORDERING_SINKS or is_join:
                yield from self._check(node.args[0], node, ctx)


# --------------------------------------------------------------------------
# ASSERT01 — no assert-based validation
# --------------------------------------------------------------------------


class ASSERT01AssertValidation(Rule):
    code = "ASSERT01"
    invariant = "library code never validates inputs or state with assert"
    rationale = (
        "python -O strips asserts wholesale; a guarantee that only "
        "holds under the default interpreter flags is not a guarantee"
    )
    hint = (
        "raise ValueError (bad input) or RuntimeError (broken state) "
        "with a message instead"
    )
    interests = (ast.Assert,)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if isinstance(node, ast.Assert):
            yield ctx.finding(
                self, node, "assert statement vanishes under python -O"
            )


# --------------------------------------------------------------------------
# ANN01 — no quoted type annotations
# --------------------------------------------------------------------------


class ANN01QuotedAnnotation(Rule):
    code = "ANN01"
    invariant = "type annotations are real expressions, never strings"
    rationale = (
        "quoted annotations dodge the typechecker's name resolution and "
        "rot silently; 'from __future__ import annotations' makes every "
        "forward reference legal unquoted"
    )
    hint = (
        "add 'from __future__ import annotations' at module top and "
        "drop the quotes"
    )
    interests = (ast.AnnAssign, ast.arg, ast.FunctionDef, ast.AsyncFunctionDef)

    def applies_to(self, ctx: LintContext) -> bool:
        return True  # tests deserve resolvable annotations too

    @staticmethod
    def _is_quoted(annotation: Optional[ast.expr]) -> bool:
        return isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        )

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if isinstance(node, ast.AnnAssign) and self._is_quoted(
            node.annotation
        ):
            yield ctx.finding(
                self, node.annotation, "quoted variable annotation"
            )
        elif isinstance(node, ast.arg) and self._is_quoted(node.annotation):
            yield ctx.finding(
                self,
                node.annotation if node.annotation is not None else node,
                f"quoted annotation on parameter {node.arg!r}",
            )
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and self._is_quoted(node.returns):
            anchor = node.returns if node.returns is not None else node
            yield ctx.finding(
                self, anchor, f"quoted return annotation on {node.name}()"
            )


# --------------------------------------------------------------------------
# ERR01 — errors carry messages
# --------------------------------------------------------------------------

_MESSAGE_REQUIRED = frozenset({"ValueError", "RuntimeError"})


class ERR01EmptyErrorMessage(Rule):
    code = "ERR01"
    invariant = "ValueError/RuntimeError always carry a non-empty message"
    rationale = (
        "a bare ValueError surfacing from a chaos run is undebuggable; "
        "the message is the only context that survives the traceback"
    )
    hint = "say what was wrong and what value made it so"
    interests = (ast.Raise,)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Raise):
            return
        exc = node.exc
        if isinstance(exc, ast.Name) and exc.id in _MESSAGE_REQUIRED:
            yield ctx.finding(
                self, node, f"{exc.id} raised without any message"
            )
            return
        if not isinstance(exc, ast.Call):
            return
        func = exc.func
        if not (isinstance(func, ast.Name) and func.id in _MESSAGE_REQUIRED):
            return
        if not exc.args:
            yield ctx.finding(
                self, node, f"{func.id}() raised with no message"
            )
            return
        first = exc.args[0]
        if isinstance(first, ast.Constant) and (
            not isinstance(first.value, str) or not first.value.strip()
        ):
            yield ctx.finding(
                self, node, f"{func.id}() raised with an empty message"
            )


# --------------------------------------------------------------------------
# IO01 — durable state is written atomically
# --------------------------------------------------------------------------

_DURABLE_PARTS = frozenset({"durability", "sessions", "replication"})
_WRITE_MODE_CHARS = frozenset("wax+")


def _mode_is_write(mode: Optional[ast.expr]) -> bool:
    if mode is None:
        return False  # open() defaults to read
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return True  # dynamic mode: assume the worst


def _mode_argument(node: ast.Call, position: int) -> Optional[ast.expr]:
    if len(node.args) > position:
        return node.args[position]
    for kw in node.keywords:
        if kw.arg == "mode":
            return kw.value
    return None


class IO01NonAtomicWrite(Rule):
    code = "IO01"
    invariant = (
        "durable-state modules write files only through repro.io's "
        "atomic helpers"
    )
    rationale = (
        "a torn write under durability/, sessions/ or replication/ is "
        "exactly the corruption the recovery path exists to survive — "
        "temp-file + os.replace + dir fsync or nothing"
    )
    hint = (
        "use repro.io.atomic_write_text / atomic_write_bytes (append-"
        "only WAL framing is the one sanctioned exception — mark it)"
    )
    interests = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        if ctx.in_tests():
            return False
        return bool(_DURABLE_PARTS & set(ctx.parts()))

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        name = resolve_call(node.func, ctx.imports)
        if name == "open" and _mode_is_write(_mode_argument(node, 1)):
            yield ctx.finding(
                self, node, "raw open() for writing durable state"
            )
            return
        if name == "os.fdopen" and _mode_is_write(_mode_argument(node, 1)):
            yield ctx.finding(
                self, node, "raw os.fdopen() for writing durable state"
            )
            return
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "open" and _mode_is_write(_mode_argument(node, 0)):
                yield ctx.finding(
                    self, node, "raw .open() for writing durable state"
                )
            elif attr in ("write_text", "write_bytes"):
                yield ctx.finding(
                    self,
                    node,
                    f".{attr}() is not crash-atomic (truncate-then-write)",
                )


# --------------------------------------------------------------------------
# EXC01 — no swallowed exceptions
# --------------------------------------------------------------------------

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_silent_body(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or bare ...
        return False
    return True


class EXC01SwallowedException(Rule):
    code = "EXC01"
    invariant = (
        "recovery and takeover paths never swallow exceptions blind"
    )
    rationale = (
        "a bare 'except:' in a recovery loop turns data loss into "
        "silence; damage must be detected loudly or handled narrowly"
    )
    hint = (
        "catch the specific exception you can actually handle, or let "
        "it propagate"
    )
    interests = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            yield ctx.finding(
                self, node, "bare 'except:' catches even KeyboardInterrupt"
            )
            return
        if (
            isinstance(node.type, ast.Name)
            and node.type.id in _BROAD_EXCEPTIONS
            and _is_silent_body(node.body)
        ):
            yield ctx.finding(
                self,
                node,
                f"'except {node.type.id}: pass' silently swallows failures",
            )


ALL_RULES: Tuple[Type[Rule], ...] = (
    DET01WallClock,
    DET02UnseededRandomness,
    DET03UnorderedIteration,
    ASSERT01AssertValidation,
    ANN01QuotedAnnotation,
    ERR01EmptyErrorMessage,
    IO01NonAtomicWrite,
    EXC01SwallowedException,
)


def rules_by_code(codes: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registry, optionally narrowed to ``codes``."""
    if codes is None:
        return [cls() for cls in ALL_RULES]
    known = {cls.code: cls for cls in ALL_RULES}
    selected: List[Rule] = []
    for code in codes:
        cls = known.get(code.upper())
        if cls is None:
            raise ValueError(
                f"unknown lint rule {code!r}; known rules: "
                + ", ".join(sorted(known))
            )
        selected.append(cls())
    return selected
