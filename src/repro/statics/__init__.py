"""reprolint — AST-based invariant checks for the reproduction.

The matching pipeline's headline guarantees (deterministic-per-seed
chaos ledgers, epoch-fenced failover, ``python -O``-safe validation,
crash-atomic durable state) are invariants of *how the code is
written*, not just what it computes.  This package turns them into
lintable rules so they are enforced at review time instead of
re-discovered one postmortem at a time:

========  ==========================================================
DET01     no wall-clock reads outside the injected-clock modules
DET02     all randomness flows from an explicitly seeded generator
DET03     no bare set/.keys() iteration feeding ordered output
ASSERT01  no assert-based validation in library code
ANN01     no quoted type annotations
ERR01     ValueError/RuntimeError always carry a non-empty message
IO01      durable-state modules write through repro.io atomic helpers
EXC01     no bare/silently-swallowed exception handlers
========  ==========================================================

Entry points: :func:`lint_paths` (library), ``repro lint`` (CLI).
Escape hatches: ``# repro: noqa CODE`` per line, ``# repro: ordered``
for DET03, and a checked-in baseline file for adoption on a dirty
tree (ours ships empty — the tree was scrubbed when the gate landed).
"""

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import LintResult, discover_files, lint_paths, lint_source
from .findings import Finding
from .report import render_json, render_rule_table, render_text
from .rules import ALL_RULES, LintContext, Rule, rules_by_code

__all__ = [
    "ALL_RULES",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintContext",
    "LintResult",
    "Rule",
    "discover_files",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_rule_table",
    "render_text",
    "rules_by_code",
]
