"""Checked-in baseline: grandfathered findings that don't fail the gate.

The lint gate must be adoptable on a living tree: the baseline file
records the fingerprints of every finding that existed when the gate
was turned on, so ``repro lint`` exits 0 immediately while any *new*
violation still fails.  Entries are matched as a multiset of
``(rule, fingerprint)`` pairs — two identical offending lines need two
entries — and a fingerprint ignores line numbers (see
:mod:`repro.statics.findings`), so the baseline only decays when the
offending code itself changes.

The shipped tree's baseline is empty: every finding the first run
surfaced was fixed in the same change that introduced the linter.
Keeping the file checked in (rather than absent) makes the contract
explicit and gives ``--baseline write`` a stable target.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "lint-baseline.json"

_FORMAT_VERSION = 1


class Baseline:
    """A multiset of grandfathered ``(rule, fingerprint)`` pairs."""

    def __init__(
        self, entries: Union[Counter[Tuple[str, str]], None] = None
    ) -> None:
        self._entries: Counter[Tuple[str, str]] = Counter(entries or {})

    def __len__(self) -> int:
        return sum(self._entries.values())

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> Baseline:
        baseline = cls()
        for finding in findings:
            baseline._entries[(finding.rule, finding.fingerprint)] += 1
        return baseline

    @classmethod
    def load(cls, path: Union[str, Path]) -> Baseline:
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        baseline = cls()
        for entry in payload.get("entries", []):
            key = (str(entry["rule"]), str(entry["fingerprint"]))
            baseline._entries[key] += int(entry.get("count", 1))
        return baseline

    def dump(self, path: Union[str, Path]) -> None:
        """Write the baseline as deterministic, diff-friendly JSON."""
        entries = [
            {"rule": rule, "fingerprint": fingerprint, "count": count}
            for (rule, fingerprint), count in sorted(self._entries.items())
        ]
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        Path(path).write_text(text, encoding="utf-8")

    def partition(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, grandfathered).

        Consumes baseline budget per match, so N baselined copies of a
        line excuse at most N occurrences — the N+1th is new.
        """
        budget = Counter(self._entries)
        fresh: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.fingerprint)
            if budget[key] > 0:
                budget[key] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        return fresh, grandfathered

    def to_dict(self) -> Dict[str, int]:
        """Flat ``rule:fingerprint -> count`` view (used by tests)."""
        return {
            f"{rule}:{fingerprint}": count
            for (rule, fingerprint), count in sorted(self._entries.items())
        }
