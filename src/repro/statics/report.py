"""Render a :class:`~repro.statics.engine.LintResult` for humans or CI.

Text mode is for terminals: one ``path:line:col CODE message`` line
per finding, hint indented underneath, summary footer.  JSON mode is
for the CI gate and tooling: a single object with the findings, the
per-rule counts, and the exit code, so a job can both fail on and
archive the result without scraping text.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from .engine import LintResult
from .rules import ALL_RULES

__all__ = ["render_text", "render_json", "render_rule_table"]


def render_text(result: LintResult, verbose_hints: bool = True) -> str:
    """Human-readable report, deterministic line order."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.message}"
        )
        if verbose_hints and finding.hint:
            lines.append(f"    fix: {finding.hint}")
    for error in result.errors:
        lines.append(f"PARSE ERROR: {error}")
    per_rule = Counter(f.rule for f in result.findings)
    breakdown = ", ".join(
        f"{rule}={count}" for rule, count in sorted(per_rule.items())
    )
    summary = (
        f"{result.files} files: {len(result.findings)} finding(s)"
        + (f" [{breakdown}]" if breakdown else "")
        + f", {len(result.baselined)} baselined,"
        f" {len(result.suppressed)} suppressed"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    per_rule = Counter(f.rule for f in result.findings)
    payload = {
        "files": result.files,
        "exit_code": result.exit_code,
        "findings": [f.to_dict() for f in result.findings],
        "counts": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "errors": len(result.errors),
            "per_rule": dict(sorted(per_rule.items())),
        },
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_table() -> str:
    """The ``--list-rules`` catalogue: code, invariant, rationale, fix."""
    blocks: List[str] = []
    for cls in ALL_RULES:
        code, invariant, rationale, hint = cls.describe()
        blocks.append(
            f"{code}: {invariant}\n"
            f"    why: {rationale}\n"
            f"    fix: {hint}"
        )
    return "\n".join(blocks)
