"""Best-effort dotted-name resolution for lint rules.

Rules like DET01 ("no wall clock") need to know that ``now()`` in

    from datetime import datetime
    stamp = datetime.now()

is really ``datetime.datetime.now``.  :class:`ImportMap` records what
every imported local name stands for, and :func:`resolve_call` walks
an attribute chain back to its imported root, returning the fully
qualified dotted name (or ``None`` when the chain bottoms out in
something dynamic — a call result, a subscript — that static analysis
cannot name).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = ["ImportMap", "resolve_call"]


class ImportMap:
    """Local name → fully qualified origin, built from import statements."""

    def __init__(self) -> None:
        self._names: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> ImportMap:
        table = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else local
                    table._names[local] = origin
            elif isinstance(node, ast.ImportFrom):
                # Relative imports resolve inside the package under
                # lint, which never shadows stdlib ``time``/``random``
                # — skip them rather than mis-attribute.
                if node.level or node.module is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    table._names[local] = f"{node.module}.{alias.name}"
        return table

    def origin(self, local_name: str) -> Optional[str]:
        """Qualified origin of ``local_name``, or None if not imported."""
        return self._names.get(local_name)


def resolve_call(func: ast.expr, imports: ImportMap) -> Optional[str]:
    """Fully qualified dotted name of a call target, if resolvable.

    ``np.random.default_rng`` → ``"numpy.random.default_rng"`` when
    numpy was imported as ``np``.  Plain builtins resolve to their own
    name (``open`` → ``"open"``) unless an import shadows them.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = imports.origin(node.id)
    parts.append(origin if origin is not None else node.id)
    return ".".join(reversed(parts))
