"""Finding datatype shared by the linter engine, baseline, and reports.

A :class:`Finding` is one rule violation at one source location.  Its
``fingerprint`` deliberately ignores the line *number* (hashing the
rule, the path, and the stripped source text instead) so a checked-in
baseline survives unrelated edits above a grandfathered violation —
the baseline only "loses" an entry when the offending line itself is
edited or moved to another file, which is exactly when a human should
re-decide whether it stays exempt.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Union

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number-free)."""
        digest = hashlib.blake2b(digest_size=8)
        for part in (self.rule, self.path, self.snippet.strip()):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready encoding (used by ``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of a text report."""
        return f"{self.path}:{self.line}:{self.col}"
