"""The lint engine: discover files, parse, dispatch rules, suppress.

One :func:`lint_paths` call is the whole pipeline::

    result = lint_paths(["src"])          # all rules, baseline applied
    result.findings                       # what fails the gate
    result.suppressed                     # '# repro: noqa'-excused
    result.baselined                      # grandfathered

Each file is parsed once and walked once; rules register the node
types they care about and the engine dispatches accordingly, so the
cost of adding a rule is proportional to the nodes it actually
inspects.  Findings come back sorted by (path, line, col, rule) so
output — and therefore the JSON report and the baseline file — is
deterministic, which is only polite for a linter whose flagship rules
police determinism.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from .baseline import Baseline
from .findings import Finding
from .resolve import ImportMap
from .rules import ALL_RULES, LintContext, Rule, rules_by_code

__all__ = ["LintResult", "lint_paths", "lint_source", "discover_files"]

_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\s+(?P<codes>[A-Za-z0-9_,\s]+?))?\s*(?:-|$)"
)
_ORDERED_PATTERN = re.compile(r"#\s*repro:\s*ordered\b")

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", "build"})


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files: int = 0

    @property
    def exit_code(self) -> int:
        """1 when the gate should fail: new findings or unparsable files."""
        return 1 if (self.findings or self.errors) else 0


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand path arguments into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                candidate
                for candidate in path.rglob("*.py")
                if not (_SKIP_DIRS & set(candidate.parts))
            )
        elif path.suffix == ".py":
            out.append(path)
        elif not path.exists():
            raise ValueError(f"lint target does not exist: {raw}")
    return sorted(set(out))


def _line_markers(
    lines: Sequence[str],
) -> Tuple[Dict[int, Optional[FrozenSet[str]]], FrozenSet[int]]:
    """Extract noqa suppressions and '# repro: ordered' markers.

    Returns ``(noqa, ordered)`` where ``noqa`` maps a line number to
    the set of suppressed rule codes (``None`` meaning *all* rules)
    and ``ordered`` is the set of lines carrying the DET03 marker.
    """
    noqa: Dict[int, Optional[FrozenSet[str]]] = {}
    ordered: Set[int] = set()
    for number, text in enumerate(lines, start=1):
        if "#" not in text:
            continue
        match = _NOQA_PATTERN.search(text)
        if match:
            codes = match.group("codes")
            if codes:
                noqa[number] = frozenset(
                    code.strip().upper()
                    for code in codes.replace(",", " ").split()
                    if code.strip()
                )
            else:
                noqa[number] = None
        if _ORDERED_PATTERN.search(text):
            ordered.add(number)
    return noqa, frozenset(ordered)


def _is_suppressed(
    finding: Finding, noqa: Dict[int, Optional[FrozenSet[str]]]
) -> bool:
    if finding.line not in noqa:
        return False
    codes = noqa[finding.line]
    return codes is None or finding.rule in codes


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one already-read module. Returns (active, suppressed).

    ``path`` only scopes path-sensitive rules (IO01's durable dirs,
    DET01's clock modules) and labels the findings — nothing is read
    from disk, which keeps rule tests hermetic.
    """
    active_rules = list(rules) if rules is not None else rules_by_code()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    noqa, ordered = _line_markers(lines)
    ctx = LintContext(
        path=path.replace("\\", "/"),
        tree=tree,
        imports=ImportMap.from_tree(tree),
        lines=lines,
        ordered_lines=ordered,
    )
    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in active_rules:
        if not rule.applies_to(ctx):
            continue
        for interest in rule.interests:
            dispatch.setdefault(interest, []).append(rule)
    if not dispatch:
        return [], []

    raw: List[Finding] = []
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            raw.extend(rule.visit(node, ctx))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    active = [f for f in raw if not _is_suppressed(f, noqa)]
    suppressed = [f for f in raw if _is_suppressed(f, noqa)]
    return active, suppressed


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint files/directories; the core of ``repro lint``."""
    selected = rules_by_code(rules)
    result = LintResult()
    collected: List[Finding] = []
    for file_path in discover_files(paths):
        result.files += 1
        try:
            source = file_path.read_text(encoding="utf-8")
            active, suppressed = lint_source(
                source, file_path.as_posix(), selected
            )
        except (SyntaxError, UnicodeDecodeError) as error:
            result.errors.append(f"{file_path.as_posix()}: {error}")
            continue
        collected.extend(active)
        result.suppressed.extend(suppressed)
    if baseline is not None:
        fresh, grandfathered = baseline.partition(collected)
        result.findings = fresh
        result.baselined = grandfathered
    else:
        result.findings = collected
    return result
