"""Packet-level discrete-event simulation of deliveries.

Extends the paper's edge-cost accounting with the *time* dimension:
store-and-forward links with serialization, per-recipient latency, and
congestion under bursty publication — the operational case for the
multicast groups the clustering stage precomputes.
"""

from .delivery import DeliverySimulation, LatencyStats, SimulationReport
from .engine import DiscreteEventSimulator
from .packet_network import PacketNetwork, TransferLog

__all__ = [
    "DeliverySimulation",
    "LatencyStats",
    "SimulationReport",
    "DiscreteEventSimulator",
    "PacketNetwork",
    "TransferLog",
]
