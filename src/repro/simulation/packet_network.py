"""Store-and-forward packet transport over the testbed topology.

Models what the edge-cost accounting abstracts away:

- every link has a **propagation delay** proportional to its cost
  (the same quantity the paper sums for delivery cost), and
- putting a message onto a link takes a **transmission time**, during
  which the link (per direction) is busy — later messages queue.

A unicast traverses its shortest path hop by hop.  A multicast flows
down a tree: each relay node forwards one copy per child link.  With
these two rules the classic effect emerges naturally: a unicast storm
from one publisher serializes on the publisher's access links, while a
multicast tree crosses each link once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..network.routing import RoutingTable
from ..network.topology import Topology
from ..telemetry.base import Telemetry, or_null
from .engine import DiscreteEventSimulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> simulation)
    from ..faults.plan import FaultInjector

__all__ = ["PacketNetwork", "TransferLog"]


@dataclass
class TransferLog:
    """Aggregate transport statistics of one simulation."""

    transmissions: int = 0  # link-level message copies sent
    queueing_delay: float = 0.0  # total time spent waiting for links
    max_link_queue: float = 0.0  # worst single wait
    retransmissions: int = 0  # link-layer (ARQ) retransmission attempts

    def record_wait(self, wait: float) -> None:
        self.queueing_delay += wait
        self.max_link_queue = max(self.max_link_queue, wait)


class PacketNetwork:
    """Per-link serialized transport bound to one simulator instance."""

    def __init__(
        self,
        topology: Topology,
        simulator: DiscreteEventSimulator,
        routing: RoutingTable | None = None,
        transmission_time: float = 0.25,
        propagation_scale: float = 1.0,
        injector: FaultInjector | None = None,
        hop_retries: int = 0,
        telemetry: Telemetry | None = None,
    ):
        if transmission_time < 0:
            raise ValueError("transmission_time must be non-negative")
        if propagation_scale <= 0:
            raise ValueError("propagation_scale must be positive")
        if hop_retries < 0:
            raise ValueError("hop_retries must be non-negative")
        self.topology = topology
        self.simulator = simulator
        self.routing = routing or RoutingTable.from_topology(topology)
        self.transmission_time = transmission_time
        self.propagation_scale = propagation_scale
        self.injector = injector
        self.hop_retries = hop_retries
        self.telemetry = or_null(telemetry)
        self._busy_until: Dict[Tuple[int, int], float] = {}
        self.log = TransferLog()

    #: Modelled payload size of one link-level copy.  The simulator has
    #: no byte-level content; this fixed size turns per-link copy
    #: counts into the bytes-per-link figures ``repro stats`` reports.
    MESSAGE_BYTES = 1024

    def _meter_copies(self, u: int, v: int, copies: int, wait: float) -> None:
        """Per-link accounting (only called when telemetry is live)."""
        link = f"{u}-{v}" if u <= v else f"{v}-{u}"
        telemetry = self.telemetry
        telemetry.counter(
            "net.link.transmissions",
            help="link-level message copies per (undirected) link",
            link=link,
        ).inc(copies)
        telemetry.counter(
            "net.link.bytes",
            help="modelled bytes per (undirected) link",
            link=link,
        ).inc(copies * self.MESSAGE_BYTES)
        if wait > 0:
            telemetry.histogram(
                "net.queue_wait",
                help="time spent waiting for a busy link",
            ).observe(wait)

    # -- link primitive ------------------------------------------------------

    def _forward(
        self,
        u: int,
        v: int,
        ready_time: float,
        on_arrival: Callable[[float], None],
        attempt: int = 0,
    ) -> None:
        """Send one copy over the directed link (u, v).

        ``ready_time`` is when the message is available at ``u``; the
        copy departs when the link frees up, occupies it for the
        transmission time, and arrives after the propagation delay.

        With a fault injector attached the copy may be silently
        dropped (lossy link, outage window, crashed endpoint),
        duplicated, or delayed.  A lost copy still occupied the link
        and counts as a transmission — the sender paid for it; a copy
        from a crashed sender never entered the link at all.

        With ``hop_retries > 0`` the link runs a simple ARQ: when no
        copy of a transmission arrives, the sender notices one link
        round trip later (no link-layer acknowledgment) and
        retransmits, up to the per-hop budget.  This masks random
        loss; sustained faults (outage windows, crashed endpoints)
        outlive the budget and are left to the end-to-end protocol.
        """
        key = (u, v)
        if self.injector is None:
            # Fault-free fast path: bit-for-bit the original behaviour.
            depart = max(ready_time, self._busy_until.get(key, 0.0))
            wait = depart - ready_time
            if wait > 0:
                self.log.record_wait(wait)
            self._busy_until[key] = depart + self.transmission_time
            propagation = (
                self.routing.edge_cost(u, v) * self.propagation_scale
            )
            arrival = depart + self.transmission_time + propagation
            self.log.transmissions += 1
            if self.telemetry.enabled:
                self._meter_copies(u, v, 1, wait)
            self.simulator.schedule_at(arrival, lambda: on_arrival(arrival))
            return

        depart = max(ready_time, self._busy_until.get(key, 0.0))
        fate = self.injector.filter_transmission(u, v, depart)
        if not fate.sent:
            return
        wait = depart - ready_time
        if wait > 0:
            self.log.record_wait(wait)
        copies = max(1, fate.copies)
        self._busy_until[key] = depart + self.transmission_time * copies
        self.log.transmissions += copies
        if self.telemetry.enabled:
            self._meter_copies(u, v, copies, wait)
        propagation = self.routing.edge_cost(u, v) * self.propagation_scale
        delivered_any = False
        if not fate.lost:
            for copy in range(fate.copies):
                arrival = (
                    depart
                    + self.transmission_time * (copy + 1)
                    + propagation
                    + fate.extra_delay
                )
                if self.injector.arrival_blocked(v, arrival):
                    continue
                delivered_any = True
                self.simulator.schedule_at(
                    arrival, lambda a=arrival: on_arrival(a)
                )
        if delivered_any or attempt >= self.hop_retries:
            return
        # Link-layer ARQ: one link round trip with no acknowledgment,
        # so the sender retransmits this copy.
        retry_ready = depart + self.transmission_time + 2.0 * propagation
        self.log.retransmissions += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "net.link.retransmissions",
                help="link-layer ARQ retransmission attempts",
            ).inc()
        self.simulator.schedule_at(
            retry_ready,
            lambda: self._forward(u, v, retry_ready, on_arrival, attempt + 1),
        )

    # -- delivery patterns -------------------------------------------------------

    def send_unicast(
        self,
        source: int,
        target: int,
        on_delivered: Callable[[int, float], None],
    ) -> None:
        """Route one message hop-by-hop along the shortest path.

        ``on_delivered(target, time)`` fires at arrival.  Sending to
        oneself delivers immediately at the current time.
        """
        if source == target:
            now = self.simulator.now
            self.simulator.schedule(0.0, lambda: on_delivered(target, now))
            return
        self.send_along(self.routing.path(source, target), on_delivered)

    def send_along(
        self,
        path: Sequence[int],
        on_delivered: Callable[[int, float], None],
    ) -> None:
        """Forward one message hop-by-hop along an explicit node path.

        The reliable transport uses this to retransmit around known-dead
        links and nodes: the path need not be the routing table's
        shortest path, but every consecutive pair must be a topology
        edge.  A single-node path delivers immediately.
        """
        path = [int(node) for node in path]
        if not path:
            raise ValueError("path must contain at least one node")
        target = path[-1]
        if len(path) == 1:
            now = self.simulator.now
            self.simulator.schedule(0.0, lambda: on_delivered(target, now))
            return

        def hop(position: int, ready_time: float) -> None:
            if position == len(path) - 1:
                on_delivered(target, ready_time)
                return
            self._forward(
                path[position],
                path[position + 1],
                ready_time,
                lambda arrival: hop(position + 1, arrival),
            )

        hop(0, self.simulator.now)

    def send_multicast(
        self,
        source: int,
        members: Sequence[int],
        on_delivered: Callable[[int, float], None],
        via: Optional[int] = None,
    ) -> None:
        """Flow one message down a multicast tree to every member.

        Dense mode (default): the tree is the shortest-path tree rooted
        at the publisher.  Sparse mode: pass ``via`` (the rendezvous
        point) — the message first travels publisher→rendezvous as a
        unicast, then flows down the shared tree rooted there.  Each
        relay forwards one copy per child link; members interior to the
        tree are delivered when the message passes them.
        """
        members = [int(m) for m in members]
        member_set = set(members)
        root = source if via is None else int(via)
        children: Dict[int, List[int]] = {}
        for u, v in self.routing.tree_edges(root, members):
            children.setdefault(u, []).append(v)

        def relay(node: int, ready_time: float) -> None:
            for child in children.get(node, []):
                def arrived(arrival: float, child: int = child) -> None:
                    if child in member_set:
                        on_delivered(child, arrival)
                    relay(child, arrival)

                self._forward(node, child, ready_time, arrived)

        def start_tree(ready_time: float) -> None:
            if root in member_set and root != source:
                on_delivered(root, ready_time)
            relay(root, ready_time)

        if root in member_set and root == source:
            now = self.simulator.now
            self.simulator.schedule(0.0, lambda: on_delivered(source, now))
        if via is None or root == source:
            relay(root, self.simulator.now)
        else:
            # Publisher -> rendezvous leg, then the shared tree.
            self.send_unicast(
                source, root, lambda _node, time: start_tree(time)
            )

    def backlog(self, now: float) -> float:
        """Total committed-but-unserved link time at ``now``.

        The sum over directed links of how much longer each stays
        busy — a cheap congestion signal: zero on an idle network,
        and growing without bound when senders outpace link capacity.
        Overload monitors sample it alongside ingress-queue depth.
        """
        return sum(
            busy - now
            for busy in self._busy_until.values()
            if busy > now
        )

    def reset_links(self) -> None:
        """Clear link occupancy and statistics (fresh run, same tables)."""
        self._busy_until.clear()
        self.log = TransferLog()
        if self.injector is not None:
            self.injector.reset()
