"""A minimal deterministic discrete-event simulation engine.

The cost model in :mod:`repro.network` charges deliveries in edge-cost
units, as the paper does.  The packet-level simulator built on this
engine goes one step further and plays deliveries out *in time*, with
per-link serialization — enough to study the latency and congestion
behaviour of unicast storms vs multicast trees, which the cost units
cannot express.

The engine is a classic event-list design: a priority queue of
``(time, sequence, callback)`` entries, with the monotone sequence
number making same-time ordering deterministic (FIFO in scheduling
order), so every simulation run is exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["DiscreteEventSimulator"]


class DiscreteEventSimulator:
    """Single-threaded event-list simulator with deterministic ties."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> None:
        """Run ``callback`` ``delay`` time units from now.

        Negative delays are rejected — time never flows backwards.
        """
        if delay < 0:
            raise ValueError(
                f"schedule: delay must be non-negative (got {delay})"
            )
        heapq.heappush(
            self._queue,
            (self._now + delay, next(self._sequence), callback),
        )

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> None:
        """Run ``callback`` at an absolute time (not before ``now``)."""
        if time < self._now:
            raise ValueError(
                f"schedule_at: time must be >= current time {self._now} "
                f"(got {time})"
            )
        heapq.heappush(
            self._queue, (time, next(self._sequence), callback)
        )

    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order; returns the final clock.

        With ``until`` set, stops before the first event beyond it and
        advances the clock to ``until`` exactly.
        """
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            self._processed += 1
            callback()
        if until is not None and until > self._now:
            self._now = until
        return self._now
