"""Packet-level replay of a pub-sub workload.

Takes a preprocessed :class:`~repro.core.broker.PubSubBroker`, a
publication workload and an arrival schedule, and plays the broker's
per-event decisions (unicast fan-out vs dense-mode multicast tree)
through the store-and-forward :class:`~repro.simulation.packet_network.
PacketNetwork`.  The output adds the dimension the paper's cost units
cannot show: per-recipient latency (including queueing) and link-level
transmission counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.broker import PubSubBroker
from ..core.distribution import DeliveryMethod
from ..core.event import Event
from .engine import DiscreteEventSimulator
from .packet_network import PacketNetwork

__all__ = ["LatencyStats", "SimulationReport", "DeliverySimulation"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> LatencyStats:
        data = np.asarray(samples, dtype=np.float64)
        if data.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=len(data),
            mean=float(data.mean()),
            p50=float(np.percentile(data, 50)),
            p95=float(np.percentile(data, 95)),
            maximum=float(data.max()),
        )


@dataclass
class SimulationReport:
    """Everything measured during one packet-level replay."""

    latency: LatencyStats
    deliveries: int
    transmissions: int
    queueing_delay: float
    max_link_queue: float
    multicasts: int
    unicasts: int
    not_sent: int
    finished_at: float

    @property
    def transmissions_per_delivery(self) -> float:
        """Link copies spent per successful delivery (lower = better)."""
        if self.deliveries == 0:
            return 0.0
        return self.transmissions / self.deliveries


class DeliverySimulation:
    """Replays a workload through the packet network."""

    def __init__(
        self,
        broker: PubSubBroker,
        transmission_time: float = 0.25,
        propagation_scale: float = 1.0,
    ):
        self.broker = broker
        self.simulator = DiscreteEventSimulator()
        self.network = PacketNetwork(
            broker.topology,
            self.simulator,
            transmission_time=transmission_time,
            propagation_scale=propagation_scale,
        )

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        inter_arrival: float = 1.0,
        arrival_times: Optional[Sequence[float]] = None,
    ) -> SimulationReport:
        """Publish the workload on a schedule and measure transport.

        Events arrive every ``inter_arrival`` time units by default;
        pass ``arrival_times`` for an explicit schedule (e.g. a burst
        of zeros to model a market-open storm).  Latency is measured
        from an event's publication instant to each recipient's
        delivery instant.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] != len(publishers):
            raise ValueError(
                "points must be (m, N) with one publisher per row"
            )
        if arrival_times is None:
            arrival_times = [i * inter_arrival for i in range(len(points))]
        if len(arrival_times) != len(points):
            raise ValueError("one arrival time per event required")

        latencies: List[float] = []
        counters = {"multicast": 0, "unicast": 0, "not_sent": 0}

        def publish(sequence: int) -> None:
            event = Event.create(
                sequence, int(publishers[sequence]), points[sequence]
            )
            match = self.broker.engine.match(event)
            q = self.broker.partition.locate(event.point)
            group_size = (
                self.broker.partition.group(q).size if q > 0 else 0
            )
            decision = self.broker.policy.decide(
                interested=match.num_subscribers,
                group_size=group_size,
                group=q,
            )
            if decision.method is DeliveryMethod.NOT_SENT:
                counters["not_sent"] += 1
                return
            published_at = self.simulator.now
            interested = set(match.subscribers)

            def delivered(node: int, time: float) -> None:
                # Only interested recipients count toward latency;
                # uninterested group members filter the message out.
                if node in interested:
                    latencies.append(time - published_at)

            if decision.method is DeliveryMethod.UNICAST:
                counters["unicast"] += 1
                for node in match.subscribers:
                    if node != event.publisher:
                        self.network.send_unicast(
                            event.publisher, node, delivered
                        )
                    else:
                        latencies.append(0.0)
            else:
                counters["multicast"] += 1
                members = self.broker.partition.group(q).members
                # Honor the broker's router mode: sparse-mode cost
                # models flow packets via the group's rendezvous point.
                via = None
                if self.broker.costs.multicast_mode == "sparse":
                    via = self.broker.costs.rendezvous_point(members)
                self.network.send_multicast(
                    event.publisher, members, delivered, via=via
                )
                if (
                    event.publisher in interested
                    and event.publisher not in members
                ):
                    latencies.append(0.0)

        for sequence, time in enumerate(arrival_times):
            self.simulator.schedule_at(
                float(time), lambda s=sequence: publish(s)
            )
        finished_at = self.simulator.run()

        return SimulationReport(
            latency=LatencyStats.from_samples(latencies),
            deliveries=len(latencies),
            transmissions=self.network.log.transmissions,
            queueing_delay=self.network.log.queueing_delay,
            max_link_queue=self.network.log.max_link_queue,
            multicasts=counters["multicast"],
            unicasts=counters["unicast"],
            not_sent=counters["not_sent"],
            finished_at=finished_at,
        )
