"""Points in the event space.

A published event is a point ``omega`` in ``Omega ⊆ R^N``.  Points are
plain tuples of floats throughout the library (cheap, hashable, and
directly usable as numpy rows); this module provides the small amount
of validation and conversion glue the rest of the code shares.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["Point", "as_point", "points_to_array"]

#: Type alias for an event-space point.
Point = Tuple[float, ...]


def as_point(coords: Sequence[float], ndim: int | None = None) -> Point:
    """Normalize a coordinate sequence into a float tuple.

    Raises ``ValueError`` when ``ndim`` is given and does not match, or
    when any coordinate is not a finite real number (events are always
    concrete values; infinities belong to subscriptions only).
    """
    point = tuple(float(x) for x in coords)
    if ndim is not None and len(point) != ndim:
        raise ValueError(f"expected {ndim} coordinates, got {len(point)}")
    if not all(np.isfinite(point)):
        raise ValueError(f"event coordinates must be finite: {point}")
    return point


def points_to_array(points: Sequence[Sequence[float]]) -> np.ndarray:
    """Stack points into a ``(len(points), N)`` float64 array."""
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError("points must form a 2-D array")
    return array
