"""Geometric primitives: half-open intervals, aligned rectangles, points.

The event space ``Omega ⊆ R^N`` is modelled exactly as in the paper:
subscriptions are axis-aligned rectangles whose sides are half-open
intervals ``(lo, hi]``, and publications are points.
"""

from .interval import FULL_LINE, Interval, parse_predicate
from .point import Point, as_point, points_to_array
from .rectangle import Rectangle, bounding_rectangle

__all__ = [
    "FULL_LINE",
    "Interval",
    "parse_predicate",
    "Point",
    "as_point",
    "points_to_array",
    "Rectangle",
    "bounding_rectangle",
]
