"""Axis-aligned rectangles in N-dimensional space.

A subscription in a content-based pub-sub system is the conjunction of
one range predicate per attribute, which is exactly an axis-aligned
("aligned", in the paper's terminology) rectangle in the event space
``Omega ⊆ R^N``.  Each side is a half-open interval ``(lo, hi]`` (see
:mod:`repro.geometry.interval`), and a published event is a point.

This module also provides the measures the S-tree packing algorithm
needs: volume, (semi-)perimeter and minimum bounding rectangles.
Because unbounded predicates are common (``volume >= 1000``), volumes
are computed against a *clipping frame* when one is supplied; an
unclipped unbounded rectangle has infinite volume, which is a legal but
rarely useful answer during packing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from .interval import Interval

__all__ = ["Rectangle", "bounding_rectangle"]


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle: the Cartesian product of half-open intervals.

    Stored as two tuples ``lows`` and ``highs`` so instances are
    hashable and safely shareable.  A rectangle is *empty* when any side
    is empty.
    """

    lows: Tuple[float, ...]
    highs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ValueError(
                f"dimension mismatch: {len(self.lows)} lows vs "
                f"{len(self.highs)} highs"
            )
        if len(self.lows) == 0:
            raise ValueError("rectangles must have at least one dimension")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_intervals(cls, intervals: Sequence[Interval]) -> Rectangle:
        """Build from one :class:`Interval` per dimension."""
        return cls(
            tuple(i.lo for i in intervals),
            tuple(i.hi for i in intervals),
        )

    @classmethod
    def from_bounds(
        cls, lows: Sequence[float], highs: Sequence[float]
    ) -> Rectangle:
        """Build from parallel low/high sequences (e.g. numpy rows)."""
        return cls(tuple(float(x) for x in lows), tuple(float(x) for x in highs))

    @classmethod
    def cube(cls, lo: float, hi: float, ndim: int) -> Rectangle:
        """The N-dimensional cube ``(lo, hi]^ndim``."""
        return cls((lo,) * ndim, (hi,) * ndim)

    @classmethod
    def full(cls, ndim: int) -> Rectangle:
        """The whole space ``R^ndim`` (every side is the full line)."""
        return cls.cube(-math.inf, math.inf, ndim)

    # -- structure -----------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions (attributes)."""
        return len(self.lows)

    def side(self, dim: int) -> Interval:
        """The interval forming dimension ``dim``."""
        return Interval(self.lows[dim], self.highs[dim])

    @property
    def sides(self) -> Tuple[Interval, ...]:
        """All per-dimension intervals."""
        return tuple(Interval(lo, hi) for lo, hi in zip(self.lows, self.highs))

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.sides)

    # -- predicates ------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when any side is empty, i.e. the set contains no points."""
        return any(hi <= lo for lo, hi in zip(self.lows, self.highs))

    @property
    def is_bounded(self) -> bool:
        """True when every endpoint is finite."""
        return all(math.isfinite(x) for x in self.lows) and all(
            math.isfinite(x) for x in self.highs
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """Point query membership: ``lo < x <= hi`` in every dimension."""
        if len(point) != self.ndim:
            raise ValueError(
                f"point has {len(point)} coordinates, rectangle has "
                f"{self.ndim} dimensions"
            )
        return all(
            lo < x <= hi for lo, hi, x in zip(self.lows, self.highs, point)
        )

    def __contains__(self, point: Sequence[float]) -> bool:
        return self.contains_point(point)

    def intersects(self, other: Rectangle) -> bool:
        """Whether the two rectangles share at least one point."""
        self._check_ndim(other)
        if self.is_empty or other.is_empty:
            return False
        return all(
            max(a_lo, b_lo) < min(a_hi, b_hi)
            for a_lo, a_hi, b_lo, b_hi in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def contains_rectangle(self, other: Rectangle) -> bool:
        """Whether ``other ⊆ self``."""
        self._check_ndim(other)
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return all(
            a_lo <= b_lo and b_hi <= a_hi
            for a_lo, a_hi, b_lo, b_hi in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    # -- set operations ----------------------------------------------------------

    def intersection(self, other: Rectangle) -> Rectangle:
        """The (possibly empty) intersection rectangle."""
        self._check_ndim(other)
        return Rectangle(
            tuple(max(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(min(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def hull(self, other: Rectangle) -> Rectangle:
        """Minimum bounding rectangle of the two (ignoring empties)."""
        self._check_ndim(other)
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Rectangle(
            tuple(min(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(max(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def clip(self, frame: Rectangle) -> Rectangle:
        """Intersect with a bounded clipping frame (alias of intersection)."""
        return self.intersection(frame)

    # -- measures -------------------------------------------------------------------

    @property
    def volume(self) -> float:
        """Product of side lengths; 0 if empty, inf if unbounded."""
        if self.is_empty:
            return 0.0
        result = 1.0
        for lo, hi in zip(self.lows, self.highs):
            result *= hi - lo
        return result

    def clipped_volume(self, frame: Rectangle) -> float:
        """Volume of the intersection with a (typically bounded) frame."""
        return self.intersection(frame).volume

    @property
    def semi_perimeter(self) -> float:
        """Sum of side lengths (the S-tree packing tie-breaker measure)."""
        if self.is_empty:
            return 0.0
        return float(sum(hi - lo for lo, hi in zip(self.lows, self.highs)))

    @property
    def center(self) -> Tuple[float, ...]:
        """Geometric center (per-dimension :attr:`Interval.center`)."""
        return tuple(side.center for side in self.sides)

    def longest_dimension(self) -> int:
        """Index of the dimension with the longest side.

        Used by S-tree binarization to pick the sweep axis; unbounded
        sides count as infinitely long, and ties resolve to the lowest
        index for determinism.
        """
        lengths = [hi - lo for lo, hi in zip(self.lows, self.highs)]
        return int(max(range(self.ndim), key=lambda d: (lengths[d], -d)))

    # -- conversions -------------------------------------------------------------

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(lows, highs)`` as float64 numpy arrays."""
        return (
            np.asarray(self.lows, dtype=np.float64),
            np.asarray(self.highs, dtype=np.float64),
        )

    def _check_ndim(self, other: Rectangle) -> None:
        if self.ndim != other.ndim:
            raise ValueError(
                f"dimension mismatch: {self.ndim} vs {other.ndim}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sides = " x ".join(
            f"({lo}, {hi}]" for lo, hi in zip(self.lows, self.highs)
        )
        return f"Rectangle[{sides}]"


def bounding_rectangle(rectangles: Iterable[Rectangle]) -> Rectangle:
    """Minimum bounding rectangle of a non-empty collection."""
    iterator = iter(rectangles)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("bounding_rectangle() requires at least one rectangle")
    for rect in iterator:
        result = result.hull(rect)
    return result
