"""Shared, rounding-safe grid-cell arithmetic.

Both regular grids in the library (the clustering grid of Appendix A.2
and the grid-bucket matcher) must answer the same two questions:

- which cells does a half-open rectangle ``(lo, hi]`` intersect, and
- which cell contains a point?

The subtlety is floating-point rounding at cell boundaries: an
endpoint one ulp away from a boundary can quantize *onto* it, which —
with exact-arithmetic formulas — silently shifts the first/last
covered cell by one and loses matches.  Correctness is preserved by
being conservative in rectangle registration: whenever a quantized
endpoint lands exactly on a boundary, the range is widened by one cell
in that direction.  Spurious extra candidates are filtered by the
exact containment test downstream; missing candidates can never be
recovered, so the asymmetry is deliberate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["covered_cell_range", "locate_cell"]


def covered_cell_range(
    lo: np.ndarray,
    hi: np.ndarray,
    frame_lo: np.ndarray,
    cell_width: np.ndarray,
    cells_per_dim: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-dimension ``[first, last]`` cell coordinates for ``(lo, hi]``.

    Cell ``i`` covers ``(frame_lo + i*w, frame_lo + (i+1)*w]``.  The
    range is computed with the *same* quantization as
    :func:`locate_cell` — ``cell(x) = ceil((x - frame_lo)/w) - 1`` —
    applied to both endpoints.  Because float division and ceil are
    monotone, every point ``p`` with ``lo < p <= hi`` then locates
    inside ``[cell(lo), cell(hi)]`` *by construction*, regardless of
    rounding; exact-arithmetic formulas (``floor`` on the low side)
    can shift by one when an endpoint sits within an ulp of a
    boundary and silently lose matches.

    The price is that an endpoint lying exactly on a boundary admits
    the neighbouring cell as a candidate even though the half-open
    overlap is empty; callers that need tight membership (the
    clustering grid) filter candidates with an exact intersection
    test, and candidate-bucket callers (the grid matcher) simply carry
    the extra candidate.
    """
    t = (lo - frame_lo) / cell_width
    u = (hi - frame_lo) / cell_width
    first = np.ceil(t).astype(int) - 1
    last = np.ceil(u).astype(int) - 1
    first = np.clip(first, 0, cells_per_dim - 1)
    last = np.clip(last, 0, cells_per_dim - 1)
    return first, np.maximum(last, first)


def locate_cell(
    point: np.ndarray,
    frame_lo: np.ndarray,
    frame_hi: np.ndarray,
    cell_width: np.ndarray,
    cells_per_dim: int,
) -> np.ndarray | None:
    """Cell coordinates of a point, or ``None`` outside the frame.

    Half-open convention: a point exactly on the frame's low edge is
    outside; one exactly on a cell's high boundary belongs to that
    cell (``ceil - 1``).
    """
    if np.any(point <= frame_lo) or np.any(point > frame_hi):
        return None
    coords = np.ceil((point - frame_lo) / cell_width).astype(int) - 1
    return np.clip(coords, 0, cells_per_dim - 1)
