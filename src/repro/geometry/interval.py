"""Half-open intervals on the real line.

The paper (Section 1) assumes without loss of generality that every
predicate range is *open on the left and closed on the right*: an
interval ``(lo, hi]`` contains a value ``x`` iff ``lo < x <= hi``.
This convention lets adjacent intervals "fit together" cleanly: the
intervals ``(0, 1]`` and ``(1, 2]`` tile ``(0, 2]`` with no overlap and
no gap, which matters for the regular grid used by the clustering
algorithms (see :mod:`repro.clustering.grid`).

Unbounded predicates (``volume >= 1000``, i.e. ``(999, +inf)``) are
represented with ``math.inf`` endpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = ["Interval", "FULL_LINE"]


@dataclass(frozen=True)
class Interval:
    """A half-open interval ``(lo, hi]``.

    An interval is *empty* when ``hi <= lo``; all empty intervals behave
    identically (they contain nothing and intersect nothing).

    Parameters
    ----------
    lo:
        Open (excluded) lower endpoint; may be ``-math.inf``.
    hi:
        Closed (included) upper endpoint; may be ``+math.inf``.
    """

    lo: float
    hi: float

    # -- basic predicates ------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the interval contains no points (``hi <= lo``)."""
        return self.hi <= self.lo

    @property
    def is_bounded(self) -> bool:
        """True when both endpoints are finite."""
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def contains(self, x: float) -> bool:
        """Whether ``x`` lies in ``(lo, hi]``."""
        return self.lo < x <= self.hi

    def __contains__(self, x: float) -> bool:
        return self.contains(x)

    # -- measures --------------------------------------------------------

    @property
    def length(self) -> float:
        """Length of the interval; 0 for empty intervals, inf if unbounded."""
        if self.is_empty:
            return 0.0
        return self.hi - self.lo

    @property
    def center(self) -> float:
        """Geometric center.

        For a half-infinite interval the finite endpoint is returned (a
        pragmatic choice used only for ordering objects during the
        S-tree sweep and for grid snapping); for a fully unbounded
        interval 0 is returned.
        """
        lo_finite = math.isfinite(self.lo)
        hi_finite = math.isfinite(self.hi)
        if lo_finite and hi_finite:
            return (self.lo + self.hi) / 2.0
        if lo_finite:
            return self.lo
        if hi_finite:
            return self.hi
        return 0.0

    # -- set operations ----------------------------------------------------

    def intersects(self, other: Interval) -> bool:
        """Whether the two half-open intervals share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return max(self.lo, other.lo) < min(self.hi, other.hi)

    def intersection(self, other: Interval) -> Interval:
        """The (possibly empty) intersection of two intervals."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: Interval) -> Interval:
        """Smallest interval containing both (ignoring empties)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def contains_interval(self, other: Interval) -> bool:
        """Whether ``other`` is a subset of this interval."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    # -- helpers -----------------------------------------------------------

    def clamp(self, lo: float, hi: float) -> Interval:
        """Intersect with the bounded interval ``(lo, hi]``."""
        return self.intersection(Interval(lo, hi))

    def split(self, x: float) -> tuple[Interval, Interval]:
        """Split at ``x`` into ``(lo, x]`` and ``(x, hi]``."""
        return Interval(self.lo, min(x, self.hi)), Interval(max(x, self.lo), self.hi)

    @staticmethod
    def hull_of(intervals: Iterable["Interval"]) -> Interval:
        """Smallest interval containing every non-empty input interval."""
        result = Interval(math.inf, -math.inf)  # canonical empty
        for interval in intervals:
            result = result.hull(interval)
        return result

    def __iter__(self) -> Iterator[float]:
        yield self.lo
        yield self.hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.lo}, {self.hi}]"


#: The whole real line, ``(-inf, +inf]`` — the wildcard predicate ``*``.
FULL_LINE = Interval(-math.inf, math.inf)


def parse_predicate(
    op: str, value: float, second: Optional[float] = None
) -> Interval:
    """Translate a comparison predicate into an :class:`Interval`.

    Supported operators mirror the paper's examples:

    - ``"=="``  → the degenerate-width interval ``(value - 0, value]``
      is *not* representable half-open; equality on a discrete domain is
      encoded as ``(value - 1ulp..]``; we use ``(prev, value]`` where
      ``prev = math.nextafter(value, -inf)``.
    - ``">"``   → ``(value, +inf]``
    - ``">="``  → ``(prev(value), +inf]``
    - ``"<"``   → ``(-inf, prev(value)]``
    - ``"<="``  → ``(-inf, value]``
    - ``"between"`` → ``(value, second]`` (requires ``second``)
    - ``"*"``   → the full line.
    """
    if op == "*":
        return FULL_LINE
    if op == "between":
        if second is None:
            raise ValueError("'between' predicate requires two endpoints")
        return Interval(value, second)
    prev = math.nextafter(value, -math.inf)
    if op == "==":
        return Interval(prev, value)
    if op == ">":
        return Interval(value, math.inf)
    if op == ">=":
        return Interval(prev, math.inf)
    if op == "<":
        return Interval(-math.inf, prev)
    if op == "<=":
        return Interval(-math.inf, value)
    raise ValueError(f"unknown predicate operator: {op!r}")
