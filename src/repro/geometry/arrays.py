"""Vectorized bulk-geometry kernels over rectangle collections.

The spatial indexes and the brute-force matcher all operate on *large*
collections of rectangles.  Rather than looping over
:class:`~repro.geometry.rectangle.Rectangle` objects, they keep two
``(k, N)`` float64 arrays — ``lows`` and ``highs`` — and use the
kernels here.  All kernels respect the library-wide half-open
``(lo, hi]`` convention.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from .rectangle import Rectangle

__all__ = [
    "rectangles_to_arrays",
    "arrays_to_rectangles",
    "contains_points_mask",
    "point_membership_mask",
    "bulk_volume",
    "bulk_centers",
    "mbr_of",
    "running_mbr_forward",
    "running_mbr_backward",
]


def rectangles_to_arrays(
    rectangles: Sequence[Rectangle],
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack rectangles into ``(k, N)`` lows/highs arrays."""
    if not rectangles:
        raise ValueError("need at least one rectangle")
    ndim = rectangles[0].ndim
    lows = np.empty((len(rectangles), ndim), dtype=np.float64)
    highs = np.empty((len(rectangles), ndim), dtype=np.float64)
    for i, rect in enumerate(rectangles):
        if rect.ndim != ndim:
            raise ValueError("all rectangles must share one dimensionality")
        lows[i] = rect.lows
        highs[i] = rect.highs
    return lows, highs


def arrays_to_rectangles(
    lows: np.ndarray, highs: np.ndarray
) -> list[Rectangle]:
    """Inverse of :func:`rectangles_to_arrays`."""
    return [
        Rectangle.from_bounds(lo_row, hi_row)
        for lo_row, hi_row in zip(lows, highs)
    ]


def point_membership_mask(
    lows: np.ndarray, highs: np.ndarray, point: Sequence[float]
) -> np.ndarray:
    """Boolean mask of the rectangles containing ``point``.

    Implements the half-open test ``lo < x <= hi`` across all ``k``
    rectangles at once; this is the brute-force matching kernel.
    """
    p = np.asarray(point, dtype=np.float64)
    return np.all((lows < p) & (p <= highs), axis=1)


def contains_points_mask(
    lows: np.ndarray, highs: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """``(k, m)`` mask: entry ``[i, j]`` iff rectangle i contains point j."""
    pts = np.asarray(points, dtype=np.float64)
    below = lows[:, None, :] < pts[None, :, :]
    above = pts[None, :, :] <= highs[:, None, :]
    return np.all(below & above, axis=2)


def bulk_volume(lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Per-rectangle volume; 0 for empty rectangles."""
    extents = np.clip(highs - lows, 0.0, None)
    return np.prod(extents, axis=-1)


def bulk_centers(lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Per-rectangle geometric centers, mirroring :meth:`Interval.center`.

    Bounded sides use the midpoint; half-infinite sides use their
    finite endpoint; fully unbounded sides use 0.  (These centers feed
    the S-tree binarization sweep ordering, so the convention only
    needs to be monotone-sensible, not metrically exact.)
    """
    lo_finite = np.isfinite(lows)
    hi_finite = np.isfinite(highs)
    centers = np.zeros_like(lows)
    both = lo_finite & hi_finite
    centers[both] = (lows[both] + highs[both]) / 2.0
    only_lo = lo_finite & ~hi_finite
    centers[only_lo] = lows[only_lo]
    only_hi = ~lo_finite & hi_finite
    centers[only_hi] = highs[only_hi]
    return centers


def mbr_of(lows: np.ndarray, highs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Minimum bounding rectangle of all rows, as ``(lo, hi)`` vectors."""
    return lows.min(axis=0), highs.max(axis=0)


def running_mbr_forward(
    lows: np.ndarray, highs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Prefix MBRs: row ``i`` bounds rectangles ``0..i`` inclusive.

    Used by the binarization sweep to evaluate every split point in one
    pass: the MBR of the left part of a split after row ``q-1`` is the
    forward running MBR at ``q-1``.
    """
    return np.minimum.accumulate(lows, axis=0), np.maximum.accumulate(
        highs, axis=0
    )


def running_mbr_backward(
    lows: np.ndarray, highs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Suffix MBRs: row ``i`` bounds rectangles ``i..k-1`` inclusive."""
    rev_lo = np.minimum.accumulate(lows[::-1], axis=0)[::-1]
    rev_hi = np.maximum.accumulate(highs[::-1], axis=0)[::-1]
    return np.ascontiguousarray(rev_lo), np.ascontiguousarray(rev_hi)
