"""Durable subscriber sessions: journaled cursors, leases, reconnects.

A :class:`SubscriberSession` is the broker-side memory of one
subscriber's connection.  It owns a **delivery cursor** — an LSN into
the :class:`~repro.sessions.log.RetainedEventLog` below which every
event this session matched has been settled (acked by the application
or quarantined to the dead-letter queue).  The cursor advances *only*
on settlement, never on send, which is what makes delivery
session-durable: a subscriber that crashes mid-stream finds its
cursor exactly where its acks stopped, and the catch-up replayer
(:mod:`repro.sessions.replay`) re-derives everything owed from
``[cursor, head)``.

Lifecycle::

    register ──▶ LIVE ──detach()──▶ DETACHED ──resume()──▶ CATCHING_UP
                  ▲                     │                      │
                  └──── replay converges┼──────────────────────┘
                                        │ lease expires
                                        ▼
                              demoted to ephemeral
                        (outstanding events expired, retention
                         hold released, cursor meaningless)

Every lifecycle transition and every cursor advance is journaled
through the broker's :class:`~repro.durability.journal.BrokerJournal`
(``SESSION`` / ``CURSOR`` records), so the cursor table ships to
replication standbys via the existing ``on_record`` tap, lands in
snapshots, and replays on crash recovery — sessions survive broker
failover with no machinery of their own.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..telemetry.base import Telemetry, or_null
from .log import RetainedEventLog

__all__ = ["SessionState", "SubscriberSession", "SessionManager"]


class SessionState(str, enum.Enum):
    """Where one session sits in its lifecycle."""

    LIVE = "live"                # attached, receiving events as published
    CATCHING_UP = "catching-up"  # attached, replaying the reconnect gap
    DETACHED = "detached"        # disconnected, lease ticking


class SubscriberSession:
    """Broker-side state of one durable subscriber connection."""

    def __init__(
        self,
        session_id: str,
        subscriber: int,
        subscription_ids: Iterable[int],
        lease: float,
        cursor: int = 0,
    ):
        if lease <= 0:
            raise ValueError(
                f"session lease must be positive (got {lease})"
            )
        self.session_id = str(session_id)
        self.subscriber = int(subscriber)
        self.subscription_ids: FrozenSet[int] = frozenset(
            int(s) for s in subscription_ids
        )
        self.lease = float(lease)
        self.state = SessionState.LIVE
        #: False once the lease expired: the session no longer holds
        #: retention, accrues no delivery obligations, and any resume
        #: is best-effort from the live frontier.
        self.durable = True
        self.detached_at: Optional[float] = None
        #: Everything the session matched below this LSN is settled.
        self.cursor = int(cursor)
        #: Log frontier the session has observed (cursor's resting
        #: point while nothing is outstanding).
        self.frontier = int(cursor)
        #: lsn → sequence of matched-but-unsettled events.
        self.outstanding: Dict[int, int] = {}
        self._lsn_by_seq: Dict[int, int] = {}
        #: Sequences settled at the application layer (ack or DLQ);
        #: the replay pump's skip set.
        self.done: set = set()
        #: Where the catch-up pump reads next (only meaningful while
        #: CATCHING_UP).
        self.replay_pos = int(cursor)
        # lifetime counters
        self.delivered = 0
        self.deadlettered = 0
        self.replayed = 0

    # -- cursor arithmetic ---------------------------------------------------

    def _recompute_cursor(self) -> bool:
        new = min(self.outstanding) if self.outstanding else self.frontier
        if new > self.cursor:
            self.cursor = new
            return True
        return False

    def charge(self, lsn: int, sequence: int, new_head: int) -> None:
        """One matched event becomes this session's obligation."""
        self.outstanding[int(lsn)] = int(sequence)
        self._lsn_by_seq[int(sequence)] = int(lsn)
        self.frontier = int(new_head)

    def observe(self, new_head: int) -> bool:
        """A non-matching event passed; idle cursors ride the frontier."""
        self.frontier = max(self.frontier, int(new_head))
        return self._recompute_cursor()

    def settle(self, sequence: int) -> Optional[bool]:
        """Remove one obligation; returns whether the cursor advanced
        (``None`` when the sequence was not outstanding)."""
        lsn = self._lsn_by_seq.pop(int(sequence), None)
        if lsn is None:
            return None
        del self.outstanding[lsn]
        self.done.add(int(sequence))
        return self._recompute_cursor()

    def rewind_to(self, sequence: int) -> None:
        """Point the replay pump back at an outstanding event."""
        lsn = self._lsn_by_seq.get(int(sequence))
        if lsn is not None:
            self.replay_pos = min(self.replay_pos, lsn)

    def is_outstanding(self, sequence: int) -> bool:
        return int(sequence) in self._lsn_by_seq

    @property
    def low_water(self) -> int:
        """The LSN retention must preserve for this session."""
        return min(self.outstanding) if self.outstanding else self.cursor

    @property
    def lag(self) -> int:
        """Bytes of retained log between cursor and frontier."""
        return max(0, self.frontier - self.cursor)

    def lease_deadline(self) -> Optional[float]:
        if self.detached_at is None:
            return None
        return self.detached_at + self.lease

    def to_state(self) -> Dict:
        state = {
            "subscriber": self.subscriber,
            "sids": sorted(self.subscription_ids),
            "state": self.state.value,
            "durable": self.durable,
            "cursor": self.cursor,
            "lease": self.lease,
        }
        if self.detached_at is not None:
            state["detached_at"] = float(self.detached_at)
        return state


class SessionManager:
    """The broker's session table: registration, leases, cursors.

    Parameters
    ----------
    log:
        The broker's :class:`~repro.sessions.log.RetainedEventLog`.
    journal:
        Optional :class:`~repro.durability.journal.BrokerJournal`;
        when present every lifecycle change and cursor advance is
        journaled (and therefore shipped/snapshotted/recovered).
    clock:
        Injected time source (the simulator's ``now``).
    default_lease:
        Lease granted to sessions that don't specify one: how long a
        detached session may hold retention before being demoted.
    """

    def __init__(
        self,
        log: RetainedEventLog,
        journal=None,
        clock: Optional[Callable[[], float]] = None,
        default_lease: float = 500.0,
        telemetry: Optional[Telemetry] = None,
    ):
        if default_lease <= 0:
            raise ValueError(
                f"default_lease must be positive (got {default_lease})"
            )
        self.log = log
        self.journal = journal
        self.clock = clock or (lambda: 0.0)
        self.default_lease = float(default_lease)
        self.telemetry = or_null(telemetry)
        self.sessions: Dict[str, SubscriberSession] = {}
        self.lease_expirations = 0

    # -- journaling ----------------------------------------------------------

    def _journal_session(self, body: Dict) -> None:
        if self.journal is not None:
            self.journal.log_session({**body, "t": float(self.clock())})

    def _journal_cursor(self, session: SubscriberSession) -> None:
        if self.journal is not None:
            self.journal.log_cursor(session.session_id, session.cursor)

    def _count(self, name: str, help: str) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter(f"sessions.{name}", help=help).inc()

    # -- lifecycle -----------------------------------------------------------

    def register(
        self,
        session_id: str,
        subscriber: int,
        subscription_ids: Iterable[int],
        lease: Optional[float] = None,
    ) -> SubscriberSession:
        """Create a durable session; its cursor starts at the live head."""
        session_id = str(session_id)
        if session_id in self.sessions:
            raise ValueError(
                f"session {session_id!r} is already registered"
            )
        session = SubscriberSession(
            session_id,
            subscriber,
            subscription_ids,
            lease=lease if lease is not None else self.default_lease,
            cursor=self.log.head,
        )
        self.sessions[session_id] = session
        self._journal_session(
            {
                "action": "register",
                "id": session_id,
                "subscriber": session.subscriber,
                "sids": sorted(session.subscription_ids),
                "lease": session.lease,
                "cursor": session.cursor,
            }
        )
        self._count("registered", "durable sessions registered")
        if self.telemetry.enabled:
            self.telemetry.start_span(
                "session-register",
                session=session_id,
                subscriber=session.subscriber,
            ).finish()
        return session

    def get(self, session_id: str) -> SubscriberSession:
        try:
            return self.sessions[str(session_id)]
        except KeyError:
            raise ValueError(f"unknown session {session_id!r}") from None

    def detach(self, session_id: str) -> SubscriberSession:
        """The subscriber disconnected; start the lease clock."""
        session = self.get(session_id)
        if session.state is SessionState.DETACHED:
            return session
        session.state = SessionState.DETACHED
        session.detached_at = float(self.clock())
        self._journal_session({"action": "detach", "id": session.session_id})
        self._count("detached", "session detaches")
        return session

    def resume(self, session_id: str) -> SubscriberSession:
        """The subscriber reconnected; catch-up replay owns it now."""
        session = self.get(session_id)
        session.state = SessionState.CATCHING_UP
        session.detached_at = None
        session.replay_pos = session.cursor
        self._journal_session({"action": "resume", "id": session.session_id})
        self._count("resumed", "session resumes")
        if self.telemetry.enabled:
            self.telemetry.start_span(
                "session-resume",
                session=session.session_id,
                lag=session.lag,
            ).finish()
        return session

    def mark_live(self, session_id: str) -> SubscriberSession:
        """Replay converged: the session rides the live path again."""
        session = self.get(session_id)
        session.state = SessionState.LIVE
        return session

    def expire_leases(
        self, now: float
    ) -> List[Tuple[SubscriberSession, List[int]]]:
        """Demote every detached session whose lease ran out.

        Returns ``(session, expired_sequences)`` pairs: the events the
        demoted session was owed become *expired-ephemeral* (the
        caller accounts them), and the session stops holding
        retention.  The demotion is journaled, not silent.
        """
        demoted: List[Tuple[SubscriberSession, List[int]]] = []
        for session in self.sessions.values():
            deadline = session.lease_deadline()
            if (
                not session.durable
                or deadline is None
                or now < deadline
            ):
                continue
            expired = sorted(session.outstanding.values())
            session.outstanding.clear()
            session._lsn_by_seq.clear()
            session.durable = False
            session.cursor = session.frontier = self.log.head
            self._journal_session(
                {"action": "expire", "id": session.session_id}
            )
            self.lease_expirations += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "sessions.lease_expired",
                    help="sessions demoted to ephemeral by lease expiry",
                ).inc()
            demoted.append((session, expired))
        return demoted

    # -- the publish hook ----------------------------------------------------

    def on_publish(
        self, event, match
    ) -> Tuple[int, List[SubscriberSession], List[SubscriberSession]]:
        """Retain one published event and charge the sessions it matched.

        Returns ``(lsn, charged, live)``: the event's retained-log
        LSN, every *durable* session it matched (their ledger
        obligation), and the subset currently LIVE (deliver now; the
        rest pick it up via catch-up replay).  Non-durable sessions
        are never charged — ephemeral delivery is best-effort by
        definition.
        """
        lsn = self.log.append(event)
        head = self.log.head
        matched_sids = set(match.subscription_ids)
        charged: List[SubscriberSession] = []
        live: List[SubscriberSession] = []
        for session in self.sessions.values():
            if not session.durable:
                session.observe(head)
                continue
            if session.subscription_ids & matched_sids:
                session.charge(lsn, event.sequence, head)
                charged.append(session)
                if session.state is SessionState.LIVE:
                    live.append(session)
            else:
                if session.observe(head):
                    self._journal_cursor(session)
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "sessions.outstanding",
                help="matched-but-unsettled (event, session) obligations",
            ).set(
                sum(len(s.outstanding) for s in self.sessions.values())
            )
        return lsn, charged, live

    # -- settlement ----------------------------------------------------------

    def ack(self, session_id: str, sequence: int) -> bool:
        """The application consumed one event; advance the cursor.

        Returns False when the sequence was not outstanding (already
        settled, or never charged) — callers treat that as a no-op,
        not an error, because transport-level dedup makes redundant
        acks routine.
        """
        session = self.get(session_id)
        advanced = session.settle(sequence)
        if advanced is None:
            return False
        session.delivered += 1
        self._count("acked", "application-level delivery acks")
        if advanced:
            self._journal_cursor(session)
        return True

    def discard(self, session_id: str, sequence: int) -> bool:
        """Settle one event *without* delivery (dead-letter path)."""
        session = self.get(session_id)
        advanced = session.settle(sequence)
        if advanced is None:
            return False
        session.deadlettered += 1
        if advanced:
            self._journal_cursor(session)
        return True

    # -- retention interface -------------------------------------------------

    def low_water(self) -> Optional[int]:
        """The smallest LSN any durable session still needs."""
        marks = [
            s.low_water for s in self.sessions.values() if s.durable
        ]
        return min(marks) if marks else None

    # -- durability ----------------------------------------------------------

    def to_state(self) -> Dict:
        """The cursor table, snapshot-ready (sorted, JSON-safe)."""
        return {
            sid: self.sessions[sid].to_state()
            for sid in sorted(self.sessions)
        }

    def restore(self, state: Dict) -> None:
        """Rebuild the session table from a recovered cursor table.

        Recovered sessions come back DETACHED (their subscribers must
        resume and replay regardless of what state the crash caught
        them in); outstanding obligations are *not* restored — the
        catch-up replayer re-derives them by re-matching
        ``[cursor, head)``, which is the whole point of journaling
        cursors instead of per-event obligations.
        """
        for session_id, entry in sorted(state.items()):
            session = SubscriberSession(
                session_id,
                int(entry["subscriber"]),
                entry["sids"],
                lease=float(entry.get("lease", self.default_lease)),
                cursor=int(entry.get("cursor", 0)),
            )
            session.durable = bool(entry.get("durable", True))
            session.state = SessionState.DETACHED
            session.detached_at = float(
                entry.get("detached_at", self.clock())
            )
            session.frontier = max(session.cursor, self.log.base)
            self.sessions[session_id] = session
