"""Durable subscriber sessions: at-least-once delivery across crashes.

The live path delivers whatever matches *right now*; this package
makes that guarantee survive the subscriber going away.  Four pieces:

* :mod:`~repro.sessions.log` — the :class:`RetainedEventLog`, an
  LSN-addressable WAL of published events per home broker, bounded by
  count/age retention that always yields to the cursor low-water mark.
* :mod:`~repro.sessions.session` — :class:`SubscriberSession` (a
  journaled delivery cursor advanced only on ack, a lease, a
  lifecycle) and the :class:`SessionManager` that owns the table.
* :mod:`~repro.sessions.replay` — the :class:`CatchupReplayer`, which
  re-matches the reconnect gap ``[cursor, head)`` with the paper's
  matching engine and streams it through the ordinary reliable
  transport under a token-bucket budget.
* :mod:`~repro.sessions.dlq` — the :class:`DeadLetterQueue`, where
  poison deliveries land (with structured reason codes) instead of
  pinning cursors forever.

The ledger invariant the chaos harness checks: every event a durable
session matched is exactly one of **delivered** (acked), **dead-
lettered**, or **expired** with the lease of the ephemeral-demoted
session that was owed it — and never delivered twice.
"""

from .dlq import DeadLetterEntry, DeadLetterQueue
from .log import RetainedEvent, RetainedEventLog, RetentionPolicy
from .replay import CatchupReplayer
from .session import SessionManager, SessionState, SubscriberSession

__all__ = [
    "RetainedEvent",
    "RetainedEventLog",
    "RetentionPolicy",
    "SessionManager",
    "SessionState",
    "SubscriberSession",
    "CatchupReplayer",
    "DeadLetterEntry",
    "DeadLetterQueue",
]
