"""Dead-letter quarantine: where undeliverable events go instead of looping.

At-least-once delivery has a failure mode worse than loss: a *poison*
event the subscriber rejects (or times out on) every single time.
Without a pressure-relief valve the retry machinery redelivers it
forever, the session's cursor pins behind it, and retention can never
reclaim the log prefix it sits in.

The :class:`DeadLetterQueue` is that valve.  When the transport
exhausts its retry budget for a session-charged event, the delivery is
**quarantined**: recorded here with a structured reason code (from
:class:`~repro.faults.reliable.FailureReason` — ``timeout``, ``nack``
or ``breaker-open``), and *settled* on the session via
``SessionManager.discard`` so the cursor advances past it.  The
ledger invariant stays closed — every matched event is exactly one of
delivered, dead-lettered, or expired-with-its-ephemeral-session — and
nothing is silently dropped: entries remain inspectable (``repro
sessions dlq``) and re-drivable once the operator fixes the consumer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..telemetry.base import Telemetry, or_null

__all__ = ["DeadLetterEntry", "DeadLetterQueue"]


@dataclass
class DeadLetterEntry:
    """One quarantined delivery (mutable: redrive bumps ``attempts``)."""

    sequence: int
    session_id: str
    subscriber: int
    #: Structured failure class: ``timeout``, ``nack`` or ``breaker-open``.
    reason_code: str
    #: Human-readable failure detail from the transport.
    reason: str
    quarantined_at: float
    #: Redrive attempts made since quarantine.
    attempts: int = 0


class DeadLetterQueue:
    """FIFO quarantine of poison deliveries, inspectable and re-drivable."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.clock = clock or (lambda: 0.0)
        self.telemetry = or_null(telemetry)
        self._entries: List[DeadLetterEntry] = []
        self.quarantined = 0
        self.redriven = 0

    def __len__(self) -> int:
        return len(self._entries)

    def quarantine(
        self,
        sequence: int,
        session_id: str,
        subscriber: int,
        reason,
    ) -> DeadLetterEntry:
        """Record one exhausted delivery; returns the entry.

        ``reason`` may be a plain string or a
        :class:`~repro.faults.reliable.FailureReason`; the structured
        code is taken from the latter when present.
        """
        entry = DeadLetterEntry(
            sequence=int(sequence),
            session_id=str(session_id),
            subscriber=int(subscriber),
            reason_code=str(getattr(reason, "code", "timeout")),
            reason=str(reason),
            quarantined_at=float(self.clock()),
        )
        self._entries.append(entry)
        self.quarantined += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "sessions.deadlettered",
                help="deliveries quarantined after retry exhaustion",
                reason=entry.reason_code,
            ).inc()
        return entry

    def entries(self) -> List[DeadLetterEntry]:
        """Current quarantine contents, oldest first (a copy)."""
        return list(self._entries)

    def by_reason(self) -> Dict[str, int]:
        """Entry counts per structured reason code."""
        counts: Dict[str, int] = {}
        for entry in self._entries:
            counts[entry.reason_code] = counts.get(entry.reason_code, 0) + 1
        return dict(sorted(counts.items()))

    def redrive(
        self, handler: Callable[[DeadLetterEntry], bool]
    ) -> List[DeadLetterEntry]:
        """Re-attempt every quarantined delivery through ``handler``.

        ``handler(entry) -> bool`` performs the redelivery; ``True``
        removes the entry from quarantine, ``False`` re-queues it with
        ``attempts`` incremented.  Returns the successfully redriven
        entries, in quarantine order.
        """
        pending = self._entries
        self._entries = []
        succeeded: List[DeadLetterEntry] = []
        for entry in pending:
            if handler(entry):
                succeeded.append(entry)
                self.redriven += 1
                if self.telemetry.enabled:
                    self.telemetry.counter(
                        "sessions.redriven",
                        help="quarantined deliveries successfully re-driven",
                    ).inc()
            else:
                entry.attempts += 1
                self._entries.append(entry)
        return succeeded
