"""Catch-up replay: streaming the reconnect gap without drowning the live path.

When a durable session resumes, everything it is owed lies in the
retained log between its delivery cursor and the head.  The
:class:`CatchupReplayer` walks that gap in small batches, re-matching
each retained event against the session's subscriptions with the same
matching engine the live path uses (the paper's matcher, reused — see
``docs/paper-mapping.md``), and streams the hits through the ordinary
:class:`~repro.faults.reliable.ReliableTransport`.  Replay traffic is
therefore retried, deduplicated, breaker-gated and dead-letterable
exactly like live traffic — there is no second delivery machine.

Two properties keep replay from becoming its own overload event:

* **Flow control.**  Each replayed send spends a token from an
  optional :class:`~repro.overload.admission.TokenBucket`.  When the
  bucket runs dry the pump rewinds to the event it could not afford
  and reschedules itself for when the next token accrues, so a big
  backlog drains at a bounded rate instead of bursting into the
  network alongside live publishes.
* **Self-termination.**  The pump reschedules itself only while its
  session is still catching up.  The moment a read at ``replay_pos``
  comes back empty the gap is closed: the session is marked LIVE and
  the pump stops — no periodic timer survives convergence, which is
  what lets the discrete-event simulator's run loop terminate.

Events the session already settled (acked or dead-lettered) are
skipped via its ``done`` set; events delivered live but not yet acked
are re-sent and deduplicated by the transport's receiver-side dedup,
so the subscriber application never observes a duplicate.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from ..telemetry.base import Telemetry, or_null
from .session import SessionManager, SessionState, SubscriberSession

__all__ = ["CatchupReplayer"]


class CatchupReplayer:
    """Pumps ``[cursor, head)`` back to resumed sessions, budgeted.

    Parameters
    ----------
    manager:
        The broker's :class:`~repro.sessions.session.SessionManager`.
    transport:
        The :class:`~repro.faults.reliable.ReliableTransport` replayed
        events are sent through (same instance as the live path).
    source:
        Node id the replayed unicasts originate from (the home broker).
    simulator:
        The discrete-event simulator; the pump schedules itself on it.
    rematch:
        ``event -> set[subscription_id]`` — re-evaluates a retained
        event against the *current* subscription table.  Sessions see
        only the intersection with their own subscription ids.
    bucket:
        Optional token bucket bounding the replay send rate.
    batch:
        Max events examined per pump invocation.
    pump_interval:
        Delay between pump invocations while catching up.
    """

    def __init__(
        self,
        manager: SessionManager,
        transport,
        source: int,
        simulator,
        rematch: Callable[[object], Set[int]],
        bucket=None,
        batch: int = 8,
        pump_interval: float = 5.0,
        telemetry: Optional[Telemetry] = None,
    ):
        if batch < 1:
            raise ValueError(f"batch must be >= 1 (got {batch})")
        if pump_interval <= 0:
            raise ValueError(
                f"pump_interval must be positive (got {pump_interval})"
            )
        self.manager = manager
        self.transport = transport
        self.source = int(source)
        self.simulator = simulator
        self.rematch = rematch
        self.bucket = bucket
        self.batch = int(batch)
        self.pump_interval = float(pump_interval)
        self.telemetry = or_null(telemetry)
        self._pumping: Set[str] = set()
        self.replay_sends = 0
        self.throttled = 0
        self.convergences = 0

    # -- public --------------------------------------------------------------

    def start(self, session: SubscriberSession) -> None:
        """Begin (or continue) replaying for one catching-up session.

        Idempotent: a session already being pumped is not double-
        scheduled, so callers may invoke this on every demotion signal
        without bookkeeping.
        """
        session_id = session.session_id
        if session_id in self._pumping:
            return
        self._pumping.add(session_id)
        self.simulator.schedule(0.0, lambda: self._pump(session_id))

    @property
    def active(self) -> int:
        """How many sessions are currently being pumped."""
        return len(self._pumping)

    # -- the pump ------------------------------------------------------------

    def _lag_gauge(self, session: SubscriberSession, lag: int) -> None:
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "sessions.replay_lag",
                help="retained-log bytes between replay position and head",
                session=session.session_id,
            ).set(lag)

    def _pump(self, session_id: str) -> None:
        session = self.manager.sessions.get(session_id)
        if (
            session is None
            or not session.durable
            or session.state is not SessionState.CATCHING_UP
        ):
            # Detached again, lease-expired, or already live: stop.
            self._pumping.discard(session_id)
            return
        sent = 0
        while sent < self.batch:
            events = self.manager.log.read(
                session.replay_pos, max_events=1
            )
            if not events:
                # Gap closed: everything retained up to the head has
                # been examined.  The session rejoins the live path.
                self._pumping.discard(session_id)
                self.manager.mark_live(session_id)
                self.convergences += 1
                self._lag_gauge(session, 0)
                if self.telemetry.enabled:
                    self.telemetry.event(
                        "replay-converged",
                        session=session_id,
                        replayed=session.replayed,
                    )
                return
            event = events[0]
            session.replay_pos = event.end_lsn
            if event.sequence in session.done:
                continue
            matched = self.rematch(event) & session.subscription_ids
            if not matched:
                continue
            if not session.is_outstanding(event.sequence):
                # Post-recovery: the obligation table was rebuilt empty
                # and this event predates the crash — re-charge it so
                # settlement advances the cursor past it.
                session.charge(
                    event.lsn,
                    event.sequence,
                    max(session.frontier, event.end_lsn),
                )
            if self.bucket is not None and not self.bucket.try_acquire(
                self.simulator.now
            ):
                # Budget exhausted: rewind to this event and come back
                # when the next token has accrued.
                session.replay_pos = event.lsn
                self.throttled += 1
                deficit = max(
                    0.0, 1.0 - self.bucket.tokens_at(self.simulator.now)
                )
                delay = max(deficit / self.bucket.rate, 1e-9)
                self.simulator.schedule(
                    delay, lambda: self._pump(session_id)
                )
                self._lag_gauge(session, session.frontier - session.replay_pos)
                return
            self.transport.publish(
                event.sequence, self.source, [session.subscriber]
            )
            session.replayed += 1
            self.replay_sends += 1
            sent += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "sessions.replay_sends",
                    help="retained events re-sent by catch-up replay",
                ).inc()
        self._lag_gauge(session, session.frontier - session.replay_pos)
        self.simulator.schedule(
            self.pump_interval, lambda: self._pump(session_id)
        )
