"""The retained event log: LSN-addressable publish history per broker.

Durable subscriber sessions need the home broker to remember what it
published: a session that reconnects after a crash replays the gap
``[cursor, head)`` from somewhere, and that somewhere is this log — a
:class:`~repro.durability.wal.WriteAheadLog` of ``EVENT`` records, one
per published event, reusing the durability layer's framing, CRC
protection, LSN arithmetic and torn-tail repair wholesale.

Retention is the interesting part.  The log is bounded three ways —
by count (keep at most ``max_events``), by age (drop events older
than ``max_age``) — but both bounds yield to the **cursor low-water
mark**: the smallest delivery cursor over all durable sessions.  No
retention pass may drop a record a live cursor still points at, so
:meth:`RetainedEventLog.enforce_retention` truncates at
``min(count_cut, age_cut, low_water)`` — and truncating at *exactly*
the low-water LSN keeps that record, because an LSN names a record's
first byte and :meth:`~repro.durability.wal.WriteAheadLog.
truncate_prefix` drops only the bytes strictly below it.  A session
that detaches holds retention hostage only until its lease expires
and demotes it to ephemeral (see :mod:`repro.sessions.session`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..durability.wal import MemoryWAL, RecordKind, WalRecord, WriteAheadLog
from ..telemetry.base import Telemetry, or_null

__all__ = ["RetainedEvent", "RetentionPolicy", "RetainedEventLog"]


@dataclass(frozen=True)
class RetainedEvent:
    """One decoded EVENT record: the event plus where it sits."""

    lsn: int
    #: LSN of the byte just past this record (the next read position).
    end_lsn: int
    sequence: int
    publisher: int
    point: Tuple[float, ...]
    #: Simulated time the event was retained (the record's clock stamp).
    time: float
    deadline: Optional[float] = None


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds on the retained log (both optional, low-water always wins)."""

    #: Keep at most this many events (oldest dropped first).
    max_events: Optional[int] = None
    #: Drop events retained more than this many time units ago.
    max_age: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(
                f"RetentionPolicy: max_events must be >= 1 "
                f"(got {self.max_events})"
            )
        if self.max_age is not None and self.max_age <= 0:
            raise ValueError(
                f"RetentionPolicy: max_age must be positive "
                f"(got {self.max_age})"
            )


class RetainedEventLog:
    """Published events as an LSN-addressable, retention-bounded WAL."""

    def __init__(
        self,
        wal: Optional[WriteAheadLog] = None,
        clock: Optional[Callable[[], float]] = None,
        policy: Optional[RetentionPolicy] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.wal = wal if wal is not None else MemoryWAL(clock=clock)
        if clock is not None:
            self.wal.clock = clock
        self.policy = policy or RetentionPolicy()
        self.telemetry = or_null(telemetry)
        self.appended = 0
        self.truncated_bytes = 0
        self.retention_passes = 0

    # -- writing -------------------------------------------------------------

    def append(self, event) -> int:
        """Retain one published event; returns its LSN."""
        body = {
            "seq": int(event.sequence),
            "publisher": int(event.publisher),
            "point": [float(x) for x in event.point],
        }
        if getattr(event, "deadline", None) is not None:
            body["deadline"] = float(event.deadline)
        lsn = self.wal.append(RecordKind.EVENT, body)
        self.appended += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "sessions.events_retained",
                help="published events appended to the retained log",
            ).inc()
        return lsn

    # -- reading -------------------------------------------------------------

    @property
    def head(self) -> int:
        """LSN one past the newest retained byte (the live frontier)."""
        return self.wal.end_lsn

    @property
    def base(self) -> int:
        """LSN of the oldest retained byte."""
        return self.wal.base_lsn

    def _decode(self, record: WalRecord) -> Optional[RetainedEvent]:
        if record.kind is not RecordKind.EVENT:
            return None
        body = record.body
        try:
            return RetainedEvent(
                lsn=record.lsn,
                end_lsn=record.end_lsn,
                sequence=int(body["seq"]),
                publisher=int(body["publisher"]),
                point=tuple(float(x) for x in body["point"]),
                time=float(body.get("t", 0.0)),
                deadline=(
                    float(body["deadline"])
                    if body.get("deadline") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def read(
        self, from_lsn: int, max_events: Optional[int] = None
    ) -> List[RetainedEvent]:
        """Retained events at or past ``from_lsn``, oldest first.

        ``from_lsn`` below the retained base reads from the physical
        start (retention guarantees no durable cursor ever falls below
        the base, so this only happens for already-settled positions);
        reading at the head returns ``[]``.  Non-EVENT or undecodable
        records are skipped, never raised on.
        """
        out: List[RetainedEvent] = []
        for record in self.wal.scan(from_lsn=from_lsn).records:
            event = self._decode(record)
            if event is None:
                continue
            out.append(event)
            if max_events is not None and len(out) >= max_events:
                break
        return out

    def retained(self) -> int:
        """How many events the log physically holds right now."""
        return sum(
            1
            for record in self.wal.scan().records
            if record.kind is RecordKind.EVENT
        )

    # -- recovery ------------------------------------------------------------

    def recover(self) -> int:
        """Repair a torn tail after a crash; returns bytes discarded.

        Same contract as the durability WAL: scan stops at the first
        damaged record and the physical tail past it is truncated, so
        replay never serves garbage.
        """
        removed = self.wal.repair()
        if removed and self.telemetry.enabled:
            self.telemetry.counter(
                "sessions.log_truncated_bytes",
                help="torn/corrupt retained-log bytes discarded on recovery",
            ).inc(removed)
        return removed

    # -- retention -----------------------------------------------------------

    def retention_cut(
        self, now: float, cursor_low_water: Optional[int] = None
    ) -> int:
        """The LSN the next retention pass would truncate at.

        The count/age bounds each nominate a cut; the cursor low-water
        mark caps both.  The record *at* the returned LSN survives.
        """
        records = self.wal.scan().records
        cut = self.base
        if (
            self.policy.max_events is not None
            and len(records) > self.policy.max_events
        ):
            cut = max(cut, records[len(records) - self.policy.max_events].lsn)
        if self.policy.max_age is not None:
            horizon = now - self.policy.max_age
            for record in records:
                if float(record.body.get("t", 0.0)) >= horizon:
                    break
                cut = max(cut, record.end_lsn)
        if cursor_low_water is not None:
            cut = min(cut, int(cursor_low_water))
        return max(cut, self.base)

    def enforce_retention(
        self, now: float, cursor_low_water: Optional[int] = None
    ) -> int:
        """Truncate the prefix the policy allows; returns bytes dropped."""
        cut = self.retention_cut(now, cursor_low_water)
        dropped = self.wal.truncate_prefix(cut)
        self.truncated_bytes += dropped
        self.retention_passes += 1
        if self.telemetry.enabled and dropped:
            self.telemetry.counter(
                "sessions.retention_truncated_bytes",
                help="retained-log bytes reclaimed by retention",
            ).inc(dropped)
        return dropped
