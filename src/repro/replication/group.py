"""The replicated broker group: primary, standbys, failover.

One :class:`ReplicatedBrokerGroup` manages one home broker's replica
set.  The **primary** runs the actual matching/routing service and
journals every mutation through a :class:`~repro.durability.journal.
BrokerJournal`; the journal's taps feed a :class:`~repro.replication.
shipping.LogShipper` which streams the WAL to each **standby**'s
:class:`~repro.replication.shipping.StandbyReplica`.  A deterministic
heartbeat :class:`~repro.replication.detector.FailureDetector` per
standby watches the primary; all timing lives on the injected
discrete-event simulator, so suspicion — and therefore failover — is
a pure function of the seed.

Failover is the durability stack re-run on somebody else's disk: the
highest-ranked live standby increments the group **epoch**, runs the
existing :func:`~repro.durability.recovery.recover` /
:func:`~repro.durability.recovery.restore_broker` pipeline over *its
own shipped WAL and snapshots*, re-registers as the home broker
(via the :class:`~repro.replication.epoch.EpochDirectory`, which the
reliable transport consults to re-route in-flight retries), and
starts journaling + shipping to the surviving standbys.  The recovery
digest of each takeover is kept as a determinism witness.

A deposed primary that is merely *partitioned* (not dead) keeps
heartbeating and shipping with its stale epoch after the partition
heals; the first reply it provokes carries the higher epoch and
**fences** it — :class:`~repro.replication.epoch.EpochState` demotes
it to ``FENCED`` and every subsequent write admission check at that
node fails.  That rejection counter is the split-brain proof the
chaos verifier asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..durability.journal import BrokerJournal
from ..durability.recovery import RecoveredState, recover, restore_broker
from ..durability.snapshot import MemorySnapshotStore, SnapshotStore
from ..durability.wal import MemoryWAL, WriteAheadLog
from ..telemetry.base import Telemetry, or_null
from .detector import FailureDetector, HeartbeatConfig
from .epoch import EpochDirectory, EpochState, ReplicaRole
from .shipping import LogShipper, ShippingConfig, StandbyReplica

__all__ = ["ReplicationStats", "ReplicatedBrokerGroup"]


@dataclass
class ReplicationStats:
    """What the replica group did during one run."""

    failovers: int = 0
    #: Per-takeover recovery digests — the determinism witnesses.
    takeover_digests: List[str] = field(default_factory=list)
    #: Simulated time from last primary contact to takeover complete.
    failover_durations: List[float] = field(default_factory=list)
    #: Messages rejected as stale-epoch across all replicas.
    stale_rejections: int = 0
    #: Write admissions refused at fenced / non-primary replicas.
    fenced_writes: int = 0
    heartbeats_sent: int = 0
    #: The group epoch when the run ended.
    final_epoch: int = 0


class ReplicatedBrokerGroup:
    """One primary, N ranked standbys, and the machinery between them.

    ``send(source, target, payload)`` puts one message dict on the
    (simulated) wire; whatever transport the caller wires up must
    eventually call :meth:`deliver` on the receiving end — or drop the
    message, which the protocol tolerates.  With ``send=None``
    messages are delivered synchronously and losslessly, which is what
    the unit tests want.

    ``alive(node, time)`` is the ground-truth liveness oracle (the
    chaos harness backs it with the fault injector); the *detector*
    still decides suspicion from heartbeat silence alone, so a
    partitioned-but-alive primary is suspected exactly like a dead one
    — and later fenced instead of resurrected.
    """

    def __init__(
        self,
        broker,
        primary: int,
        standbys: Sequence[int],
        simulator,
        send: Optional[Callable[[int, int, Dict], None]] = None,
        wal_factory: Optional[Callable[[int], WriteAheadLog]] = None,
        store_factory: Optional[Callable[[int], SnapshotStore]] = None,
        shipping: Optional[ShippingConfig] = None,
        heartbeat: Optional[HeartbeatConfig] = None,
        alive: Optional[Callable[[int, float], bool]] = None,
        checkpoint_every: int = 64,
        breakers=None,
        telemetry: Optional[Telemetry] = None,
        on_takeover: Optional[
            Callable[[RecoveredState, int, int, float], None]
        ] = None,
    ):
        if not standbys:
            raise ValueError(
                "ReplicatedBrokerGroup: at least one standby is required"
            )
        ranked = [int(s) for s in standbys]
        if int(primary) in ranked or len(set(ranked)) != len(ranked):
            raise ValueError(
                "ReplicatedBrokerGroup: standbys must be distinct and "
                f"exclude the primary (primary={primary}, "
                f"standbys={ranked})"
            )
        self.broker = broker
        self.primary = int(primary)
        self.ranked = ranked
        self.members = [self.primary] + ranked
        self.simulator = simulator
        self._send = send
        self.shipping = shipping or ShippingConfig()
        self.heartbeat = heartbeat or HeartbeatConfig()
        self.alive = alive or (lambda node, time: True)
        self.checkpoint_every = checkpoint_every
        self.breakers = breakers
        self.telemetry = or_null(telemetry)
        self.on_takeover = on_takeover
        self.directory = EpochDirectory()
        self.epoch = 0
        self.stats = ReplicationStats()
        self.horizon: Optional[float] = None

        wal_factory = wal_factory or (
            lambda node: MemoryWAL(clock=lambda: self.simulator.now)
        )
        store_factory = store_factory or (
            lambda node: MemorySnapshotStore()
        )
        self.wals: Dict[int, WriteAheadLog] = {
            node: wal_factory(node) for node in self.members
        }
        self.stores: Dict[int, SnapshotStore] = {
            node: store_factory(node) for node in self.members
        }
        self.epochs: Dict[int, EpochState] = {
            node: EpochState(
                node=node,
                role=(
                    ReplicaRole.PRIMARY
                    if node == self.primary
                    else ReplicaRole.STANDBY
                ),
            )
            for node in self.members
        }
        self.replicas: Dict[int, StandbyReplica] = {
            node: StandbyReplica(
                self.epochs[node],
                self.wals[node],
                self.stores[node],
                telemetry=telemetry,
            )
            for node in ranked
        }
        self.detectors: Dict[int, FailureDetector] = {
            node: FailureDetector(self.heartbeat, now=self.simulator.now)
            for node in ranked
        }
        self._shippers: Dict[int, LogShipper] = {}
        self.journal = self._bind_primary(self.primary)

    # -- wiring --------------------------------------------------------------

    def _bind_primary(self, node: int) -> BrokerJournal:
        """Attach journal + shipper for ``node`` as the acting primary."""
        epoch_state = self.epochs[node]
        shipper = LogShipper(
            epoch_state,
            [
                s
                for s in self.members
                if self.epochs[s].role is ReplicaRole.STANDBY
            ],
            send=lambda standby, payload, source=node: self._transmit(
                source, standby, payload
            ),
            wal=self.wals[node],
            snapshots=self.stores[node],
            config=self.shipping,
            breakers=self.breakers,
            telemetry=self.telemetry,
        )
        self._shippers[node] = shipper
        journal = BrokerJournal(
            self.broker,
            self.wals[node],
            self.stores[node],
            checkpoint_every=self.checkpoint_every,
            telemetry=self.telemetry,
        )
        journal.on_record = (
            lambda lsn, kind, body, s=shipper: self._on_record(
                s, lsn, kind, body
            )
        )
        journal.on_checkpoint = (
            lambda snapshot, truncate_lsn, s=shipper: self._on_checkpoint(
                s, snapshot, truncate_lsn
            )
        )
        self.broker.attach_journal(journal)
        return journal

    def _on_record(self, shipper: LogShipper, lsn, kind, body) -> None:
        shipper.record(lsn, kind, body)
        if shipper.due:
            shipper.flush(self.simulator.now)

    def _on_checkpoint(self, shipper, snapshot, truncate_lsn) -> None:
        shipper.checkpoint(snapshot, truncate_lsn)
        # Push checkpoints eagerly: a standby holding the snapshot can
        # take over even if it missed every incremental batch since.
        shipper.flush(self.simulator.now)

    def _transmit(self, source: int, target: int, payload: Dict) -> None:
        payload = {**payload, "from": int(source)}
        if self._send is None:
            self.deliver(target, payload, self.simulator.now)
        else:
            self._send(int(source), int(target), payload)

    # -- the receive path ----------------------------------------------------

    def deliver(self, node: int, payload: Dict, time: float) -> None:
        """One replication message arrived at ``node`` at ``time``."""
        node = int(node)
        if not self.alive(node, time):
            return
        kind = payload.get("type")
        sender = int(payload.get("from", -1))
        if kind == "heartbeat":
            self._heartbeat_arrived(node, sender, payload["epoch"], time)
        elif kind in ("batch", "catchup"):
            self._shipping_arrived(node, sender, payload, time)
        elif kind == "ack":
            self._ack_arrived(node, payload, time)
        elif kind == "resync":
            self._resync_arrived(node, payload, time)
        elif kind == "fence":
            self._fenced(node, payload["epoch"])
        else:
            raise ValueError(
                f"ReplicatedBrokerGroup: unknown payload type {kind!r}"
            )

    def _heartbeat_arrived(
        self, node: int, sender: int, epoch: int, time: float
    ) -> None:
        if not self.epochs[node].admit(epoch):
            self._transmit(
                node,
                sender,
                {"type": "fence", "epoch": self.epochs[node].epoch},
            )
            return
        detector = self.detectors.get(node)
        if detector is not None:
            detector.heard(time)

    def _shipping_arrived(
        self, node: int, sender: int, payload: Dict, time: float
    ) -> None:
        replica = self.replicas.get(node)
        if replica is None:
            # Shipped data aimed at a node that is no longer a standby
            # (e.g. it took over); its epoch state answers for it.
            if not self.epochs[node].admit(payload["epoch"]):
                self._transmit(
                    node,
                    sender,
                    {"type": "fence", "epoch": self.epochs[node].epoch},
                )
            return
        reply = replica.receive(payload)
        if reply is not None and reply.get("type") != "fence":
            detector = self.detectors.get(node)
            if detector is not None:
                detector.heard(time)
        if reply is not None:
            self._transmit(node, sender, reply)

    def _ack_arrived(self, node: int, payload: Dict, time: float) -> None:
        epoch_state = self.epochs[node]
        if not epoch_state.admit(payload["epoch"]):
            return  # an old standby acking an even older stream
        shipper = self._shippers.get(node)
        if shipper is not None and epoch_state.is_primary:
            shipper.ack(
                payload["node"], payload["applied"], payload["end_lsn"], time
            )

    def _resync_arrived(self, node: int, payload: Dict, time: float) -> None:
        epoch_state = self.epochs[node]
        if not epoch_state.admit(payload["epoch"]):
            return
        shipper = self._shippers.get(node)
        if shipper is not None and epoch_state.is_primary:
            shipper.force_catchup(payload["node"], time)

    def _fenced(self, node: int, epoch: int) -> None:
        was_primary = self.epochs[node].is_primary
        self.epochs[node].adopt(epoch)
        if was_primary and self.telemetry.enabled:
            self.telemetry.counter(
                "replication.fenced",
                help="ex-primaries fenced by a higher epoch",
            ).inc()

    # -- the clock loop ------------------------------------------------------

    def start(self, horizon: float) -> None:
        """Begin heartbeating/shipping ticks until ``horizon``.

        The horizon bounds the periodic loop so the discrete-event
        queue drains once the workload is done; pick it past the last
        scheduled arrival plus settling slack.
        """
        if horizon <= self.simulator.now:
            raise ValueError(
                f"start: horizon {horizon} is not in the future "
                f"(now {self.simulator.now})"
            )
        self.horizon = float(horizon)
        self._schedule_tick(self.simulator.now)

    def _schedule_tick(self, now: float) -> None:
        nxt = now + self.heartbeat.interval
        if self.horizon is not None and nxt <= self.horizon:
            self.simulator.schedule_at(nxt, self._tick)

    def _tick(self) -> None:
        now = self.simulator.now
        # Every node that *believes* it is primary beats and ships —
        # including a partitioned zombie, whose stale epoch is how it
        # eventually learns the truth.
        for node, shipper in self._shippers.items():
            epoch_state = self.epochs[node]
            if not epoch_state.is_primary or not self.alive(node, now):
                continue
            for standby in shipper.standbys:
                self._transmit(
                    node,
                    standby,
                    {"type": "heartbeat", "epoch": epoch_state.epoch},
                )
                self.stats.heartbeats_sent += 1
            shipper.flush(now)
        candidate = self._candidate(now)
        if candidate is not None and self.detectors[candidate].check(now):
            self.takeover(now)
        self._schedule_tick(now)

    def _candidate(self, now: float) -> Optional[int]:
        """Highest-ranked standby eligible to take over right now."""
        for node in self.ranked:
            if self.epochs[node].role is ReplicaRole.STANDBY and self.alive(
                node, now
            ):
                return node
        return None

    # -- failover ------------------------------------------------------------

    def mark_dead(self, node: int) -> None:
        """Ground truth: ``node`` is permanently gone (fail-stop kill)."""
        self.epochs[int(node)].role = ReplicaRole.DEAD

    def takeover(self, now: float) -> bool:
        """Promote the best live standby; returns False if none exists.

        The promotion is the crash-recovery pipeline pointed at the
        standby's own storage: recover → restore_broker → re-journal,
        then advance the epoch and the directory so clients (and
        in-flight retries) re-route.  The caller learns the recovered
        state via ``on_takeover`` and re-hands unacked deliveries to
        the transport.
        """
        candidate = self._candidate(now)
        if candidate is None:
            return False
        old = self.primary
        silence = now - self.detectors[candidate].last_heard
        del self.detectors[candidate]
        del self.replicas[candidate]
        state = recover(
            self.wals[candidate],
            self.stores[candidate],
            telemetry=self.telemetry,
        )
        restore_broker(self.broker, state, telemetry=self.telemetry)
        self.epoch += 1
        epoch_state = self.epochs[candidate]
        epoch_state.role = ReplicaRole.PRIMARY
        epoch_state.epoch = self.epoch
        self.directory.advance(old, candidate, self.epoch)
        self.primary = candidate
        self.journal = self._bind_primary(candidate)
        self.journal.rearm(state)
        # Surviving standbys now watch the new primary; its first
        # heartbeat lands next tick, well inside the fresh timeout.
        for node in self._shippers[candidate].standbys:
            self.detectors[node] = FailureDetector(self.heartbeat, now=now)
        self.stats.failovers += 1
        self.stats.failover_durations.append(float(silence))
        self.stats.takeover_digests.append(state.digest())
        if self.telemetry.enabled:
            self.telemetry.counter(
                "replication.failovers", help="takeovers completed"
            ).inc()
            self.telemetry.gauge(
                "replication.epoch", help="current group epoch"
            ).set(self.epoch)
            self.telemetry.histogram(
                "replication.failover_duration",
                help="silence from last primary contact to takeover",
            ).observe(float(silence))
            self.telemetry.event(
                "failover", old=old, new=candidate, epoch=self.epoch
            )
        if self.on_takeover is not None:
            self.on_takeover(state, old, candidate, now)
        return True

    # -- admission & reporting ----------------------------------------------

    def write_allowed(self, node: int) -> bool:
        """Whether a client write at ``node`` may proceed (fencing check).

        The write is stamped with the group's current epoch; only the
        acting primary admits it.  A fenced ex-primary — or any node
        that merely used to matter — rejects, and the rejection is
        counted as the split-brain proof.
        """
        allowed = self.epochs[int(node)].admit_write(self.epoch)
        if not allowed and self.telemetry.enabled:
            self.telemetry.counter(
                "replication.fenced_writes",
                help="writes rejected by epoch fencing",
            ).inc()
        return allowed

    @property
    def shipper(self) -> LogShipper:
        """The acting primary's shipper."""
        return self._shippers[self.primary]

    def shipping_stats(self):
        """Shipping counters summed over every (ex-)primary's shipper."""
        from .shipping import ShippingStats

        total = ShippingStats()
        for shipper in self._shippers.values():
            s = shipper.stats
            total.batches += s.batches
            total.ops_shipped += s.ops_shipped
            total.acks += s.acks
            total.catchups += s.catchups
            total.backpressure_skips += s.backpressure_skips
            total.breaker_failures += s.breaker_failures
            total.trimmed_ops += s.trimmed_ops
        return total

    def finalize_stats(self) -> ReplicationStats:
        """Fold per-replica counters into the group stats and return them."""
        self.stats.stale_rejections = sum(
            e.stale_rejected for e in self.epochs.values()
        )
        self.stats.fenced_writes = sum(
            e.writes_rejected for e in self.epochs.values()
        )
        self.stats.final_epoch = self.epoch
        return self.stats
