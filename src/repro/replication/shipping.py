"""WAL log shipping: the primary's journal, replayed onto standbys.

The replication stream is a totally ordered sequence of **ops**, each
mirroring one thing the primary's :class:`~repro.durability.journal.
BrokerJournal` did to its storage:

- ``("append", lsn, kind, body)`` — one WAL record, body verbatim
  (clock stamp included), so the standby's ``wal.append`` reproduces
  the record *byte for byte*;
- ``("snapshot", payload)`` — a checkpoint's snapshot dict;
- ``("truncate", lsn)`` — the matching WAL prefix cut.

Ops are indexed from 0 over the stream's lifetime.  The primary-side
:class:`LogShipper` buffers them and ships **cumulative batches**: each
flush sends every op past the standby's last acknowledged index.  Acks
are cumulative too, so the protocol is trivially idempotent and
loss-tolerant — a lost batch or a lost ack just means the next flush
resends a suffix the standby has already applied, and the standby
skips the overlap.  No per-op acknowledgement, no windows, no
reordering logic: the discrete-event network may drop or delay, and
the stream still converges.

When a standby falls so far behind that its unshipped suffix was
trimmed from the buffer (or its lag exceeds ``catchup_lag``), the
shipper switches to **anti-entropy**: it sends the primary's entire
physical WAL (:meth:`~repro.durability.wal.WriteAheadLog.copy_out`)
plus the newest snapshot, the standby installs both wholesale, and
incremental shipping resumes from there.  This is the replication
analogue of the paper's precomputation reuse — the standby receives
the *outputs* (snapshot = table + partition assignment) rather than
re-deriving them from subscription history.

Backpressure rides the overload subsystem's circuit breakers: a
standby whose breaker is open is skipped entirely (its lag keeps
growing; catch-up heals it later), and repeated flushes with no ack
progress trip the breaker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..durability.snapshot import Snapshot, SnapshotStore
from ..durability.wal import RecordKind, WriteAheadLog
from ..telemetry.base import Telemetry, or_null
from .epoch import EpochState

__all__ = ["ShippingConfig", "ShippingStats", "LogShipper", "StandbyReplica"]


@dataclass(frozen=True)
class ShippingConfig:
    """Knobs of the shipping protocol (times are simulated)."""

    #: Flush as soon as this many ops are buffered.
    batch_ops: int = 16
    #: Also flush on this cadence, so a quiet stream still converges.
    flush_interval: float = 10.0
    #: Keep at most this many ops buffered; trimming past a standby's
    #: ack forces that standby onto the catch-up path.
    retain_ops: int = 512
    #: A standby lagging more than this many ops gets a catch-up even
    #: if its suffix is still buffered (cheaper than a huge batch).
    catchup_lag: int = 256
    #: Consecutive no-progress flushes to one standby before its
    #: breaker records a failure.
    failure_after: int = 3

    def __post_init__(self) -> None:
        if self.batch_ops < 1:
            raise ValueError(
                f"ShippingConfig: batch_ops must be >= 1 "
                f"(got {self.batch_ops})"
            )
        if self.flush_interval <= 0.0:
            raise ValueError(
                f"ShippingConfig: flush_interval must be positive "
                f"(got {self.flush_interval})"
            )
        if self.retain_ops < self.batch_ops:
            raise ValueError(
                f"ShippingConfig: retain_ops ({self.retain_ops}) must be "
                f">= batch_ops ({self.batch_ops})"
            )
        if self.catchup_lag < 1:
            raise ValueError(
                f"ShippingConfig: catchup_lag must be >= 1 "
                f"(got {self.catchup_lag})"
            )
        if self.failure_after < 1:
            raise ValueError(
                f"ShippingConfig: failure_after must be >= 1 "
                f"(got {self.failure_after})"
            )


@dataclass
class ShippingStats:
    """What the shipper did during one run."""

    batches: int = 0
    ops_shipped: int = 0
    acks: int = 0
    catchups: int = 0
    backpressure_skips: int = 0
    breaker_failures: int = 0
    trimmed_ops: int = 0


class LogShipper:
    """Primary-side half of the shipping protocol.

    ``send(standby, payload)`` hands one message dict to the transport
    (the group wires it to the packet network); payloads carry the
    sender's epoch and are self-describing via ``payload["type"]``.
    """

    def __init__(
        self,
        epoch: EpochState,
        standbys: Sequence[int],
        send: Callable[[int, Dict], None],
        wal: WriteAheadLog,
        snapshots: SnapshotStore,
        config: Optional[ShippingConfig] = None,
        breakers=None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.epoch = epoch
        self.standbys = [int(s) for s in standbys]
        self.send = send
        self.wal = wal
        self.snapshots = snapshots
        self.config = config or ShippingConfig()
        self.breakers = breakers
        self.telemetry = or_null(telemetry)
        self.stats = ShippingStats()
        self._ops: List[Tuple] = []
        #: Stream index of ``_ops[0]``.
        self._base_index = 0
        #: node → highest cumulative op index acked.
        self.acked: Dict[int, int] = {s: 0 for s in self.standbys}
        #: node → WAL end LSN the standby reported at its last ack.
        self.acked_lsn: Dict[int, int] = {s: 0 for s in self.standbys}
        self._no_progress: Dict[int, int] = {s: 0 for s in self.standbys}

    # -- journal taps --------------------------------------------------------

    @property
    def next_index(self) -> int:
        """Stream index the next op will get (= total ops ever)."""
        return self._base_index + len(self._ops)

    def record(self, lsn: int, kind: RecordKind, body: Dict) -> None:
        """``BrokerJournal.on_record`` tap: buffer one append op."""
        self._ops.append(("append", int(lsn), int(kind), body))

    def checkpoint(self, snapshot: Snapshot, truncate_lsn: int) -> None:
        """``BrokerJournal.on_checkpoint`` tap: snapshot + prefix cut."""
        self._ops.append(("snapshot", snapshot.to_dict()))
        self._ops.append(("truncate", int(truncate_lsn)))

    def pending_ops(self) -> int:
        """Ops buffered past the *slowest* standby's ack (diagnostics)."""
        if not self.standbys:
            return 0
        return self.next_index - min(
            self.acked[s] for s in self.standbys
        )

    def lag(self, standby: int) -> int:
        """How many ops ``standby`` is behind the stream head."""
        return self.next_index - self.acked[int(standby)]

    @property
    def due(self) -> bool:
        """Whether buffered volume alone warrants a flush."""
        return any(
            self.lag(s) >= self.config.batch_ops for s in self.standbys
        )

    # -- the wire ------------------------------------------------------------

    def flush(self, now: float) -> int:
        """Ship every standby its unacked suffix; returns messages sent.

        Cumulative and unconditional per standby: anything past the
        standby's ack goes out (again, if need be) — resends after
        loss are just flushes.  Standbys with zero lag cost nothing.
        """
        sent = 0
        for standby in self.standbys:
            if self._flush_one(standby, now):
                sent += 1
        self._trim()
        return sent

    def _flush_one(self, standby: int, now: float) -> bool:
        acked = self.acked[standby]
        lag = self.next_index - acked
        if lag <= 0:
            return False
        if self.breakers is not None and not self.breakers.allow(
            standby, now
        ):
            self.stats.backpressure_skips += 1
            return False
        behind_buffer = acked < self._base_index
        if behind_buffer or lag > self.config.catchup_lag:
            self._send_catchup(standby, now)
        else:
            ops = self._ops[acked - self._base_index :]
            self.send(
                standby,
                {
                    "type": "batch",
                    "epoch": self.epoch.epoch,
                    "start_index": acked,
                    "ops": list(ops),
                },
            )
            self.stats.batches += 1
            self.stats.ops_shipped += len(ops)
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "replication.batches",
                    help="log-shipping batches sent",
                ).inc()
                self.telemetry.counter(
                    "replication.ops_shipped",
                    help="ops shipped (incl. resends)",
                ).inc(len(ops))
        self._note_no_progress(standby, now)
        return True

    def _send_catchup(self, standby: int, now: float) -> None:
        base_lsn, data = self.wal.copy_out()
        snapshot = self.snapshots.latest()
        self.send(
            standby,
            {
                "type": "catchup",
                "epoch": self.epoch.epoch,
                # After installing, the standby is current up to here.
                "start_index": self.next_index,
                "base_lsn": base_lsn,
                "wal": data,
                "snapshot": snapshot.to_dict() if snapshot else None,
            },
        )
        self.stats.catchups += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "replication.catchups",
                help="anti-entropy catch-up transfers",
            ).inc()

    def force_catchup(self, standby: int, now: float) -> None:
        """Ship a full catch-up now (a standby asked to resync)."""
        self._send_catchup(int(standby), now)

    def _note_no_progress(self, standby: int, now: float) -> None:
        self._no_progress[standby] += 1
        if (
            self.breakers is not None
            and self._no_progress[standby] >= self.config.failure_after
        ):
            self.breakers.record_failure(standby, now)
            self.stats.breaker_failures += 1
            self._no_progress[standby] = 0

    def _trim(self) -> None:
        """Drop buffered ops no standby still needs (capped by retain)."""
        keep_from = min(
            (self.acked[s] for s in self.standbys),
            default=self.next_index,
        )
        # Enforce the retention cap even past a laggard's ack; the
        # laggard falls off the incremental path onto catch-up.
        floor = self.next_index - self.config.retain_ops
        keep_from = max(keep_from, floor)
        cut = keep_from - self._base_index
        if cut > 0:
            del self._ops[:cut]
            self._base_index = keep_from
            self.stats.trimmed_ops += cut

    def ack(self, standby: int, applied: int, end_lsn: int, now: float) -> None:
        """A standby's cumulative acknowledgement arrived."""
        standby = int(standby)
        if standby not in self.acked:
            return
        self.stats.acks += 1
        if applied > self.acked[standby]:
            self.acked[standby] = int(applied)
            self.acked_lsn[standby] = int(end_lsn)
            self._no_progress[standby] = 0
            if self.breakers is not None:
                self.breakers.record_success(standby, now)
        if self.telemetry.enabled:
            self.telemetry.counter(
                "replication.acks", help="shipping acks received"
            ).inc()
            self.telemetry.gauge(
                "replication.lag_records",
                help="ops the standby is behind the primary",
                standby=standby,
            ).set(self.lag(standby))


class StandbyReplica:
    """Receiver-side half: applies the op stream onto a local WAL/store.

    ``applied_index`` counts ops applied from the stream's beginning;
    cumulative batches overlapping it are deduplicated op by op, and a
    batch starting *past* it (prefix lost in transit) is refused — the
    ack tells the shipper where to resend from.
    """

    def __init__(
        self,
        epoch: EpochState,
        wal: WriteAheadLog,
        store: SnapshotStore,
        telemetry: Optional[Telemetry] = None,
    ):
        self.epoch = epoch
        self.wal = wal
        self.store = store
        self.telemetry = or_null(telemetry)
        self.applied_index = 0
        self.batches_applied = 0
        self.catchups_applied = 0
        #: Epoch whose op-stream indexing ``applied_index`` refers to.
        #: A takeover starts a fresh stream at index 0; incremental
        #: batches from a newer epoch are refused with a ``resync``
        #: until a catch-up re-bases us onto the new stream.
        self.stream_epoch = self.epoch.epoch

    def _ack(self) -> Dict:
        return {
            "type": "ack",
            "node": self.epoch.node,
            "epoch": self.epoch.epoch,
            "applied": self.applied_index,
            "end_lsn": self.wal.end_lsn,
        }

    def _fence(self) -> Dict:
        return {
            "type": "fence",
            "node": self.epoch.node,
            "epoch": self.epoch.epoch,
        }

    def receive(self, payload: Dict) -> Optional[Dict]:
        """Handle one shipping message; returns the reply (or ``None``)."""
        kind = payload.get("type")
        if kind == "batch":
            return self.receive_batch(
                payload["epoch"], payload["start_index"], payload["ops"]
            )
        if kind == "catchup":
            return self.receive_catchup(
                payload["epoch"],
                payload["start_index"],
                payload["base_lsn"],
                payload["wal"],
                payload.get("snapshot"),
            )
        raise ValueError(f"StandbyReplica: unknown payload type {kind!r}")

    def receive_batch(
        self, epoch: int, start_index: int, ops: Sequence[Tuple]
    ) -> Optional[Dict]:
        if not self.epoch.admit(epoch):
            return self._fence()
        if epoch != self.stream_epoch:
            return {
                "type": "resync",
                "node": self.epoch.node,
                "epoch": self.epoch.epoch,
            }
        if start_index > self.applied_index:
            # A gap: the suffix we need was lost.  Ack what we have so
            # the shipper's cumulative resend covers the hole.
            return self._ack()
        offset = self.applied_index - start_index
        for op in list(ops)[offset:]:
            self._apply(op)
            self.applied_index += 1
        self.batches_applied += 1
        return self._ack()

    def receive_catchup(
        self,
        epoch: int,
        start_index: int,
        base_lsn: int,
        data: bytes,
        snapshot_payload: Optional[Dict],
    ) -> Optional[Dict]:
        if not self.epoch.admit(epoch):
            return self._fence()
        if epoch == self.stream_epoch and start_index < self.applied_index:
            # Stale catch-up from before acks we already sent; applying
            # it would rewind the WAL below what we acked.
            return self._ack()
        self.wal.copy_in(base_lsn, data)
        if snapshot_payload is not None:
            self.store.save(Snapshot.from_dict(snapshot_payload))
        self.applied_index = int(start_index)
        self.stream_epoch = int(epoch)
        self.catchups_applied += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "replication.catchups_applied",
                help="catch-up transfers installed on standbys",
            ).inc()
        return self._ack()

    def invalidate_stream(self) -> None:
        """Drop off the incremental stream (local WAL was damaged and
        scrubbed, so ``applied_index`` no longer describes its bytes);
        the next batch draws a ``resync`` and a catch-up re-bases us."""
        self.stream_epoch = -1

    def _apply(self, op: Tuple) -> None:
        tag = op[0]
        if tag == "append":
            _, lsn, kind, body = op
            got = self.wal.append(RecordKind(kind), body)
            if got != lsn:
                raise RuntimeError(
                    f"replica WAL diverged: primary lsn {lsn}, "
                    f"local lsn {got}"
                )
        elif tag == "snapshot":
            self.store.save(Snapshot.from_dict(op[1]))
        elif tag == "truncate":
            self.wal.truncate_prefix(int(op[1]))
        else:
            raise ValueError(f"StandbyReplica: unknown op tag {tag!r}")
