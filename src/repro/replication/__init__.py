"""Broker replication: WAL shipping, epoch fencing, failover.

PR 4's durability stack lets a crashed home broker restart *itself*
from its own WAL.  This package removes the "itself": the primary
ships its journal to ranked standbys (:mod:`~repro.replication.
shipping`), a clock-injected heartbeat detector watches it
(:mod:`~repro.replication.detector`), and on suspected death the best
live standby replays its shipped WAL through the existing recovery
pipeline and takes over, fenced against the old primary by monotonic
epochs (:mod:`~repro.replication.epoch`).  The orchestration lives in
:mod:`~repro.replication.group`; the chaos-harness integration — with
the per-event ledger proving exactly-once across takeovers — is
:class:`repro.faults.FailoverChaosSimulation`.
"""

from .detector import FailureDetector, HeartbeatConfig
from .epoch import EpochDirectory, EpochState, ReplicaRole
from .group import ReplicatedBrokerGroup, ReplicationStats
from .shipping import (
    LogShipper,
    ShippingConfig,
    ShippingStats,
    StandbyReplica,
)

__all__ = [
    "FailureDetector",
    "HeartbeatConfig",
    "EpochDirectory",
    "EpochState",
    "ReplicaRole",
    "ReplicatedBrokerGroup",
    "ReplicationStats",
    "LogShipper",
    "ShippingConfig",
    "ShippingStats",
    "StandbyReplica",
]
