"""A deterministic heartbeat failure detector.

The primary beats on a fixed simulated-time cadence; each standby
tracks the last instant it heard *anything* attributable to the
primary (a heartbeat, a shipped batch — any traffic proves liveness)
and declares suspicion when the silence exceeds a timeout.  Both the
cadence and the timeout live on the injected simulation clock, so the
same seed produces the same suspicion instant every run — takeover
timing is part of the determinism contract, not noise.

The timeout should comfortably exceed the heartbeat interval times
the retry latency of the underlying network (the default is ~3
intervals plus slack); too tight and transient loss triggers a
spurious failover, which is *safe* (epoch fencing demotes the old
primary) but costs a takeover.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HeartbeatConfig", "FailureDetector"]


@dataclass(frozen=True)
class HeartbeatConfig:
    """Cadence and patience of the failure detector (simulated time)."""

    #: How often the primary sends a heartbeat.
    interval: float = 25.0
    #: Silence longer than this means the primary is suspected dead.
    timeout: float = 80.0

    def __post_init__(self) -> None:
        if self.interval <= 0.0:
            raise ValueError(
                f"HeartbeatConfig: interval must be positive "
                f"(got {self.interval})"
            )
        if self.timeout <= self.interval:
            raise ValueError(
                f"HeartbeatConfig: timeout must exceed the heartbeat "
                f"interval — equal values suspect a healthy primary "
                f"between beats (got timeout={self.timeout} vs "
                f"interval={self.interval})"
            )


class FailureDetector:
    """Tracks one peer's liveness from observed traffic."""

    def __init__(self, config: HeartbeatConfig, now: float = 0.0):
        self.config = config
        self.last_heard = float(now)
        self.suspected = False

    def heard(self, time: float) -> None:
        """Any message from the peer resets the silence clock."""
        if time > self.last_heard:
            self.last_heard = float(time)
        self.suspected = False

    def check(self, now: float) -> bool:
        """Whether the peer is suspected dead at ``now``."""
        self.suspected = (now - self.last_heard) > self.config.timeout
        return self.suspected

    @property
    def silence_deadline(self) -> float:
        """The earliest instant a check would turn suspicious."""
        return self.last_heard + self.config.timeout
