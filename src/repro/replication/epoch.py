"""Epoch fencing: the replication group's split-brain guard.

Every configuration of a replicated broker group — who is primary,
who are standbys — is stamped with a monotonically increasing
**epoch**.  A failover increments it; every replication message
(heartbeat, shipped batch, catch-up) and every client write carries
the sender's epoch, and receivers apply one rule:

- a message stamped with a *lower* epoch than the receiver's is
  **stale** and rejected outright (the sender is an ex-primary that
  has not yet learned it was deposed);
- a message stamped with a *higher* epoch is proof of a completed
  failover: the receiver adopts the new epoch, and if it believed
  itself primary it is **fenced** — demoted to
  :attr:`ReplicaRole.FENCED`, after which it must reject every write
  addressed to it.

This is the standard fencing-token construction: because epochs only
move forward and a takeover happens at exactly one configuration
boundary, a zombie ex-primary can never double-deliver an event or
accept a subscribe after its successor took over — its writes carry a
dead epoch and bounce.

:class:`EpochDirectory` is the client-side half: a resolver mapping a
fenced node to its live successor, consulted by the reliable
transport so retries addressed to a deposed primary re-route instead
of burning their retry budget (and the target's circuit breaker) on a
node that will never answer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["ReplicaRole", "EpochState", "EpochDirectory"]


class ReplicaRole(enum.Enum):
    """What one replica currently is, from its own point of view."""

    PRIMARY = "primary"    # serves writes, ships its WAL
    STANDBY = "standby"    # applies shipped records, ready to take over
    FENCED = "fenced"      # ex-primary that saw a higher epoch; read-only
    DEAD = "dead"          # permanently killed (fail-stop)


@dataclass
class EpochState:
    """One replica's view of the group epoch, with the fencing rule."""

    node: int
    epoch: int = 0
    role: ReplicaRole = ReplicaRole.STANDBY
    #: Messages rejected as stale (sender's epoch below ours).
    stale_rejected: int = 0
    #: Writes rejected because this replica is fenced or not primary.
    writes_rejected: int = 0

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(
                f"EpochState: epoch must be >= 0 (got {self.epoch})"
            )

    @property
    def is_primary(self) -> bool:
        return self.role is ReplicaRole.PRIMARY

    @property
    def alive(self) -> bool:
        return self.role is not ReplicaRole.DEAD

    def admit(self, epoch: int) -> bool:
        """Apply the fencing rule to one incoming message.

        Returns False (and counts the rejection) for a stale epoch;
        otherwise adopts any higher epoch — fencing this replica if it
        believed itself primary — and returns True.
        """
        if epoch < self.epoch:
            self.stale_rejected += 1
            return False
        if epoch > self.epoch:
            self.adopt(epoch)
        return True

    def adopt(self, epoch: int) -> None:
        """Learn of a newer configuration; a primary gets fenced by it."""
        if epoch <= self.epoch:
            return
        if self.role is ReplicaRole.PRIMARY:
            self.role = ReplicaRole.FENCED
        self.epoch = epoch

    def admit_write(self, epoch: int) -> bool:
        """Whether a client write stamped ``epoch`` may mutate state here.

        Only a live primary at the same (or older — the client learns
        the newer epoch from the reply) epoch accepts; everything else
        is a post-epoch write against a deposed or never-primary node.
        """
        if self.role is not ReplicaRole.PRIMARY or epoch > self.epoch:
            self.writes_rejected += 1
            return False
        return True


class EpochDirectory:
    """node → live successor, following fencing chains.

    The group updates the directory at each takeover
    (:meth:`advance`); the reliable transport consults
    :meth:`resolve` before every (re)transmission, so a message
    addressed to a fenced ex-primary is re-addressed to whoever holds
    the role now.  Nodes with no entry resolve to themselves —
    ordinary subscribers are never redirected.
    """

    def __init__(self) -> None:
        self._successor: Dict[int, int] = {}
        self.epoch = 0

    def advance(self, old: int, new: int, epoch: int) -> None:
        """Record that ``new`` superseded ``old`` at ``epoch``."""
        old, new = int(old), int(new)
        if epoch <= self.epoch:
            raise ValueError(
                f"EpochDirectory: epoch must advance (have {self.epoch}, "
                f"got {epoch})"
            )
        if old == new:
            raise ValueError(
                f"EpochDirectory: node {old} cannot succeed itself"
            )
        self._successor[old] = new
        self.epoch = epoch

    def resolve(self, node: int) -> int:
        """The live holder of ``node``'s role (possibly ``node`` itself)."""
        node = int(node)
        seen = {node}
        while node in self._successor:
            node = self._successor[node]
            if node in seen:  # defensive: advance() forbids cycles
                break
            seen.add(node)
        return node

    def redirects(self, node: int) -> bool:
        return self.resolve(node) != int(node)

    def entries(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted (old, successor) pairs (diagnostics)."""
        return tuple(sorted(self._successor.items()))
