"""Plain-text rendering of experiment tables and series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and dependency-free (no
plotting stack is assumed in the evaluation environment).
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_series", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table."""
    if not headers:
        raise ValueError("need at least one column")
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([_fmt(value) for value in row])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    for r, row_cells in enumerate(cells):
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row_cells, widths))
        )
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float]
) -> str:
    """One labelled x/y series with a sparkline, for quick eyeballing."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    pairs = "  ".join(f"{_fmt(x)}:{_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}  [{sparkline(ys)}]\n  {pairs}"


def sparkline(values: Sequence[float]) -> str:
    """Unicode mini-chart of a numeric series."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (hi - lo)
    return "".join(
        _SPARK_LEVELS[int(round((v - lo) * scale))] for v in values
    )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
