"""Histogram and ranking series for the data-study figures.

Produces the numeric series behind Figures 4 and 5 of the paper —
density histograms of normalized prices, rank-frequency (Zipf) plots
of stock popularity, and survival curves of trade amounts — as plain
arrays any plotting or reporting layer can consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["HistogramSeries", "density_histogram", "rank_frequency", "survival_curve"]


@dataclass(frozen=True)
class HistogramSeries:
    """A binned density estimate."""

    centers: np.ndarray
    density: np.ndarray
    bin_width: float

    @property
    def mode_center(self) -> float:
        """Center of the highest-density bin."""
        return float(self.centers[int(np.argmax(self.density))])

    def total_mass(self) -> float:
        """Integral of the histogram (≈1 for a proper density)."""
        return float(self.density.sum() * self.bin_width)


def density_histogram(
    data: np.ndarray,
    bins: int = 50,
    value_range: Optional[Tuple[float, float]] = None,
) -> HistogramSeries:
    """Equal-width density histogram of a sample."""
    data = np.asarray(data, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot histogram an empty sample")
    counts, edges = np.histogram(
        data, bins=bins, range=value_range, density=True
    )
    centers = (edges[:-1] + edges[1:]) / 2.0
    return HistogramSeries(
        centers=centers,
        density=counts,
        bin_width=float(edges[1] - edges[0]),
    )


def rank_frequency(counts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Rank-frequency series: ranks ``1..m`` and sorted-desc counts.

    Zero counts are dropped (they would break the log-log fit and the
    paper's plot only shows traded stocks).
    """
    counts = np.asarray(counts, dtype=np.float64)
    nonzero = np.sort(counts[counts > 0])[::-1]
    if nonzero.size == 0:
        raise ValueError("no positive counts to rank")
    ranks = np.arange(1, nonzero.size + 1, dtype=np.float64)
    return ranks, nonzero


def survival_curve(
    data: np.ndarray, points: int = 100
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical ``P(X > x)`` on a log-spaced grid.

    Heavy-tailed samples (trade amounts) show up as a straight line in
    log-log coordinates with slope ``-alpha``.
    """
    data = np.asarray(data, dtype=np.float64)
    positive = data[data > 0]
    if positive.size == 0:
        raise ValueError("need positive data for a survival curve")
    sorted_data = np.sort(positive)
    xs = np.logspace(
        np.log10(sorted_data[0]),
        np.log10(sorted_data[-1]),
        points,
    )
    survival = 1.0 - np.searchsorted(sorted_data, xs, side="right") / len(
        sorted_data
    )
    return xs, survival
