"""Distribution fitting and goodness diagnostics for the data study.

Section 5.1 of the paper extracts three laws from the NYSE tape:
normalized prices are ~normal, popularity is ~Zipf, amounts are
~Pareto.  These fitters recover the parameters from (synthetic) trade
data and report a goodness score, so the Figure 4/5 benchmarks can
assert "the analysis pipeline sees the law the workload encodes".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

__all__ = ["NormalFit", "PowerLawFit", "fit_normal", "fit_zipf", "fit_pareto_tail"]


@dataclass(frozen=True)
class NormalFit:
    """Result of a normal fit."""

    mean: float
    std: float
    ks_statistic: float
    ks_pvalue: float

    @property
    def looks_normal(self) -> bool:
        """Loose plausibility gate used by tests and benches.

        Real (and realistic synthetic) samples at n≈10^5 fail strict KS
        p-value tests for tiny deviations, so the gate is on the KS
        *statistic* — the maximum CDF discrepancy — instead.
        """
        return self.ks_statistic < 0.05


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted log-log linear relationship ``y ≈ c * x**slope``."""

    slope: float
    intercept: float
    r_squared: float

    @property
    def looks_power_law(self) -> bool:
        """Straight enough in log-log coordinates."""
        return self.r_squared > 0.90


def fit_normal(data: np.ndarray) -> NormalFit:
    """Fit N(mu, sigma) and run a Kolmogorov-Smirnov check."""
    data = np.asarray(data, dtype=np.float64)
    if data.size < 8:
        raise ValueError(
            f"fit_normal: need at least 8 observations (got {data.size})"
        )
    mean = float(np.mean(data))
    std = float(np.std(data, ddof=1))
    if std <= 0:
        raise ValueError(
            f"fit_normal: sample standard deviation must be positive "
            f"(got {std})"
        )
    statistic, pvalue = stats.kstest(data, "norm", args=(mean, std))
    return NormalFit(mean, std, float(statistic), float(pvalue))


def fit_zipf(ranked_counts: np.ndarray) -> PowerLawFit:
    """Fit ``count ≈ c / rank**theta`` on rank-ordered counts.

    ``ranked_counts`` must be sorted descending (as produced by
    :func:`repro.analysis.histograms.rank_frequency`).  Returns the
    log-log regression; a Zipf-like sample has slope ≈ ``-theta`` and
    high R².
    """
    counts = np.asarray(ranked_counts, dtype=np.float64)
    counts = counts[counts > 0]
    if counts.size < 8:
        raise ValueError(
            f"fit_zipf: need at least 8 positive ranked counts "
            f"(got {counts.size})"
        )
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)
    return _loglog_regression(ranks, counts)


def fit_pareto_tail(data: np.ndarray, tail_fraction: float = 0.5) -> PowerLawFit:
    """Fit the survival tail ``P(X > x) ≈ (c/x)**alpha``.

    Regresses log-survival on log-value over the upper
    ``tail_fraction`` of the sample; the fitted slope estimates
    ``-alpha``.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(
            f"fit_pareto_tail: tail_fraction must lie in (0, 1] "
            f"(got {tail_fraction})"
        )
    data = np.asarray(data, dtype=np.float64)
    positive = np.sort(data[data > 0])
    if positive.size < 16:
        raise ValueError(
            f"fit_pareto_tail: need at least 16 positive observations "
            f"(got {positive.size})"
        )
    start = int(len(positive) * (1.0 - tail_fraction))
    tail = positive[start:-1]  # drop the max (survival would be 0)
    survival = 1.0 - (np.arange(start, start + tail.size) + 1) / len(positive)
    keep = survival > 0
    return _loglog_regression(tail[keep], survival[keep])


def _loglog_regression(x: np.ndarray, y: np.ndarray) -> PowerLawFit:
    """Ordinary least squares in log-log coordinates."""
    log_x = np.log(x)
    log_y = np.log(y)
    slope, intercept, r_value, _, _ = stats.linregress(log_x, log_y)
    return PowerLawFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=float(r_value**2),
    )
