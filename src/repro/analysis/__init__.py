"""Data analysis: distribution fitting, histograms, text reports.

Reproduces the paper's Section 5.1 data-study pipeline (Figures 4
and 5) over the synthetic trading day, and provides the tabular
rendering used by the benchmark harness.
"""

from .distributions import (
    NormalFit,
    PowerLawFit,
    fit_normal,
    fit_pareto_tail,
    fit_zipf,
)
from .histograms import (
    HistogramSeries,
    density_histogram,
    rank_frequency,
    survival_curve,
)
from .report import format_series, format_table, sparkline

__all__ = [
    "NormalFit",
    "PowerLawFit",
    "fit_normal",
    "fit_pareto_tail",
    "fit_zipf",
    "HistogramSeries",
    "density_histogram",
    "rank_frequency",
    "survival_curve",
    "format_series",
    "format_table",
    "sparkline",
]
