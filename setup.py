"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs to build an editable
wheel, which requires the third-party `wheel` distribution; on offline
hosts without it, `python setup.py develop` installs the same editable
package through setuptools alone.
"""

from setuptools import setup

setup()
